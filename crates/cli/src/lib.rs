//! Implementation of the `mics-sim` command-line tool.
//!
//! ```text
//! mics-sim models
//! mics-sim estimate bert-10b --nodes 4 --strategy mics:8
//! mics-sim simulate bert-15b --nodes 8 --instance p4d --strategy zero3 --accum 16
//! mics-sim tune bert-50b --nodes 8
//! ```

#![warn(missing_docs)]

pub mod perf_diff;

use mics_cluster::{ClusterSpec, InstanceType};
use mics_core::memory::check_memory;
use mics_core::{simulate, simulate_dp_traced, tune, Strategy, TrainingJob};
use mics_dataplane::TransportKind;
use mics_model::WorkloadSpec;
pub use perf_diff::{perf_diff, PerfDiffArgs};
use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List available model presets.
    Models,
    /// Per-device memory estimate for a job.
    Estimate(JobArgs),
    /// Simulate one training iteration.
    Simulate(JobArgs),
    /// Search for the best MiCS configuration.
    Tune(JobArgs),
    /// Train the fig15-class LM on the real thread-rank backend.
    Fidelity(FidelityArgs),
    /// Compare two `results/` snapshots metric-by-metric.
    PerfDiff(PerfDiffArgs),
}

/// Shared job arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct JobArgs {
    /// Model preset name (see [`model_names`]).
    pub model: String,
    /// Cluster nodes.
    pub nodes: usize,
    /// Instance preset: `p3dn` (default), `p4d`, or `dgx`.
    pub instance: String,
    /// Strategy spec: `mics:<p>`, `zero1`, `zero2`, `zero3`, `ddp`.
    pub strategy: String,
    /// Micro-batch size per device.
    pub micro_batch: usize,
    /// Gradient-accumulation depth.
    pub accum: usize,
    /// Write a chrome-trace JSON of the simulated iteration here
    /// (`simulate` only).
    pub trace: Option<String>,
}

impl Default for JobArgs {
    fn default() -> Self {
        JobArgs {
            model: String::new(),
            nodes: 2,
            instance: "p3dn".into(),
            strategy: "mics:8".into(),
            micro_batch: 8,
            accum: 4,
            trace: None,
        }
    }
}

/// Arguments of the `fidelity` subcommand, which runs the fig15-class
/// transformer LM on the *real* `mics-minidl` backend (8 thread ranks,
/// MiCS 2-hop, partition groups of 2) rather than the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FidelityArgs {
    /// Training iterations to run.
    pub iterations: usize,
    /// Collective look-ahead: `0` = inline interpreter, `≥ 1` = async
    /// executor with overlapped reduces and gather prefetch.
    pub prefetch_depth: usize,
    /// Write a chrome-trace JSON combining the backend's *measured* lane
    /// spans with the simulator's *charged* timeline for the same program.
    pub trace: Option<String>,
    /// Data-plane transport the ranks collectivize over: `local` keeps the
    /// shared-memory rendezvous, `socket` frames every collective through a
    /// loopback hub (same bits, real wire).
    pub transport: TransportKind,
}

impl Default for FidelityArgs {
    fn default() -> Self {
        FidelityArgs {
            iterations: 10,
            prefetch_depth: 2,
            trace: None,
            transport: TransportKind::Local,
        }
    }
}

/// CLI errors, printable as user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The usage banner.
pub const USAGE: &str = "\
mics-sim — simulate MiCS / ZeRO / DDP training on cloud GPU clusters

USAGE:
  mics-sim models
  mics-sim estimate <model> [--nodes N] [--instance p3dn|p4d|dgx]
                    [--strategy mics:<p>|zero1|zero2|zero3|ddp]
                    [--micro-batch B]
  mics-sim simulate <model> [same options] [--accum S] [--trace out.json]
  mics-sim tune     <model> [--nodes N] [--instance ...] [--micro-batch B] [--accum S]
  mics-sim fidelity [--iterations N] [--prefetch-depth D] [--trace out.json]
                    [--transport local|socket]
  mics-sim perf-diff <old-dir> <new-dir> [--threshold PCT]

MODELS: run `mics-sim models` for the list.
SEE ALSO: `mics-rankd` runs the same data plane as one OS process per rank.";

/// Names of the model presets `mics-sim` knows (from `mics-model`).
pub fn model_names() -> Vec<&'static str> {
    mics_model::preset_names().to_vec()
}

/// Resolve a model preset to its workload.
pub fn lookup_model(name: &str, micro_batch: usize) -> Result<WorkloadSpec, CliError> {
    mics_model::preset(name, micro_batch)
        .ok_or_else(|| err(format!("unknown model '{name}'; run `mics-sim models` for the list")))
}

/// Resolve an instance preset.
pub fn lookup_instance(name: &str) -> Result<InstanceType, CliError> {
    InstanceType::preset(name)
        .ok_or_else(|| err(format!("unknown instance '{name}' (expected p3dn, p4d, or dgx)")))
}

/// Parse a strategy spec (the shared [`Strategy::parse`] grammar).
pub fn parse_strategy(spec: &str) -> Result<Strategy, CliError> {
    Strategy::parse(spec).map_err(err)
}

/// Parse argv (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it.next().ok_or_else(|| err(USAGE))?;
    if sub == "models" {
        return Ok(Command::Models);
    }
    if sub == "fidelity" {
        let mut fid = FidelityArgs::default();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, CliError> {
                it.next().ok_or_else(|| err(format!("{name} requires a value")))
            };
            match flag.as_str() {
                "--iterations" => {
                    fid.iterations = value("--iterations")?
                        .parse()
                        .map_err(|_| err("--iterations must be a positive integer"))?
                }
                "--prefetch-depth" => {
                    fid.prefetch_depth = value("--prefetch-depth")?
                        .parse()
                        .map_err(|_| err("--prefetch-depth must be a non-negative integer"))?
                }
                "--trace" => fid.trace = Some(value("--trace")?.clone()),
                "--transport" => {
                    fid.transport = value("--transport")?
                        .parse()
                        .map_err(|_| err("--transport must be 'local' or 'socket'"))?
                }
                other => return Err(err(format!("unknown flag '{other}'\n\n{USAGE}"))),
            }
        }
        if fid.iterations == 0 {
            return Err(err("--iterations must be a positive integer"));
        }
        return Ok(Command::Fidelity(fid));
    }
    if sub == "perf-diff" {
        let mut diff = PerfDiffArgs {
            old_dir: it.next().ok_or_else(|| err("perf-diff: missing <old-dir>"))?.clone(),
            new_dir: it.next().ok_or_else(|| err("perf-diff: missing <new-dir>"))?.clone(),
            ..PerfDiffArgs::default()
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--threshold" => {
                    diff.threshold_pct = it
                        .next()
                        .ok_or_else(|| err("--threshold requires a value"))?
                        .parse()
                        .map_err(|_| err("--threshold must be a number (percent)"))?;
                }
                other => return Err(err(format!("unknown flag '{other}'\n\n{USAGE}"))),
            }
        }
        if !diff.threshold_pct.is_finite() || diff.threshold_pct < 0.0 {
            return Err(err("--threshold must be a non-negative number"));
        }
        return Ok(Command::PerfDiff(diff));
    }
    if !matches!(sub.as_str(), "estimate" | "simulate" | "tune") {
        return Err(err(format!("unknown subcommand '{sub}'\n\n{USAGE}")));
    }
    let mut job = JobArgs {
        model: it.next().ok_or_else(|| err(format!("{sub}: missing <model>")))?.clone(),
        ..JobArgs::default()
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, CliError> {
            it.next().ok_or_else(|| err(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--nodes" => {
                job.nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| err("--nodes must be a positive integer"))?
            }
            "--instance" => job.instance = value("--instance")?.clone(),
            "--strategy" => job.strategy = value("--strategy")?.clone(),
            "--micro-batch" => {
                job.micro_batch = value("--micro-batch")?
                    .parse()
                    .map_err(|_| err("--micro-batch must be a positive integer"))?
            }
            "--accum" => {
                job.accum = value("--accum")?
                    .parse()
                    .map_err(|_| err("--accum must be a positive integer"))?
            }
            "--trace" => job.trace = Some(value("--trace")?.clone()),
            other => return Err(err(format!("unknown flag '{other}'\n\n{USAGE}"))),
        }
    }
    Ok(match sub.as_str() {
        "estimate" => Command::Estimate(job),
        "simulate" => Command::Simulate(job),
        _ => Command::Tune(job),
    })
}

fn gib(x: u64) -> f64 {
    x as f64 / (1u64 << 30) as f64
}

/// Execute a parsed command, returning the text to print.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Models => {
            let mut out = String::from("available models:\n");
            for name in model_names() {
                let w = lookup_model(name, 1).unwrap();
                out.push_str(&format!(
                    "  {name:<14} {:>7.2}B params, {} layers\n",
                    w.total_params() as f64 / 1e9,
                    w.layers.len()
                ));
            }
            Ok(out)
        }
        Command::Estimate(job) => {
            let (workload, cluster, strategy) = resolve(job)?;
            let plan = strategy.plan(cluster.total_devices());
            match check_memory(&workload, &cluster, &plan, &strategy.label()) {
                Ok(est) => Ok(format!(
                    "{} on {}×{} ({} GPUs), {}:\n\
                     params     {:>8.2} GiB\n\
                     grads      {:>8.2} GiB\n\
                     optimizer  {:>8.2} GiB\n\
                     activations{:>8.2} GiB\n\
                     transient  {:>8.2} GiB\n\
                     total      {:>8.2} GiB per device (usable: {:.2} GiB) — fits{}",
                    workload.name,
                    cluster.nodes,
                    cluster.instance.name,
                    cluster.total_devices(),
                    strategy.label(),
                    gib(est.params),
                    gib(est.grads),
                    gib(est.optimizer),
                    gib(est.activations),
                    gib(est.transient),
                    gib(est.total()),
                    gib(mics_core::memory::usable_bytes(&cluster)),
                    if est.hierarchical_buffers { "" } else { " (hierarchical staging disabled)" },
                )),
                Err(e) => Ok(format!("{e}")),
            }
        }
        Command::Simulate(job) => {
            let (workload, cluster, strategy) = resolve(job)?;
            let t = TrainingJob {
                workload,
                cluster: cluster.clone(),
                strategy,
                accum_steps: job.accum,
            };
            // With --trace, the same run also lowers to a chrome-trace
            // timeline (load it at chrome://tracing or ui.perfetto.dev).
            let outcome = match &job.trace {
                Some(path) => simulate_dp_traced(&t).map(|(r, json)| (r, Some((path, json)))),
                None => simulate(&t).map(|r| (r, None)),
            };
            match outcome {
                Ok((r, trace)) => {
                    let mut out = format!(
                        "{}: {:.1} samples/sec | iteration {} | {:.1} TFLOPS/GPU | \
                         compute {:.0}% / comm {:.0}% | {:.1} GiB/device{}",
                        r.label,
                        r.samples_per_sec,
                        r.iter_time,
                        r.tflops_per_gpu(),
                        r.compute_fraction * 100.0,
                        r.comm_fraction * 100.0,
                        gib(r.memory.total()),
                        if r.hierarchical_used { " | hierarchical all-gather" } else { "" },
                    );
                    if let Some((path, json)) = trace {
                        std::fs::write(path, json)
                            .map_err(|e| err(format!("cannot write trace to '{path}': {e}")))?;
                        out.push_str(&format!(" | trace written to {path}"));
                    }
                    Ok(out)
                }
                Err(e) => Ok(format!("{e}")),
            }
        }
        Command::Fidelity(args) => {
            let rec = mics_trace::global();
            if args.trace.is_some() {
                // Drop whatever an earlier run in this process recorded, so
                // the merged file only holds this run's wire events.
                let _ = rec.drain();
                rec.enable();
            }
            let setup = fig15_setup(args);
            let out =
                mics_minidl::train_lm_on(args.transport, &setup, mics_minidl::SyncSchedule::TwoHop);
            let s = &out.lane_stats;
            let ms = |ns: u64| ns as f64 / 1e6;
            let mut text = format!(
                "fig15 LM on the real backend (8 ranks, mics p=2, {} transport, {} iters, \
                 prefetch depth {}): final loss {:.6}\n\
                 wall {:.1} ms | compute {:.1} ms | gather {:.1} ms | reduce {:.1} ms | \
                 overlap {:.0}% | {} deferred reduces | {} prefetched gathers",
                args.transport,
                args.iterations,
                args.prefetch_depth,
                out.losses.last().copied().unwrap_or(f32::NAN),
                ms(s.wall_ns),
                ms(s.busy_ns(mics_minidl::ExecLane::Compute)),
                ms(s.busy_ns(mics_minidl::ExecLane::Gather)),
                ms(s.busy_ns(mics_minidl::ExecLane::Reduce)),
                s.overlap_fraction() * 100.0,
                s.deferred_wire_ops.len(),
                s.prefetched_gathers,
            );
            if let Some(path) = &args.trace {
                rec.disable();
                let live = rec.drain();
                std::fs::write(path, fidelity_trace(args, &setup, s, live))
                    .map_err(|e| err(format!("cannot write trace to '{path}': {e}")))?;
                text.push_str(&format!(" | trace written to {path}"));
            }
            Ok(text)
        }
        Command::PerfDiff(args) => perf_diff(args),
        Command::Tune(job) => {
            let (workload, cluster, _) = resolve(job)?;
            match tune(&workload, &cluster, job.accum) {
                Ok(result) => {
                    let mut out = format!(
                        "best: MiCS p={} (hierarchical: {}) at {:.1} samples/sec\nexplored:\n",
                        result.best.partition_size,
                        result.best.hierarchical_allgather,
                        result.report.samples_per_sec
                    );
                    for c in &result.explored {
                        out.push_str(&format!(
                            "  p={:<4} hier={:<5} {}\n",
                            c.config.partition_size,
                            c.config.hierarchical_allgather,
                            match &c.outcome {
                                Ok(r) => format!("{:.1} samples/sec", r.samples_per_sec),
                                Err(_) => "OOM".into(),
                            }
                        ));
                    }
                    Ok(out)
                }
                Err(e) => Ok(format!("nothing fits: {e}")),
            }
        }
    }
}

/// The fig15 fidelity geometry: 8 ranks, partition groups of 2, micro-batch
/// 8 × 4 accumulation steps over the tiny transformer LM.
fn fig15_setup(args: &FidelityArgs) -> mics_minidl::LmSetup {
    mics_minidl::LmSetup {
        model: mics_minidl::TinyTransformer::new(9, 6, 8, 2, 16, 2),
        world: 8,
        partition_size: 2,
        micro_batch: 8,
        accum_steps: 4,
        iterations: args.iterations,
        lr: 0.015,
        seed: 20220615,
        quantize: false,
        loss_scale: mics_minidl::LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: args.prefetch_depth,
    }
}

/// One chrome-trace document holding the simulator's *charged* timeline
/// for the fidelity program (pid 0), the real backend's *measured* lane
/// spans and counter tracks (pid 1), and whatever the live recorder
/// captured during the run — the socket dataplane's byte/queue-depth
/// counters and fault instants (further pids). Load it in Perfetto to
/// compare charged vs measured side by side.
fn fidelity_trace(
    args: &FidelityArgs,
    setup: &mics_minidl::LmSetup,
    measured: &mics_minidl::LaneStats,
    live: mics_trace::Trace,
) -> String {
    let hp = mics_minidl::ScheduleHyper {
        world: setup.world,
        partition_size: setup.partition_size,
        accum_steps: setup.accum_steps,
        iterations: setup.iterations,
        lr: setup.lr,
        quantize: setup.quantize,
        loss_scale: setup.loss_scale,
        clip_grad_norm: setup.clip_grad_norm,
        comm_quant: setup.comm_quant,
        prefetch_depth: args.prefetch_depth,
    };
    let prog = mics_minidl::step_program_with_flops(
        &hp,
        mics_minidl::SyncSchedule::TwoHop,
        setup.model.num_params(),
        4e9,
        8e9,
    );
    let mut inst = InstanceType::p3dn_24xlarge();
    inst.gpus_per_node = hp.world;
    let mut sc = mics_core::ops::SimCluster::new(ClusterSpec::new(inst, 1));
    sc.enable_tracing();
    mics_core::schedule::execute_on_sim(&prog, &mut sc, 1e12);
    let (_, _, _, mut trace) = sc.run_traced();
    measured.trace_into(&mut trace, "real backend (measured)");
    trace.merge(live);
    trace.to_json()
}

fn resolve(job: &JobArgs) -> Result<(WorkloadSpec, ClusterSpec, Strategy), CliError> {
    if job.nodes == 0 {
        return Err(err("--nodes must be at least 1"));
    }
    let workload = lookup_model(&job.model, job.micro_batch)?;
    let instance = lookup_instance(&job.instance)?;
    let cluster = ClusterSpec::new(instance, job.nodes);
    let strategy = parse_strategy(&job.strategy)?;
    if let Strategy::Mics(cfg) = &strategy {
        let n = cluster.total_devices();
        if cfg.partition_size == 0 || !n.is_multiple_of(cfg.partition_size) {
            return Err(err(format!(
                "partition size {} does not divide the cluster size {n}",
                cfg.partition_size
            )));
        }
    }
    Ok((workload, cluster, strategy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mics_core::ZeroStage;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_models_subcommand() {
        assert_eq!(parse_args(&argv("models")).unwrap(), Command::Models);
    }

    #[test]
    fn parse_simulate_with_flags() {
        let cmd = parse_args(&argv(
            "simulate bert-15b --nodes 8 --instance p4d --strategy zero3 \
             --micro-batch 4 --accum 16",
        ))
        .unwrap();
        match cmd {
            Command::Simulate(j) => {
                assert_eq!(j.model, "bert-15b");
                assert_eq!(j.nodes, 8);
                assert_eq!(j.instance, "p4d");
                assert_eq!(j.strategy, "zero3");
                assert_eq!(j.micro_batch, 4);
                assert_eq!(j.accum, 16);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_rejects_unknown_flag_and_subcommand() {
        assert!(parse_args(&argv("simulate bert-10b --bogus 3")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("estimate")).is_err(), "missing model");
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(parse_strategy("ddp").unwrap(), Strategy::Ddp);
        assert_eq!(parse_strategy("zero3").unwrap(), Strategy::Zero(ZeroStage::Three));
        match parse_strategy("mics:16").unwrap() {
            Strategy::Mics(c) => assert_eq!(c.partition_size, 16),
            other => panic!("{other:?}"),
        }
        assert!(parse_strategy("mics:x").is_err());
        assert!(parse_strategy("zero9").is_err());
    }

    #[test]
    fn every_listed_model_resolves() {
        for name in model_names() {
            assert!(lookup_model(name, 2).is_ok(), "{name}");
        }
        assert!(lookup_model("bert-9000b", 2).is_err());
    }

    #[test]
    fn execute_models_lists_all() {
        let out = execute(&Command::Models).unwrap();
        for name in model_names() {
            assert!(out.contains(name), "{name} missing from:\n{out}");
        }
    }

    #[test]
    fn execute_estimate_reports_fit_and_oom() {
        let fit =
            execute(&parse_args(&argv("estimate bert-10b --nodes 2 --strategy mics:8")).unwrap())
                .unwrap();
        assert!(fit.contains("fits"), "{fit}");
        let oom =
            execute(&parse_args(&argv("estimate bert-50b --nodes 2 --strategy mics:16")).unwrap())
                .unwrap();
        assert!(oom.contains("out of memory"), "{oom}");
    }

    #[test]
    fn execute_simulate_end_to_end() {
        let out = execute(
            &parse_args(&argv("simulate bert-10b --nodes 2 --strategy mics:8 --accum 2")).unwrap(),
        )
        .unwrap();
        assert!(out.contains("samples/sec"), "{out}");
        assert!(out.contains("TFLOPS/GPU"));
    }

    #[test]
    fn trace_flag_writes_chrome_trace_json() {
        let path = std::env::temp_dir().join("mics_sim_cli_trace_test.json");
        let path = path.to_str().unwrap().to_string();
        let cmd = parse_args(&argv(&format!(
            "simulate bert-10b --nodes 2 --strategy mics:8 --accum 2 --trace {path}"
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("trace written to"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""), "not chrome-trace shaped: {json:.80}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_fidelity_with_flags() {
        let cmd = parse_args(&argv(
            "fidelity --iterations 3 --prefetch-depth 1 --trace t.json --transport socket",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Fidelity(FidelityArgs {
                iterations: 3,
                prefetch_depth: 1,
                trace: Some("t.json".into()),
                transport: TransportKind::Socket,
            })
        );
        assert_eq!(
            parse_args(&argv("fidelity")).unwrap(),
            Command::Fidelity(FidelityArgs::default())
        );
        assert!(parse_args(&argv("fidelity --iterations 0")).is_err());
        assert!(parse_args(&argv("fidelity --transport carrier-pigeon")).is_err());
        assert!(parse_args(&argv("fidelity --bogus")).is_err());
    }

    #[test]
    fn fidelity_over_sockets_matches_local() {
        // The same fig15 run routed over the framed loopback hub must print
        // the same final loss — the CLI face of the bit-identical claim.
        let local = execute(&parse_args(&argv("fidelity --iterations 2")).unwrap()).unwrap();
        let socket =
            execute(&parse_args(&argv("fidelity --iterations 2 --transport socket")).unwrap())
                .unwrap();
        let loss = |s: &str| {
            s.split("final loss ").nth(1).unwrap().split('\n').next().unwrap().to_string()
        };
        assert_eq!(loss(&local), loss(&socket), "local:\n{local}\nsocket:\n{socket}");
        assert!(socket.contains("socket transport"), "{socket}");
    }

    #[test]
    fn fidelity_runs_real_backend_and_writes_merged_trace() {
        let path = std::env::temp_dir().join("mics_sim_cli_fidelity_trace_test.json");
        let path = path.to_str().unwrap().to_string();
        let cmd = parse_args(&argv(&format!(
            "fidelity --iterations 2 --prefetch-depth 2 --trace {path}"
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("final loss"), "{out}");
        assert!(out.contains("trace written to"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json:.80}");
        assert!(json.contains("simulator (charged)"), "sim process missing");
        assert!(json.contains("real backend (measured)"), "real process missing");
        assert!(json.contains("\"pid\":1"), "real lanes must live under their own pid");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_perf_diff_with_threshold() {
        let cmd = parse_args(&argv("perf-diff results /tmp/new --threshold 2.5")).unwrap();
        assert_eq!(
            cmd,
            Command::PerfDiff(PerfDiffArgs {
                old_dir: "results".into(),
                new_dir: "/tmp/new".into(),
                threshold_pct: 2.5,
            })
        );
        match parse_args(&argv("perf-diff results results")).unwrap() {
            Command::PerfDiff(d) => assert_eq!(d.threshold_pct, 5.0, "default threshold"),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("perf-diff results")).is_err(), "missing <new-dir>");
        assert!(parse_args(&argv("perf-diff a b --threshold -1")).is_err());
        assert!(parse_args(&argv("perf-diff a b --bogus")).is_err());
    }

    #[test]
    fn invalid_partition_size_is_a_cli_error_not_a_panic() {
        let cmd = parse_args(&argv("simulate bert-10b --nodes 2 --strategy mics:5")).unwrap();
        let e = execute(&cmd).unwrap_err();
        assert!(e.0.contains("does not divide"), "{e}");
    }
}
