//! `mics-sim` entry point: thin shell over [`mics_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mics_cli::parse_args(&args).and_then(|cmd| mics_cli::execute(&cmd)) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
