//! `mics-compress` — deterministic block-wise quantization for compressed
//! collectives (the ZeRO++ direction layered on MiCS's topology).
//!
//! MiCS minimizes communication *scale*; this crate minimizes communication
//! *volume*. It provides the quantization kernels the quantized collectives
//! in `mics-dataplane` execute and the cost models in
//! `mics-collectives::compress` price:
//!
//! * **fp32 → int8 / int4** affine quantization with a per-block scale and
//!   zero-point (qwZ-style block quantization): each block of
//!   [`QuantScheme::block`] elements stores `zero = min` and
//!   `scale = (max − min) / (2^bits − 1)`, so the worst-case round-trip
//!   error is half a quantization step of *that block* — outliers in one
//!   block cannot destroy the resolution of another;
//! * **fp32 → f16 passthrough** (round-to-nearest-even, via `mics-tensor`'s
//!   deterministic converters), the lossless-for-f16-representable-data mode
//!   mixed-precision training already tolerates;
//! * **round-trip error accounting**: every [`Quantized`] buffer can report
//!   a sound upper bound on `max |x − dequantize(quantize(x))|`, which the
//!   property tests hold the kernels to.
//!
//! Everything is deterministic: no RNG, no data-dependent iteration order,
//! so quantized collectives keep the bit-reproducibility contract of the
//! data plane.
//!
//! # Wire format
//!
//! The in-process data plane moves `f32` buffers, so a [`Quantized`] value
//! can be encoded into a self-contained word stream ([`Quantized::to_words`]
//! / [`Quantized::from_words`]). Each metadata float is carried verbatim and
//! each code byte is carried as one exact small-integer word — trivially
//! memcpy-safe, at the price of transport inflation that only exists inside
//! this simulator. *Accounting* uses [`QuantScheme::wire_bytes`], the real
//! packed size a NIC would see (codes packed to `bits`, 8 metadata bytes per
//! block), which is what the α–β cost models charge.
//!
//! # Non-finite inputs
//!
//! Mixed-precision training relies on overflow detection: a block containing
//! a non-finite value quantizes to a poisoned block whose dequantized
//! elements are all NaN, so an inf/NaN gradient still trips the existing
//! loss-scale machinery instead of being silently clamped into range.

#![warn(missing_docs)]

use mics_tensor::dtype::{f16_bits_to_f32, f32_to_f16_bits};

/// Default quantization block size (elements per scale/zero-point pair).
/// 128 elements keep the metadata overhead at `8 / (128·bits/8)` — 6.25%
/// for int8 — while bounding how far one outlier's damage spreads.
pub const DEFAULT_BLOCK: usize = 128;

/// A quantization scheme for collective payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantScheme {
    /// fp32 → IEEE binary16 passthrough (no block metadata). Lossless for
    /// values already representable in f16 — in particular for the
    /// mixed-precision parameter casts `mics-minidl` sends.
    F16,
    /// 8-bit affine block quantization.
    Int8 {
        /// Elements per scale/zero-point block.
        block: usize,
    },
    /// 4-bit affine block quantization (two codes per byte on the wire).
    Int4 {
        /// Elements per scale/zero-point block.
        block: usize,
    },
}

impl QuantScheme {
    /// int8 with the default block size.
    pub fn int8() -> Self {
        QuantScheme::Int8 { block: DEFAULT_BLOCK }
    }

    /// int4 with the default block size.
    pub fn int4() -> Self {
        QuantScheme::Int4 { block: DEFAULT_BLOCK }
    }

    /// Bits per transported element code.
    pub fn code_bits(self) -> u32 {
        match self {
            QuantScheme::F16 => 16,
            QuantScheme::Int8 { .. } => 8,
            QuantScheme::Int4 { .. } => 4,
        }
    }

    /// Elements per metadata block (`None` for the block-free f16 mode).
    pub fn block(self) -> Option<usize> {
        match self {
            QuantScheme::F16 => None,
            QuantScheme::Int8 { block } | QuantScheme::Int4 { block } => Some(block),
        }
    }

    /// Number of metadata blocks for a buffer of `len` elements.
    pub fn blocks(self, len: usize) -> usize {
        match self.block() {
            Some(b) => {
                assert!(b > 0, "block size must be positive");
                len.div_ceil(b)
            }
            None => 0,
        }
    }

    /// Bytes of packed code stream for `len` elements.
    pub fn code_bytes(self, len: usize) -> usize {
        (len * self.code_bits() as usize).div_ceil(8)
    }

    /// The *real* wire size of `len` quantized elements: packed codes plus
    /// 8 metadata bytes (scale + zero-point) per block. This is what the
    /// cost models charge the NIC for.
    pub fn wire_bytes(self, len: usize) -> u64 {
        self.code_bytes(len) as u64 + 8 * self.blocks(len) as u64
    }

    /// Compression ratio versus fp32 for a buffer of `len` elements.
    pub fn ratio(self, len: usize) -> f64 {
        if len == 0 {
            return 1.0;
        }
        (4 * len) as f64 / self.wire_bytes(len) as f64
    }

    /// Number of f32 words [`Quantized::to_words`] produces for `len`
    /// elements. A pure function of `(scheme, len)`, which is what makes the
    /// encoding usable inside SPMD collectives: every rank knows every
    /// peer's encoded size without a handshake.
    pub fn encoded_words(self, len: usize) -> usize {
        match self {
            QuantScheme::F16 => len,
            QuantScheme::Int8 { .. } | QuantScheme::Int4 { .. } => {
                2 * self.blocks(len) + self.code_bytes(len)
            }
        }
    }

    /// The α–β cost-model view of this scheme.
    pub fn cost_model(self) -> mics_collectives::compress::CompressionModel {
        use mics_collectives::compress::CompressionModel;
        match self {
            QuantScheme::F16 => CompressionModel::f16(),
            QuantScheme::Int8 { block } => CompressionModel::int8(block),
            QuantScheme::Int4 { block } => CompressionModel::int4(block),
        }
    }

    /// Short human-readable label (`"f16"`, `"int8/128"`, …).
    pub fn label(self) -> String {
        match self {
            QuantScheme::F16 => "f16".to_string(),
            QuantScheme::Int8 { block } => format!("int8/{block}"),
            QuantScheme::Int4 { block } => format!("int4/{block}"),
        }
    }
}

/// Where compressed collectives are allowed to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionScope {
    /// Compress only the collectives *inside* a partition group (parameter
    /// gathers, hop-1 reduce-scatters). The cross-replication-group hop-2
    /// all-reduce stays fp32 — it runs once per accumulation window, so its
    /// volume is already amortized and keeping it exact limits error growth.
    IntraGroupOnly,
    /// Compress every gradient/parameter collective, including the hop-2
    /// boundary all-reduce.
    Everywhere,
}

/// Compression knobs carried by the executors (`mics-core`) and the
/// fidelity trainer (`mics-minidl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionConfig {
    /// Quantization scheme for compressed payloads.
    pub scheme: QuantScheme,
    /// Quantize parameter all-gathers (qwZ-style weight compression).
    pub weights: bool,
    /// Quantize gradient reduce-scatters / all-reduces (qgZ-style).
    pub grads: bool,
    /// Which collectives participate.
    pub scope: CompressionScope,
}

impl CompressionConfig {
    /// Compress parameter gathers only.
    pub fn weights_only(scheme: QuantScheme) -> Self {
        CompressionConfig {
            scheme,
            weights: true,
            grads: false,
            scope: CompressionScope::Everywhere,
        }
    }

    /// Compress gradient reductions only.
    pub fn grads_only(scheme: QuantScheme) -> Self {
        CompressionConfig {
            scheme,
            weights: false,
            grads: true,
            scope: CompressionScope::Everywhere,
        }
    }

    /// Compress both directions.
    pub fn both(scheme: QuantScheme) -> Self {
        CompressionConfig {
            scheme,
            weights: true,
            grads: true,
            scope: CompressionScope::Everywhere,
        }
    }

    /// Short label for reports, e.g. `"int8/128·wg"`.
    pub fn label(&self) -> String {
        let mut dir = String::new();
        if self.weights {
            dir.push('w');
        }
        if self.grads {
            dir.push('g');
        }
        let scope = match self.scope {
            CompressionScope::IntraGroupOnly => "·intra",
            CompressionScope::Everywhere => "",
        };
        format!("{}·{dir}{scope}", self.scheme.label())
    }
}

/// A quantized buffer: per-block metadata plus the packed code stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    scheme: QuantScheme,
    len: usize,
    /// Per-block quantization step (empty for f16).
    scales: Vec<f32>,
    /// Per-block zero-point = block minimum (empty for f16).
    zeros: Vec<f32>,
    /// Packed codes: 1 byte/element for int8, 2 elements/byte for int4,
    /// 2 bytes/element (little-endian binary16) for f16.
    codes: Vec<u8>,
}

/// Integer code levels for a bit width: `2^bits − 1`.
fn levels(bits: u32) -> u32 {
    (1u32 << bits) - 1
}

fn int_bits(scheme: QuantScheme) -> Option<u32> {
    match scheme {
        QuantScheme::F16 => None,
        QuantScheme::Int8 { .. } => Some(8),
        QuantScheme::Int4 { .. } => Some(4),
    }
}

fn pack_code(codes: &mut [u8], bits: u32, i: usize, code: u32) {
    match bits {
        8 => codes[i] = code as u8,
        4 => {
            let shift = (i % 2) * 4;
            codes[i / 2] |= ((code & 0xf) as u8) << shift;
        }
        _ => unreachable!("unsupported bit width"),
    }
}

fn unpack_code(codes: &[u8], bits: u32, i: usize) -> u32 {
    match bits {
        8 => codes[i] as u32,
        4 => ((codes[i / 2] >> ((i % 2) * 4)) & 0xf) as u32,
        _ => unreachable!("unsupported bit width"),
    }
}

/// Quantize `data` under `scheme`. Deterministic; blocks containing a
/// non-finite value are poisoned (see the crate docs).
pub fn quantize(data: &[f32], scheme: QuantScheme) -> Quantized {
    let len = data.len();
    match int_bits(scheme) {
        None => {
            let mut codes = Vec::with_capacity(2 * len);
            for &x in data {
                codes.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
            }
            Quantized { scheme, len, scales: Vec::new(), zeros: Vec::new(), codes }
        }
        Some(bits) => {
            let block = scheme.block().expect("integer schemes have a block size");
            assert!(block > 0, "block size must be positive");
            let nb = scheme.blocks(len);
            let mut scales = Vec::with_capacity(nb);
            let mut zeros = Vec::with_capacity(nb);
            let mut codes = vec![0u8; scheme.code_bytes(len)];
            let lv = levels(bits);
            for b in 0..nb {
                let span = &data[b * block..len.min((b + 1) * block)];
                let finite = span.iter().all(|x| x.is_finite());
                if !finite {
                    // Poisoned block: dequantizes to all-NaN.
                    scales.push(f32::NAN);
                    zeros.push(f32::NAN);
                    continue; // codes stay 0
                }
                let mut min = f32::INFINITY;
                let mut max = f32::NEG_INFINITY;
                for &x in span {
                    min = min.min(x);
                    max = max.max(x);
                }
                // f64 range arithmetic: max − min can overflow f32 even
                // when both endpoints are finite.
                let scale = ((max as f64 - min as f64) / lv as f64) as f32;
                // A constant (or numerically constant) block is stored
                // exactly as its zero-point with scale 0.
                if !scale.is_normal() {
                    scales.push(0.0);
                    zeros.push(min);
                    continue;
                }
                scales.push(scale);
                zeros.push(min);
                // f64 intermediates keep the rounding error comfortably
                // inside the half-step bound.
                let inv = 1.0 / scale as f64;
                for (j, &x) in span.iter().enumerate() {
                    let t = ((x as f64 - min as f64) * inv).round();
                    let code = t.clamp(0.0, lv as f64) as u32;
                    pack_code(&mut codes, bits, b * block + j, code);
                }
            }
            Quantized { scheme, len, scales, zeros, codes }
        }
    }
}

/// Reconstruct the fp32 buffer a [`Quantized`] value represents.
pub fn dequantize(q: &Quantized) -> Vec<f32> {
    match int_bits(q.scheme) {
        None => (0..q.len)
            .map(|i| f16_bits_to_f32(u16::from_le_bytes([q.codes[2 * i], q.codes[2 * i + 1]])))
            .collect(),
        Some(bits) => {
            let block = q.scheme.block().expect("integer schemes have a block size");
            (0..q.len)
                .map(|i| {
                    let b = i / block;
                    let code = unpack_code(&q.codes, bits, i);
                    (q.zeros[b] as f64 + code as f64 * q.scales[b] as f64) as f32
                })
                .collect()
        }
    }
}

/// `dequantize(quantize(data))` in one call — what a value looks like after
/// one trip over a quantized wire.
pub fn round_trip(data: &[f32], scheme: QuantScheme) -> Vec<f32> {
    dequantize(&quantize(data, scheme))
}

impl Quantized {
    /// The scheme this buffer was quantized under.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Number of represented elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer represents zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Real (packed) wire size of this buffer in bytes.
    pub fn wire_bytes(&self) -> u64 {
        self.scheme.wire_bytes(self.len)
    }

    /// A sound upper bound on `max_i |x_i − dequantize(self)_i|` for the
    /// finite inputs this buffer was quantized from: half a quantization
    /// step of the worst block (plus float-rounding slack), or the f16
    /// representation error for the passthrough mode. Poisoned (non-finite)
    /// blocks report an infinite bound.
    pub fn error_bound(&self) -> f32 {
        match int_bits(self.scheme) {
            None => {
                // Relative error ≤ 2⁻¹¹ per normal value, plus half the
                // smallest subnormal step for values in the denormal range.
                let max_abs = dequantize(self).iter().fold(0.0f32, |m, x| m.max(x.abs()));
                if max_abs.is_nan() {
                    return f32::INFINITY;
                }
                max_abs * (1.0 / 2048.0) + f32::from_bits(1).max(2.0f32.powi(-25))
            }
            Some(_) => self
                .scales
                .iter()
                .zip(self.zeros.iter())
                .map(|(&s, &z)| {
                    if !s.is_finite() || !z.is_finite() {
                        f32::INFINITY
                    } else {
                        // Half a step, plus slack for the final f32 rounding
                        // of zero + code·scale and a sub-half-ulp of step
                        // from the f64 intermediates.
                        0.5 * s * (1.0 + 1e-3)
                            + (z.abs() + levels(self.scheme.code_bits()) as f32 * s) * f32::EPSILON
                            + 1e-30
                    }
                })
                .fold(0.0f32, f32::max),
        }
    }

    /// Encode into a self-contained `f32` word stream of exactly
    /// [`QuantScheme::encoded_words`]`(len)` words: the per-block scales and
    /// zero-points verbatim, then each code byte (or f16 bit pattern) as one
    /// exact small-integer word. Collectives copy words without arithmetic,
    /// so the round trip through [`Self::from_words`] is bit-exact.
    pub fn to_words(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.scheme.encoded_words(self.len));
        match int_bits(self.scheme) {
            None => {
                for i in 0..self.len {
                    let h = u16::from_le_bytes([self.codes[2 * i], self.codes[2 * i + 1]]);
                    out.push(h as f32);
                }
            }
            Some(_) => {
                out.extend_from_slice(&self.scales);
                out.extend_from_slice(&self.zeros);
                out.extend(self.codes.iter().map(|&b| b as f32));
            }
        }
        debug_assert_eq!(out.len(), self.scheme.encoded_words(self.len));
        out
    }

    /// Decode a word stream produced by [`Self::to_words`] for a buffer of
    /// `len` elements under `scheme`.
    ///
    /// # Panics
    /// Panics if `words` has the wrong length for `(scheme, len)`.
    pub fn from_words(words: &[f32], len: usize, scheme: QuantScheme) -> Quantized {
        assert_eq!(
            words.len(),
            scheme.encoded_words(len),
            "encoded stream length mismatch for {scheme:?} × {len}"
        );
        match int_bits(scheme) {
            None => {
                let mut codes = Vec::with_capacity(2 * len);
                for &w in words {
                    codes.extend_from_slice(&(w as u16).to_le_bytes());
                }
                Quantized { scheme, len, scales: Vec::new(), zeros: Vec::new(), codes }
            }
            Some(_) => {
                let nb = scheme.blocks(len);
                let scales = words[..nb].to_vec();
                let zeros = words[nb..2 * nb].to_vec();
                let codes = words[2 * nb..].iter().map(|&w| w as u8).collect();
                Quantized { scheme, len, scales, zeros, codes }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SCHEMES: [QuantScheme; 3] =
        [QuantScheme::F16, QuantScheme::Int8 { block: 128 }, QuantScheme::Int4 { block: 128 }];

    /// Deterministic pseudo-random test payload with a given seed.
    fn payload(seed: usize, len: usize) -> Vec<f32> {
        (0..len).map(|i| ((seed * 131 + i * 29) as f32 * 0.137).sin() * 3.0).collect()
    }

    #[test]
    fn round_trip_stays_inside_reported_bound() {
        for scheme in SCHEMES {
            for len in [0usize, 1, 7, 128, 129, 1000] {
                let data = payload(len + 1, len);
                let q = quantize(&data, scheme);
                let bound = q.error_bound();
                for (i, (&x, &y)) in data.iter().zip(dequantize(&q).iter()).enumerate() {
                    let err = (x - y).abs();
                    assert!(err <= bound, "{scheme:?} len={len} i={i}: |{x}-{y}|={err} > {bound}");
                }
            }
        }
    }

    #[test]
    fn int8_bound_is_half_step_of_worst_block() {
        let data = payload(3, 512);
        let q = quantize(&data, QuantScheme::int8());
        // The reported bound is essentially scale/2 — tight, not a give-up
        // constant. Find the worst per-block range.
        let worst_range = data
            .chunks(128)
            .map(|c| {
                let min = c.iter().cloned().fold(f32::INFINITY, f32::min);
                let max = c.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                max - min
            })
            .fold(0.0f32, f32::max);
        let half_step = worst_range / 255.0 / 2.0;
        assert!(q.error_bound() >= half_step);
        assert!(q.error_bound() < half_step * 1.1, "bound must stay near scale/2");
    }

    #[test]
    fn f16_passthrough_is_bit_exact_for_f16_values() {
        // Values that are exactly representable in binary16 survive
        // untouched — the property minidl's quantize=true mode relies on.
        let data: Vec<f32> =
            (0..300).map(|i| f16_bits_to_f32(f32_to_f16_bits((i as f32 - 150.0) * 0.25))).collect();
        assert_eq!(round_trip(&data, QuantScheme::F16), data);
    }

    #[test]
    fn constant_blocks_are_exact() {
        let data = vec![1.2345f32; 300];
        for scheme in [QuantScheme::int8(), QuantScheme::int4()] {
            assert_eq!(round_trip(&data, scheme), data);
        }
    }

    #[test]
    fn int4_packs_two_codes_per_byte() {
        let data = payload(9, 256);
        let q = quantize(&data, QuantScheme::int4());
        assert_eq!(q.codes.len(), 128);
        // And wire accounting charges 4 bits/elem + 8 B per 128-elem block.
        assert_eq!(q.wire_bytes(), 128 + 2 * 8);
    }

    #[test]
    fn wire_bytes_accounting() {
        let s = QuantScheme::int8();
        assert_eq!(s.wire_bytes(0), 0);
        assert_eq!(s.wire_bytes(1), 1 + 8);
        assert_eq!(s.wire_bytes(128), 128 + 8);
        assert_eq!(s.wire_bytes(129), 129 + 16);
        assert_eq!(QuantScheme::F16.wire_bytes(10), 20);
        // Default int8 ratio ≈ 3.76× ("~4×" in the acceptance criteria).
        let r = QuantScheme::int8().ratio(1 << 20);
        assert!((3.7..4.0).contains(&r), "{r}");
        let r4 = QuantScheme::int4().ratio(1 << 20);
        assert!((7.0..8.0).contains(&r4), "{r4}");
    }

    #[test]
    fn non_finite_blocks_poison_their_output() {
        let mut data = payload(4, 256);
        data[5] = f32::NAN;
        data[200] = f32::INFINITY;
        let q = quantize(&data, QuantScheme::int8());
        let out = dequantize(&q);
        // Both 128-element blocks contain a casualty → everything NaN.
        assert!(out.iter().all(|x| x.is_nan()));
        assert!(q.error_bound().is_infinite());
        // f16 passthrough also propagates non-finiteness per element.
        let f = round_trip(&data, QuantScheme::F16);
        assert!(f[5].is_nan() && f[200].is_infinite());
        assert!(f[0].is_finite());
    }

    #[test]
    fn word_encoding_round_trips_bit_exactly() {
        for scheme in SCHEMES {
            for len in [0usize, 1, 63, 128, 257] {
                let q = quantize(&payload(len + 17, len), scheme);
                let words = q.to_words();
                assert_eq!(words.len(), scheme.encoded_words(len));
                let back = Quantized::from_words(&words, len, scheme);
                assert_eq!(back, q, "{scheme:?} len={len}");
            }
        }
    }

    #[test]
    fn word_encoding_round_trips_poisoned_blocks() {
        let mut data = payload(8, 130);
        data[129] = f32::NEG_INFINITY;
        let q = quantize(&data, QuantScheme::int8());
        let back = Quantized::from_words(&q.to_words(), 130, QuantScheme::int8());
        let out = dequantize(&back);
        assert!(out[..128].iter().all(|x| x.is_finite()));
        assert!(out[128..].iter().all(|x| x.is_nan()));
    }

    #[test]
    #[should_panic(expected = "encoded stream length mismatch")]
    fn from_words_rejects_wrong_length() {
        let _ = Quantized::from_words(&[0.0; 3], 128, QuantScheme::int8());
    }

    #[test]
    fn labels() {
        assert_eq!(QuantScheme::F16.label(), "f16");
        assert_eq!(QuantScheme::int8().label(), "int8/128");
        assert_eq!(CompressionConfig::both(QuantScheme::int8()).label(), "int8/128·wg");
        let mut c = CompressionConfig::grads_only(QuantScheme::int4());
        c.scope = CompressionScope::IntraGroupOnly;
        assert_eq!(c.label(), "int4/128·g·intra");
    }

    #[test]
    fn cost_model_agrees_with_kernel_accounting() {
        // The α–β model's compressed_bytes must equal the kernels' real
        // wire_bytes whenever the element count is whole.
        for scheme in SCHEMES {
            let cm = scheme.cost_model();
            for len in [128usize, 1000, 1 << 16] {
                assert_eq!(
                    cm.compressed_bytes(4 * len as u64),
                    scheme.wire_bytes(len),
                    "{scheme:?} len={len}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round-trip error ≤ the reported per-block half-step bound, for
        /// adversarial shapes: empty buffers, len < block, len % block ≠ 0,
        /// block = 1.
        #[test]
        fn prop_round_trip_error_bounded(
            seed in 0usize..1000,
            len in 0usize..600,
            block in 1usize..200,
            bits4 in 0usize..2,
        ) {
            let scheme = if bits4 == 1 {
                QuantScheme::Int4 { block }
            } else {
                QuantScheme::Int8 { block }
            };
            let data = payload(seed, len);
            let q = quantize(&data, scheme);
            let bound = q.error_bound();
            let out = dequantize(&q);
            prop_assert_eq!(out.len(), len);
            for (&x, &y) in data.iter().zip(out.iter()) {
                prop_assert!((x - y).abs() <= bound,
                    "scheme {:?}: |{} - {}| > {}", scheme, x, y, bound);
            }
        }

        /// The word encoding is a bijection for every shape.
        #[test]
        fn prop_words_round_trip(
            seed in 0usize..1000,
            len in 0usize..400,
            block in 1usize..130,
        ) {
            for scheme in [QuantScheme::F16, QuantScheme::Int8 { block }, QuantScheme::Int4 { block }] {
                let q = quantize(&payload(seed, len), scheme);
                let back = Quantized::from_words(&q.to_words(), len, scheme);
                prop_assert_eq!(back, q);
            }
        }

        /// Quantization is idempotent: re-quantizing a dequantized buffer
        /// reproduces it exactly (the per-hop requantization in qgZ-style
        /// reduction does not drift on already-quantized data).
        #[test]
        fn prop_requantization_is_stable(
            seed in 0usize..1000,
            len in 1usize..300,
        ) {
            let scheme = QuantScheme::int8();
            let once = round_trip(&payload(seed, len), scheme);
            let twice = round_trip(&once, scheme);
            for (&a, &b) in once.iter().zip(twice.iter()) {
                // Stable to the rounding slack of one extra trip.
                prop_assert!((a - b).abs() <= 2.0 * quantize(&once, scheme).error_bound());
            }
        }
    }
}
