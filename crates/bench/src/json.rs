//! A tiny JSON document model with a pretty serializer.
//!
//! The bench harness used to derive `serde::Serialize` for its result
//! tables; the offline build environment can't fetch serde, and the needs
//! here are small (string/number/array/object, pretty-printed), so this
//! hand-rolled writer replaces it. See `vendor/README.md`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON string.
    Str(String),
    /// JSON number (non-finite values serialize as `null`).
    Num(f64),
    /// JSON boolean.
    Bool(bool),
    /// JSON array.
    Arr(Vec<Json>),
    /// JSON object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from anything convertible to values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Pretty-print with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Str(s) => render_string(out, s),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0", matching
                    // the serde_json output the results files used to have.
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    v.render(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    render_string(out, k);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<f32> for Json {
    fn from(x: f32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl<V: Into<Json> + Clone> From<&[V]> for Json {
    fn from(xs: &[V]) -> Json {
        Json::arr(xs.iter().cloned())
    }
}
impl<V: Into<Json>> From<Vec<V>> for Json {
    fn from(xs: Vec<V>) -> Json {
        Json::arr(xs)
    }
}

/// Types that can report themselves as a [`Json`] document.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_shape() {
        let doc = Json::obj([
            ("title", Json::from("t")),
            ("rows", Json::arr([1.0f64, 2.5])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.pretty();
        assert!(s.starts_with("{\n  \"title\": \"t\""), "{s}");
        assert!(s.contains("\"rows\": [\n    1,\n    2.5\n  ]"), "{s}");
        assert!(s.contains("\"empty\": []"), "{s}");
        assert!(s.ends_with('}'), "{s}");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd".into()).pretty();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }
}
