//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the MiCS
//! paper (see DESIGN.md §4 for the index). They print aligned text tables —
//! the same rows/series the paper plots — and also drop machine-readable
//! JSON into `results/` for EXPERIMENTS.md bookkeeping.

#![warn(missing_docs)]

use mics_cluster::{ClusterSpec, InstanceType};
use mics_core::{simulate, RunReport, Strategy, TrainingJob};
use mics_model::WorkloadSpec;
use std::fmt::Display;
use std::path::PathBuf;

pub use mics_core::json;
pub use mics_core::json::{Json, ToJson};

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table/figure title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Print the table with aligned columns.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            line(row);
        }
    }

    /// Print and persist as `results/<name>.json`.
    pub fn finish(&self, name: &str) {
        self.print();
        write_json(name, self);
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::from(self.title.as_str())),
            ("headers", Json::arr(self.headers.iter().map(String::as_str))),
            (
                "rows",
                Json::Arr(
                    self.rows.iter().map(|r| Json::arr(r.iter().map(String::as_str))).collect(),
                ),
            ),
        ])
    }
}

/// Persist any JSON-convertible value as `results/<name>.json` (best effort —
/// failures are reported, not fatal, so benches still work read-only).
pub fn write_json<T: ToJson>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("note: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json().pretty()) {
        eprintln!("note: cannot write {}: {e}", path.display());
    } else {
        println!("[results written to {}]", path.display());
    }
}

/// A p3dn.24xlarge (V100, 100 Gbps) cluster of `nodes` nodes.
pub fn v100(nodes: usize) -> ClusterSpec {
    ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes)
}

/// A p4d.24xlarge (A100, 400 Gbps) cluster of `nodes` nodes.
pub fn a100(nodes: usize) -> ClusterSpec {
    ClusterSpec::new(InstanceType::p4d_24xlarge(), nodes)
}

/// Gradient-accumulation depth for the paper's default global batch:
/// `global_batch / (devices × micro_batch)`, minimum 1.
pub fn accum_steps(devices: usize, micro_batch: usize, global_batch: usize) -> usize {
    (global_batch / (devices * micro_batch)).max(1)
}

/// Run one simulated job; `Err` carries the OOM description.
pub fn run(
    workload: &WorkloadSpec,
    cluster: &ClusterSpec,
    strategy: Strategy,
    accum: usize,
) -> Result<RunReport, String> {
    let job = TrainingJob {
        workload: workload.clone(),
        cluster: cluster.clone(),
        strategy,
        accum_steps: accum,
    };
    simulate(&job).map_err(|e| e.to_string())
}

/// The §5.1.1 heuristic: the smallest node-aligned partition group size
/// whose memory estimate fits this cluster (tries 8, 16, 32, … devices).
pub fn smallest_partition_group(workload: &WorkloadSpec, cluster: &ClusterSpec) -> Option<usize> {
    let k = cluster.devices_per_node();
    let n = cluster.total_devices();
    let mut p = k;
    while p <= n {
        let plan = Strategy::Mics(mics_core::MicsConfig::paper_defaults(p)).plan(n);
        if mics_core::memory::check_memory(workload, cluster, &plan, "probe").is_ok() {
            return Some(p);
        }
        p *= 2;
    }
    None
}

/// Render a throughput cell: number, or the paper's `×` OOM marker.
pub fn cell<T: Display>(r: &Result<T, String>) -> String {
    match r {
        Ok(v) => format!("{v}"),
        Err(_) => "×".to_string(),
    }
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_steps_paper_defaults() {
        // Global batch 8192, micro-batch 8.
        assert_eq!(accum_steps(16, 8, 8192), 64);
        assert_eq!(accum_steps(128, 8, 8192), 8);
        // Never below 1.
        assert_eq!(accum_steps(2048, 8, 8192), 1);
    }

    #[test]
    fn table_rows_must_match_headers() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn cell_renders_oom_as_cross() {
        let ok: Result<i32, String> = Ok(5);
        let err: Result<i32, String> = Err("oom".into());
        assert_eq!(cell(&ok), "5");
        assert_eq!(cell(&err), "×");
    }
}
