//! Extension experiment (beyond the paper): recovery from node loss.
//!
//! MiCS replicates model states across partition groups for communication
//! efficiency (§3.2) — but the same replication means a lost node's shards
//! survive on replication-group peers. Recovery is provision-and-copy:
//! P2P shard pulls over the cluster's own NICs, cost-modeled on the
//! simulated fabric. ZeRO-3 shards every state exactly once, so a node
//! loss forces a cluster-wide checkpoint reload plus redoing all work
//! since the checkpoint.
//!
//! BERT 10B on 64 GPUs (8 × p3dn.24xlarge): we sweep the node MTBF of a
//! seeded Poisson failure process over a 24 h window and report per-failure
//! recovery time and goodput for both policies. Same seed ⇒ identical
//! failure timeline for both systems and across reruns.

use mics_bench::{accum_steps, v100, Table};
use mics_core::{
    poisson_failures, simulate_with_failures, MicsConfig, RecoveryConfig, Strategy, TrainingJob,
    ZeroStage,
};
use mics_model::TransformerConfig;
use mics_simnet::SimTime;

fn main() {
    let nodes = 8;
    let n = nodes * 8;
    let w = TransformerConfig::bert_10b().workload(8);
    let s = accum_steps(n, 8, 8192);
    let cfg = RecoveryConfig::default();
    let horizon = SimTime::from_secs(24 * 3600);
    let seed = 2022;

    let job = |strategy: Strategy| TrainingJob {
        workload: w.clone(),
        cluster: v100(nodes),
        strategy,
        accum_steps: s,
    };
    let mics = job(Strategy::Mics(MicsConfig::paper_defaults(8)));
    let z3 = job(Strategy::Zero(ZeroStage::Three));

    let mut t = Table::new(
        "Extension — node-loss recovery (BERT 10B, 64 GPUs, 24 h, seeded Poisson failures)",
        &[
            "node MTBF",
            "failures",
            "MiCS recovery/failure",
            "MiCS goodput",
            "ZeRO-3 recovery/failure",
            "ZeRO-3 goodput",
        ],
    );
    for mtbf_hours in [24u64, 8, 2] {
        let plan_m = poisson_failures(&mics, seed, SimTime::from_secs(mtbf_hours * 3600), horizon);
        let plan_z = poisson_failures(&z3, seed, SimTime::from_secs(mtbf_hours * 3600), horizon);
        assert_eq!(
            plan_m.fingerprint(),
            plan_z.fingerprint(),
            "both systems must face the identical failure timeline"
        );
        let rm = simulate_with_failures(&mics, &cfg, &plan_m, horizon).expect("fits");
        let rz = simulate_with_failures(&z3, &cfg, &plan_z, horizon).expect("fits");
        assert!(
            rm.per_failure < rz.per_failure,
            "MiCS recovery must beat ZeRO-3 ({:?} vs {:?})",
            rm.per_failure,
            rz.per_failure
        );
        t.row(vec![
            format!("{mtbf_hours} h"),
            format!("{}", rm.failures),
            format!("{:.0} s", rm.per_failure.as_secs_f64()),
            format!("{:.1}%", rm.goodput_fraction * 100.0),
            format!("{:.0} s", rz.per_failure.as_secs_f64()),
            format!("{:.1}%", rz.goodput_fraction * 100.0),
        ]);
    }
    t.finish("ext_recovery");
    println!("\nMiCS restores a lost node's shards from replication-group peers (P2P over");
    println!("the cluster's own NICs) and loses one iteration; ZeRO-3 has no surviving");
    println!("replica, so every rank reloads the checkpoint and redoes the gap.");
}
