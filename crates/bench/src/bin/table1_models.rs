//! Table 1: structure of the language models, plus derived parameter counts
//! and FLOPs per sequence (which the paper's Table 1 implies).

use mics_bench::Table;
use mics_model::{megatron_flops_per_sample, TransformerConfig};

fn main() {
    let models = [
        TransformerConfig::bert_10b(),
        TransformerConfig::bert_15b(),
        TransformerConfig::bert_20b(),
        TransformerConfig::bert_50b(),
        TransformerConfig::roberta_20b(),
        TransformerConfig::gpt2_20b(),
    ];
    let mut t = Table::new(
        "Table 1 — model structures (sequence length 512 for all models)",
        &["Model", "Hidden", "Intermediate", "#Layers", "#Heads", "Vocab", "Params", "TFLOPs/seq"],
    );
    for m in &models {
        t.row(vec![
            m.name.clone(),
            m.hidden.to_string(),
            m.intermediate.to_string(),
            m.layers.to_string(),
            m.heads.to_string(),
            m.vocab.to_string(),
            format!("{:.2}B", m.total_params() as f64 / 1e9),
            format!("{:.1}", megatron_flops_per_sample(m, true) / 1e12),
        ]);
    }
    t.finish("table1_models");
}
