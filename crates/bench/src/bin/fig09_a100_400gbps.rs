//! Figure 9: throughput comparison on A100 / 400 Gbps (p4d.24xlarge).
//!
//! BERT 15B and 20B, MiCS vs DeepSpeed ZeRO-3, micro-batch 8. The paper
//! reports MiCS up to 2.21× ZeRO-3 with gains *smaller* than on the
//! 100 Gbps cluster (faster networks mitigate communication overheads), and
//! 96.7% scaling efficiency from 16 → 64 GPUs for BERT 15B.

use mics_bench::{a100, accum_steps, cell, f1, run, Table};
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::TransformerConfig;

fn main() {
    for model in [TransformerConfig::bert_15b(), TransformerConfig::bert_20b()] {
        let w = model.workload(8);
        // §5.1.1 heuristic: smallest partition group that fits (8 for 15B,
        // 16 for 20B on 40 GB A100s).
        let p = mics_bench::smallest_partition_group(&w, &a100(2)).expect("model must fit");
        println!("{}: partition group = {p} GPUs", model.name);
        let mut t = Table::new(
            format!("Figure 9 — 400 Gbps A100 cluster, {}, samples/sec", model.name),
            &["GPUs", "MiCS", "ZeRO-3", "MiCS/ZeRO-3", "MiCS eff. vs 16 GPUs"],
        );
        let mut base: Option<f64> = None;
        for nodes in [2usize, 4, 8] {
            let n = nodes * 8;
            let s = accum_steps(n, 8, 8192);
            let cluster = a100(nodes);
            let mics = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(p)), s)
                .map(|r| r.samples_per_sec);
            let z3 =
                run(&w, &cluster, Strategy::Zero(ZeroStage::Three), s).map(|r| r.samples_per_sec);
            if base.is_none() {
                if let Ok(m) = mics {
                    base = Some(m / n as f64);
                }
            }
            let eff = match (&mics, base) {
                (Ok(m), Some(b)) => format!("{:.1}%", m / n as f64 / b * 100.0),
                _ => "-".into(),
            };
            let ratio = match (&mics, &z3) {
                (Ok(a), Ok(b)) => format!("{:.2}×", a / b),
                _ => "-".into(),
            };
            t.row(vec![n.to_string(), cell(&mics.map(f1)), cell(&z3.map(f1)), ratio, eff]);
        }
        t.finish(&format!("fig09_{}", model.name.to_lowercase().replace(' ', "_")));
    }
}
