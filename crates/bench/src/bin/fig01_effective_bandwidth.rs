//! Figure 1: effective bandwidths measured with all-gather.
//!
//! Reproduces the paper's observation that, for a fixed message size,
//! effective (bus) bandwidth collapses as the node count grows — 128 MB
//! messages get poor utilization on 16 and 32 nodes — while large messages
//! saturate the NIC.

use mics_bench::{f2, Table};
use mics_cluster::InstanceType;
use mics_collectives::bandwidth::{effective_all_gather_bw, NetParams};

fn main() {
    let inst = InstanceType::p3dn_24xlarge();
    let net = NetParams::from_instance(&inst);
    let sizes_mb: [u64; 6] = [8, 32, 128, 512, 1024, 4096];
    let node_counts = [2usize, 4, 8, 16, 32];

    let mut headers = vec!["message".to_string()];
    headers.extend(node_counts.iter().map(|n| format!("{n} nodes (GB/s)")));
    let mut t = Table::new(
        "Figure 1 — effective all-gather bandwidth, p3dn.24xlarge (100 Gbps EFA)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for mb in sizes_mb {
        let mut row = vec![format!("{mb} MB")];
        for &nodes in &node_counts {
            let bw = effective_all_gather_bw(nodes * 8, 8, mb << 20, &net);
            row.push(f2(bw / 1e9));
        }
        t.row(row);
    }
    t.finish("fig01_effective_bandwidth");

    // The §3.2 calibration points.
    let b_part = effective_all_gather_bw(8, 8, 512 << 20, &net);
    let b_all = effective_all_gather_bw(64, 8, 512 << 20, &net);
    println!("\nB_part (one node)      = {:.1} GB/s   (paper: ≈128 GB/s)", b_part / 1e9);
    println!("B_all  (64 GPUs/8 nodes) = {:.1} GB/s   (paper: ≈11 GB/s)", b_all / 1e9);
    println!("cost ratio bound B_part/B_all = {:.1} (paper: up to 11.6)", b_part / b_all);
}
