//! Figure 6: strong scaling with different BERT sizes on V100 / 100 Gbps.
//!
//! MiCS vs DeepSpeed ZeRO-3 vs ZeRO-2 for BERT 10B/15B/20B/50B on 16–128
//! GPUs. MiCS partition group sizes follow §5.1.1 (smallest group that
//! fits): 1 node for 10B, 2 nodes for 15B/20B, 8 nodes for 50B. Micro-batch
//! 8 (ZeRO-2: 4 — it keeps full parameter replicas), global batch 8192.
//! `×` marks out-of-memory, the "linear" column is the linear-scaling
//! reference from the smallest runnable cluster.

use mics_bench::{accum_steps, cell, f1, run, v100, Table};
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::TransformerConfig;

fn main() {
    let cases = [
        (TransformerConfig::bert_10b(), 1usize),
        (TransformerConfig::bert_15b(), 2),
        (TransformerConfig::bert_20b(), 2),
        (TransformerConfig::bert_50b(), 8),
    ];
    let node_counts = [2usize, 4, 8, 16];

    for (model, group_nodes) in cases {
        let p = group_nodes * 8;
        let w8 = model.workload(8);
        let w4 = model.workload(4);
        let mut t = Table::new(
            format!(
                "Figure 6 — strong scaling, {} (MiCS partition group = {} node(s)), samples/sec",
                model.name, group_nodes
            ),
            &["GPUs", "MiCS", "ZeRO-3", "ZeRO-2 (mb=4)", "linear", "MiCS/ZeRO-3"],
        );
        let mut base: Option<(usize, f64)> = None;
        for nodes in node_counts {
            if nodes < group_nodes {
                continue;
            }
            let n = nodes * 8;
            let s8 = accum_steps(n, 8, 8192);
            let s4 = accum_steps(n, 4, 8192);
            let cluster = v100(nodes);
            let mics = run(&w8, &cluster, Strategy::Mics(MicsConfig::paper_defaults(p)), s8)
                .map(|r| r.samples_per_sec);
            let z3 =
                run(&w8, &cluster, Strategy::Zero(ZeroStage::Three), s8).map(|r| r.samples_per_sec);
            let z2 =
                run(&w4, &cluster, Strategy::Zero(ZeroStage::Two), s4).map(|r| r.samples_per_sec);
            if let (None, Ok(m)) = (&base, &mics) {
                base = Some((n, *m));
            }
            let linear = base.map(|(n0, t0)| t0 * n as f64 / n0 as f64).unwrap_or(0.0);
            let ratio = match (&mics, &z3) {
                (Ok(a), Ok(b)) => format!("{:.2}×", a / b),
                _ => "-".into(),
            };
            t.row(vec![
                n.to_string(),
                cell(&mics.map(f1)),
                cell(&z3.map(f1)),
                cell(&z2.map(f1)),
                f1(linear),
                ratio,
            ]);
        }
        t.finish(&format!("fig06_{}", model.name.to_lowercase().replace(' ', "_")));
    }
}
