//! Extension experiment (beyond the paper): elastic training over a spot
//! capacity trace.
//!
//! MiCS emits the synchronization schedule from an explicit `Geometry`,
//! and `reshape` re-emits it for any other geometry — so a job facing spot
//! preemptions does not have to stall until the full cluster is back. This
//! experiment quantifies that on both backends:
//!
//! * **Simulator sweep** — BERT 10B on 64 GPUs walks a seeded spot capacity
//!   trace (preemptions paired with later capacity returns) over 24 h, for a
//!   range of mean times between preemptions. The *elastic* policy reshapes
//!   onto the largest feasible surviving world at every capacity change
//!   (paying a state reshard plus the interrupted iteration, and instance
//!   provisioning on grow); the *static* policy keeps the full-cluster
//!   geometry, stalls through every outage, and resumes via checkpoint
//!   reload. Both policies face the identical seeded timeline.
//!
//! * **Real backend** — the minidl thread-rank stack executes actual elastic
//!   phase chains: a shrink-and-grow-back bounce must land **bit-identical**
//!   to the uninterrupted run (state round-trips through the foreign
//!   geometry's sharding untouched), on the in-process *and* the socket
//!   transport; and a genuine grow (2 → 4 ranks mid-run) must continue the
//!   loss curve exactly where the small world left it.
//!
//! Enforced claims: same fault fingerprint across policies; elastic goodput
//! never below static and strictly above under churn; elastic goodput
//! degrades monotonically with churn; reshapes and grows actually happen;
//! and every real-backend continuity check is exact, not approximate.

use mics_bench::{accum_steps, v100, write_json, Json, Table, ToJson};
use mics_core::{
    simulate_elastic, spot_plan, MicsConfig, RecoveryConfig, SpotPolicy, Strategy, TrainingJob,
};
use mics_dataplane::TransportKind;
use mics_minidl::{
    train, train_elastic_on, ElasticPhase, LossScale, Mlp, SyncSchedule, TrainSetup,
};
use mics_model::TransformerConfig;
use mics_simnet::SimTime;

/// Simulator half: goodput vs preemption rate, elastic vs static.
fn sim_sweep() -> Json {
    let nodes = 8;
    let n = nodes * 8;
    let job = TrainingJob {
        workload: TransformerConfig::bert_10b().workload(8),
        cluster: v100(nodes),
        strategy: Strategy::Mics(MicsConfig::paper_defaults(8)),
        accum_steps: accum_steps(n, 8, 8192),
    };
    let cfg = RecoveryConfig::default();
    let horizon = SimTime::from_secs(24 * 3600);
    let outage = SimTime::from_secs(30 * 60);
    let seed = 2026;

    let mut t = Table::new(
        "Extension — elastic vs static on a spot capacity trace \
         (BERT 10B, 64 GPUs, 24 h, 30 min mean outage, seeded)",
        &[
            "mean time between preemptions",
            "preemptions",
            "grows",
            "reshapes",
            "min nodes",
            "elastic goodput",
            "static goodput",
        ],
    );
    let mut elastic_goodputs = Vec::new();
    let mut total_preemptions = 0usize;
    let mut strictly_better = 0usize;
    for mtbf_hours in [24u64, 8, 2] {
        let plan = spot_plan(&job, seed, SimTime::from_secs(mtbf_hours * 3600), outage, horizon);
        let el = simulate_elastic(&job, &cfg, &plan, horizon, SpotPolicy::Elastic).expect("fits");
        let st = simulate_elastic(&job, &cfg, &plan, horizon, SpotPolicy::Static).expect("fits");
        assert_eq!(
            el.fault_fingerprint, st.fault_fingerprint,
            "both policies must walk the identical capacity trace"
        );
        assert_eq!(st.reshapes, 0, "the static policy never reshapes");
        assert!(
            el.goodput_fraction >= st.goodput_fraction,
            "elastic must never trail static ({} vs {} at MTBF {mtbf_hours} h)",
            el.goodput_fraction,
            st.goodput_fraction
        );
        if el.preemptions > 0 {
            assert!(el.reshapes > 0, "preempted elastic runs must actually reshape");
        }
        if el.goodput_fraction > st.goodput_fraction {
            strictly_better += 1;
        }
        total_preemptions += el.preemptions;
        elastic_goodputs.push(el.goodput_fraction);
        t.row(vec![
            format!("{mtbf_hours} h"),
            format!("{}", el.preemptions),
            format!("{}", el.grows),
            format!("{}", el.reshapes),
            format!("{}", el.min_nodes),
            format!("{:.1}%", el.goodput_fraction * 100.0),
            format!("{:.1}%", st.goodput_fraction * 100.0),
        ]);
    }
    assert!(total_preemptions > 0, "the sweep must actually exercise preemptions");
    assert!(strictly_better > 0, "elastic must strictly beat static somewhere in the sweep");
    for w in elastic_goodputs.windows(2) {
        assert!(w[0] >= w[1], "elastic goodput must degrade monotonically with churn");
    }
    t.print();
    t.to_json()
}

fn elastic_setup(world: usize, p: usize, iters: usize) -> TrainSetup {
    TrainSetup {
        model: Mlp::new(&[6, 10, 2]),
        world,
        partition_size: p,
        micro_batch: 4,
        accum_steps: 2,
        iterations: iters,
        lr: 0.02,
        seed: 2022,
        quantize: false,
        loss_scale: LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 0,
    }
}

/// Real-backend half: actual elastic phase chains through the minidl
/// engine, exactness asserted (not approximated).
fn real_backend() -> Json {
    // Shrink-and-grow-back bounce vs the uninterrupted run: the reshape
    // round-trip [G t1 | →G′ | →G t2] must be bit-identical to [G t1+t2],
    // in both directions and on both transports.
    let base = elastic_setup(4, 2, 10);
    let flat = train(&base, SyncSchedule::TwoHop);
    let mut bounce_checks = 0usize;
    for (w, p) in [(2usize, 1usize), (8, 4)] {
        let phases = [
            ElasticPhase { world: 4, partition_size: 2, iterations: 6 },
            ElasticPhase { world: w, partition_size: p, iterations: 0 },
            ElasticPhase { world: 4, partition_size: 2, iterations: 4 },
        ];
        for transport in [TransportKind::Local, TransportKind::Socket] {
            let el = train_elastic_on(transport, &base, SyncSchedule::TwoHop, &phases);
            assert_eq!(
                el.losses, flat.losses,
                "bounce through {w}/{p} on {transport:?} drifted the loss curve"
            );
            assert_eq!(
                el.final_params, flat.final_params,
                "bounce through {w}/{p} on {transport:?} drifted the parameters"
            );
            bounce_checks += 1;
        }
    }

    // A genuine grow: train at 2 ranks, grow to 4 mid-run. The pre-grow
    // prefix must continue the 2-rank loss curve exactly, and the grown
    // world must keep making progress.
    let small = elastic_setup(2, 1, 10);
    let uninterrupted = train(&small, SyncSchedule::TwoHop);
    let phases = [
        ElasticPhase { world: 2, partition_size: 1, iterations: 5 },
        ElasticPhase { world: 4, partition_size: 2, iterations: 5 },
    ];
    let grown = train_elastic_on(TransportKind::Local, &small, SyncSchedule::TwoHop, &phases);
    assert_eq!(
        grown.losses[..5],
        uninterrupted.losses[..5],
        "the grow must resume exactly where the small world left off"
    );
    assert_eq!(grown.losses.len(), 10);
    let first = grown.losses[0];
    let last = *grown.losses.last().unwrap();
    assert!(last.is_finite() && last < first, "the grown world must keep training");

    println!("\nreal backend: {bounce_checks} bounce chains (2/1 and 8/4, local + socket)");
    println!("bit-identical to the uninterrupted run; 2→4 grow continues the loss");
    println!("curve exactly ({first:.4} → {last:.4} over 10 iterations)");

    Json::obj([
        ("bounce_bit_exact", Json::Bool(true)),
        ("bounce_checks", Json::from(bounce_checks)),
        ("bounce_geometries", Json::arr(["2/1", "8/4"])),
        ("transports", Json::arr(["local", "socket"])),
        ("grow_prefix_bit_exact", Json::Bool(true)),
        ("grow_phases", Json::arr(["2 ranks × 5 iters", "4 ranks × 5 iters"])),
        ("first_loss", Json::from(first as f64)),
        ("final_loss", Json::from(last as f64)),
    ])
}

fn main() {
    let sweep = sim_sweep();
    let real = real_backend();
    write_json(
        "ext_elastic",
        &Json::obj([
            ("sweep", sweep),
            ("real_backend", real),
            ("horizon_hours", Json::from(24u64)),
            ("mean_outage_minutes", Json::from(30u64)),
            ("seed", Json::from(2026u64)),
        ]),
    );
    println!("\nelastic reshaping turns spot churn from dead time into degraded-but-");
    println!("forward progress: the schedule is a function of the geometry, so shrink");
    println!("and grow are re-emissions plus a state reshard, not a redeploy.");
}
