//! Table 2 + Figure 10a: comparison to Megatron-LM-3D.
//!
//! The 128-layer BERT variant (so every pipeline size divides the layer
//! count), micro-batch 8, global batch 4096, 64 V100 GPUs. The paper finds
//! Megatron highly sensitive to its (TP, PP) configuration — config (3) is
//! ≈38% better than config (1) — and MiCS up to 31% faster than the best
//! Megatron configuration, without any of that tuning.

use mics_bench::{accum_steps, f1, run, v100, Table};
use mics_core::{
    simulate_dp_pipeline, simulate_megatron, MegatronConfig, MicsConfig, Strategy, TrainingJob,
};
use mics_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::megatron_comparison();
    let nodes = 8; // 64 GPUs
    let n = nodes * 8;
    let cluster = v100(nodes);

    let mut t2 = Table::new(
        "Table 2 — Megatron-LM-3D configurations",
        &["Configuration", "Tensor MP size", "Pipeline MP size"],
    );
    t2.row(vec!["Megatron-LM-3D (1)".into(), "8".into(), "1".into()]);
    t2.row(vec!["Megatron-LM-3D (2)".into(), "4".into(), "4".into()]);
    t2.row(vec!["Megatron-LM-3D (3)".into(), "2".into(), "8".into()]);
    t2.finish("table2_megatron_configs");

    let configs = [
        ("Megatron-LM-3D (1)", MegatronConfig::table2_config1(8, 4096)),
        ("Megatron-LM-3D (2)", MegatronConfig::table2_config2(8, 4096)),
        ("Megatron-LM-3D (3)", MegatronConfig::table2_config3(8, 4096)),
    ];
    let mut t = Table::new(
        format!("Figure 10a — {} on {} GPUs, samples/sec", model.name, n),
        &["System", "throughput", "bubble", "vs Megatron(1)"],
    );
    let mut results = Vec::new();
    for (label, cfg) in &configs {
        match simulate_megatron(&model, &cluster, cfg) {
            Ok(r) => {
                results.push((label.to_string(), r.samples_per_sec, r.bubble_fraction));
            }
            Err(e) => {
                println!("{label}: {e}");
                results.push((label.to_string(), 0.0, 0.0));
            }
        }
    }
    let mics = run(
        &model.workload(8),
        &cluster,
        Strategy::Mics(MicsConfig::paper_defaults(16)),
        accum_steps(n, 8, 4096),
    )
    .expect("MiCS must fit");
    let base = results[0].1;
    for (label, thr, bubble) in &results {
        t.row(vec![
            label.clone(),
            f1(*thr),
            format!("{:.0}%", bubble * 100.0),
            format!("{:.2}×", thr / base),
        ]);
    }
    t.row(vec![
        "MiCS (p=16)".into(),
        f1(mics.samples_per_sec),
        "0%".into(),
        format!("{:.2}×", mics.samples_per_sec / base),
    ]);
    // The executable counterpoint to the analytic Megatron rows: the same
    // 64 GPUs as a dp=32 × pp=2 1F1B MiCS program, lowered through the
    // schedule IR and costed event-by-event on the simulator (StageSend /
    // StageRecv boundary hops included) rather than by closed form.
    let pp = 2;
    let stage = TrainingJob {
        workload: model.workload(8),
        cluster: v100(nodes / pp),
        strategy: Strategy::Mics(MicsConfig::paper_defaults(16)),
        accum_steps: accum_steps(n / pp, 8, 4096),
    };
    let act_bytes = (8 * model.seq_len * model.hidden) as u64 * 2;
    let pipe = simulate_dp_pipeline(&stage, pp, act_bytes).expect("DP×PP MiCS must fit");
    t.row(vec![
        format!("MiCS DP×PP (p=16, pp={pp}, executable)"),
        f1(pipe.samples_per_sec),
        format!("{:.1}% util", pipe.compute_fraction * 100.0),
        format!("{:.2}×", pipe.samples_per_sec / base),
    ]);
    t.finish("fig10a_megatron");

    let best = results.iter().map(|r| r.1).fold(0.0, f64::max);
    println!(
        "\nMiCS vs best Megatron config: {:.1}% faster (paper: up to 31%)",
        (mics.samples_per_sec / best - 1.0) * 100.0
    );
    println!(
        "Megatron config sensitivity (3)/(1): {:.2}× (paper: 1.38×)",
        results[2].1 / results[0].1
    );
}
