//! Figure 12a: micro-benchmark — hierarchical vs vanilla all-gather elapsed
//! time on two p3dn nodes (16 GPUs), messages up to 256 MB (§5.2.2).
//!
//! Two complementary measurements:
//! * the *cost model* (what the simulator executors price), and
//! * the *real data plane* (thread-ranks moving real f32 buffers through
//!   the 3-stage algorithm), verifying the algorithms agree bit-for-bit.

use mics_bench::{f2, Table};
use mics_cluster::InstanceType;
use mics_collectives::bandwidth::NetParams;
use mics_collectives::cost::{all_gather_flat, all_gather_hierarchical};
use mics_collectives::HierarchicalLayout;
use mics_dataplane::hierarchical::split_hierarchical;
use mics_dataplane::{hierarchical_all_gather, run_ranks};

fn main() {
    let net = NetParams::from_instance(&InstanceType::p3dn_24xlarge());
    let (p, k) = (16usize, 8usize);

    let mut t = Table::new(
        "Figure 12a — hierarchical vs vanilla all-gather, 2 nodes (16 GPUs)",
        &["message", "vanilla (ms)", "hierarchical (ms)", "hier/vanilla"],
    );
    for mb in [2u64, 8, 32, 64, 128, 256] {
        let m = mb << 20;
        let flat = all_gather_flat(p, k, m, &net).serial_time(&net);
        let hier = all_gather_hierarchical(p, k, m, &net, true).unwrap().serial_time(&net);
        t.row(vec![
            format!("{mb} MB"),
            f2(flat.as_millis_f64()),
            f2(hier.as_millis_f64()),
            format!("{:.1}%", hier.as_secs_f64() / flat.as_secs_f64() * 100.0),
        ]);
    }
    t.finish("fig12a_hierarchical_microbench");
    println!("\n(paper: hierarchical ≈72.1% of vanilla at 128 MB)");

    // Data-plane equivalence check on real buffers.
    let layout = HierarchicalLayout::new(p, k).unwrap();
    let chunk = 4096;
    let hier = run_ranks(p, |mut comm| {
        let rank = comm.rank();
        let (channel, node) = split_hierarchical(&mut comm, &layout);
        let shard: Vec<f32> = (0..chunk).map(|i| ((rank * 131 + i) as f32).sin()).collect();
        hierarchical_all_gather(&channel, &node, &layout, &shard)
    });
    let flat = run_ranks(p, |comm| {
        let rank = comm.rank();
        let shard: Vec<f32> = (0..chunk).map(|i| ((rank * 131 + i) as f32).sin()).collect();
        comm.all_gather(&shard)
    });
    assert_eq!(hier, flat, "hierarchical all-gather must equal flat all-gather");
    println!(
        "data plane: 3-stage hierarchical all-gather over {p} thread-ranks is \
         bit-identical to flat all-gather ({} elements) ✓",
        p * chunk
    );
}
