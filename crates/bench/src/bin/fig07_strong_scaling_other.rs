//! Figure 7: strong scaling with other language models (RoBERTa 20B and
//! GPT-2 20B), MiCS vs DeepSpeed ZeRO-2/3, 100 Gbps V100 clusters.

use mics_bench::{accum_steps, cell, f1, run, v100, Table};
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::TransformerConfig;

fn main() {
    for model in [TransformerConfig::roberta_20b(), TransformerConfig::gpt2_20b()] {
        let p = 16; // two nodes, same as BERT 20B (§5.1.1 heuristic)
        let w8 = model.workload(8);
        let w4 = model.workload(4);
        let mut t = Table::new(
            format!("Figure 7 — strong scaling, {}, samples/sec", model.name),
            &["GPUs", "MiCS", "ZeRO-3", "ZeRO-2 (mb=4)", "linear", "MiCS/ZeRO-3"],
        );
        let mut base: Option<(usize, f64)> = None;
        for nodes in [2usize, 4, 8, 16] {
            let n = nodes * 8;
            let cluster = v100(nodes);
            let mics = run(
                &w8,
                &cluster,
                Strategy::Mics(MicsConfig::paper_defaults(p)),
                accum_steps(n, 8, 8192),
            )
            .map(|r| r.samples_per_sec);
            let z3 = run(&w8, &cluster, Strategy::Zero(ZeroStage::Three), accum_steps(n, 8, 8192))
                .map(|r| r.samples_per_sec);
            let z2 = run(&w4, &cluster, Strategy::Zero(ZeroStage::Two), accum_steps(n, 4, 8192))
                .map(|r| r.samples_per_sec);
            if let (None, Ok(m)) = (&base, &mics) {
                base = Some((n, *m));
            }
            let linear = base.map(|(n0, t0)| t0 * n as f64 / n0 as f64).unwrap_or(0.0);
            let ratio = match (&mics, &z3) {
                (Ok(a), Ok(b)) => format!("{:.2}×", a / b),
                _ => "-".into(),
            };
            t.row(vec![
                n.to_string(),
                cell(&mics.map(f1)),
                cell(&z3.map(f1)),
                cell(&z2.map(f1)),
                f1(linear),
                ratio,
            ]);
        }
        t.finish(&format!("fig07_{}", model.name.to_lowercase().replace(' ', "_")));
    }
}
