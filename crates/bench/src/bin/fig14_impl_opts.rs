//! Figure 14: improvements of the §4 implementation optimizations.
//!
//! BERT 10B, default setup. "MiCS (ZeRO-3)" partitions model states over
//! *all* devices (no communication-scale reduction) but keeps fine-grained
//! synchronization, cached fetch decisions, coalesced APIs and arena
//! memory — isolating §4 from §3. The paper measures MiCS (ZeRO-3) up to
//! 54.1% faster than DeepSpeed ZeRO-3 at 128 GPUs, with full MiCS far
//! ahead of both.

use mics_bench::{accum_steps, f1, run, v100, Table};
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::bert_10b();
    let w = model.workload(8);
    let mut t = Table::new(
        "Figure 14 — implementation optimizations (BERT 10B), samples/sec",
        &["GPUs", "DeepSpeed ZeRO-3", "MiCS (ZeRO-3)", "MiCS", "impl gain", "scale gain"],
    );
    for nodes in [2usize, 4, 8, 16] {
        let n = nodes * 8;
        let s = accum_steps(n, 8, 8192);
        let cluster = v100(nodes);
        let ds =
            run(&w, &cluster, Strategy::Zero(ZeroStage::Three), s).expect("fits").samples_per_sec;
        let mics_z3 = run(&w, &cluster, Strategy::Mics(MicsConfig::zero3_with_impl_opts(n)), s)
            .expect("fits")
            .samples_per_sec;
        let full = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(8)), s)
            .expect("fits")
            .samples_per_sec;
        t.row(vec![
            n.to_string(),
            f1(ds),
            f1(mics_z3),
            f1(full),
            format!("{:+.1}%", (mics_z3 / ds - 1.0) * 100.0),
            format!("{:+.1}%", (full / mics_z3 - 1.0) * 100.0),
        ]);
    }
    t.finish("fig14_impl_opts");
    println!("\n(paper: MiCS (ZeRO-3) is up to 54.1% over DeepSpeed ZeRO-3 at 128 GPUs;");
    println!(" full MiCS far exceeds both — the communication-scale reduction dominates)");
}
