//! Extension experiment (beyond the paper): straggler isolation.
//!
//! §6 notes that Varuna attacks network jitter on cheap cloud instances and
//! calls the objective orthogonal to MiCS — but MiCS's communication-scale
//! reduction *also* buys straggler isolation: with single-node partition
//! groups, a degraded NIC only taxes the amortized 2-hop boundary
//! synchronization, while ZeRO-3 drags every parameter gather of every
//! device through the slow node.
//!
//! One node of an 8-node V100 cluster gets its NIC degraded to
//! {100%, 50%, 25%}; we report throughput relative to the clean cluster.

use mics_bench::{accum_steps, f1, run, v100, Table};
use mics_cluster::NodeId;
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::bert_10b();
    let w = model.workload(8);
    let nodes = 8;
    let n = nodes * 8;
    let s = accum_steps(n, 8, 8192);

    let mut t = Table::new(
        "Extension — straggler isolation (BERT 10B, 64 GPUs, one slow node)",
        &["slow-node NIC", "MiCS (p=8)", "MiCS kept", "ZeRO-3", "ZeRO-3 kept"],
    );
    let mut mics_base = None;
    let mut z3_base = None;
    for factor in [1.0f64, 0.5, 0.25] {
        let cluster = v100(nodes).with_slow_node(NodeId(nodes - 1), factor);
        let mics = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(8)), s)
            .expect("fits")
            .samples_per_sec;
        let z3 =
            run(&w, &cluster, Strategy::Zero(ZeroStage::Three), s).expect("fits").samples_per_sec;
        mics_base.get_or_insert(mics);
        z3_base.get_or_insert(z3);
        t.row(vec![
            format!("{:.0}%", factor * 100.0),
            f1(mics),
            format!("{:.1}%", mics / mics_base.unwrap() * 100.0),
            f1(z3),
            format!("{:.1}%", z3 / z3_base.unwrap() * 100.0),
        ]);
    }
    t.finish("ext_straggler");
    println!("\nMiCS's small partition groups localize the damage of a degraded node;");
    println!("ZeRO-3's cluster-wide collectives propagate it to every device.");
}
