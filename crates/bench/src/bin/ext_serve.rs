//! Extension: the planner service under load.
//!
//! The MiCS simulator answers "what will this job cost?" in microseconds,
//! but capacity planning asks that question thousands of times — sweeps,
//! tuners, dashboards, people — and mostly about configurations someone
//! else already asked about. `mics-planner` turns the simulator into a
//! long-running service with a single-flight memo cache; this experiment
//! measures that service over real sockets in three phases:
//!
//! 1. **cold** — 120 distinct jobs split across 4 clients: every query
//!    misses and runs the simulator;
//! 2. **warm** — 8 clients re-query all 120 jobs: every query is served
//!    from cache, zero new simulations;
//! 3. **burst** — 16 clients fire the *same* fresh tune query
//!    simultaneously (barrier-synced, 8 rounds): the single-flight cache
//!    collapses each round to one tuner run.
//!
//! Enforced claims:
//!
//! * ≥ 1000 queries served concurrently over the socket protocol;
//! * warm phase: cache hit rate > 0 and **no** new simulator runs;
//! * burst phase: collapse factor (queries per underlying run) > 1, with
//!   in-flight duplicates observed waiting on the leader;
//! * a served response is **byte-identical** to the in-process
//!   `mics_core::simulate` answer for the same job.

use mics_bench::{write_json, Json, Table, ToJson};
use mics_planner::{JobSpec, PlannerClient, PlannerConfig, PlannerServer};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Latency percentile out of a sorted slice of nanosecond samples.
fn pct(sorted_ns: &[u64], p: f64) -> f64 {
    sorted_ns[((sorted_ns.len() - 1) as f64 * p) as usize] as f64 / 1e3
}

/// One measured phase: per-query latencies plus the cache-counter deltas
/// `(queries, hits, dedup, sim_runs)` it caused.
struct Phase {
    name: &'static str,
    latencies_ns: Vec<u64>,
    wall: Duration,
    queries: u64,
    hits: u64,
    dedup: u64,
    sim_runs: u64,
}

/// Run `threads` clients against `addr`, each executing `work(thread_id,
/// &mut client)`, and collect every per-query latency.
fn drive(
    addr: &str,
    threads: usize,
    work: impl Fn(usize, &mut PlannerClient) -> Vec<u64> + Send + Sync + 'static,
) -> (Vec<u64>, Duration) {
    let work = Arc::new(work);
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.to_string();
            let work = Arc::clone(&work);
            std::thread::spawn(move || {
                let mut client = PlannerClient::connect(&addr).expect("client must connect");
                work(t, &mut client)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("bench client must not panic"));
    }
    (latencies, started.elapsed())
}

fn main() {
    let server = PlannerServer::start(PlannerConfig::default()).expect("server must start");
    let addr = server.addr().to_string();
    println!("planner serving on {addr}");

    // 120 distinct jobs: micro-batch × accumulation × cluster geometry.
    let cold_specs: Vec<JobSpec> = (1..=15usize)
        .flat_map(|mb| {
            [(1usize, 4usize), (1, 8), (2, 8), (2, 16)].into_iter().flat_map(move |(nodes, p)| {
                (1..=2usize).map(move |accum| {
                    let mut spec = JobSpec::mics("bert-1.5b", nodes, p);
                    spec.micro_batch = mb;
                    spec.accum = accum;
                    spec
                })
            })
        })
        .collect();
    assert_eq!(cold_specs.len(), 120);

    let mut phases: Vec<Phase> = Vec::new();
    let mut before = server.cache_stats();
    let mut record = |name, latencies_ns: Vec<u64>, wall, server: &PlannerServer| {
        let after = server.cache_stats();
        phases.push(Phase {
            name,
            latencies_ns,
            wall,
            queries: after.0 - before.0,
            hits: after.1 - before.1,
            dedup: after.3 - before.3,
            sim_runs: after.4 - before.4,
        });
        before = after;
    };

    // ── Phase 1: cold — 4 clients split the distinct jobs ───────────────
    let specs = cold_specs.clone();
    let (lat, wall) = drive(&addr, 4, move |t, client| {
        specs
            .iter()
            .skip(t)
            .step_by(4)
            .map(|spec| {
                let q = Instant::now();
                client.simulate(spec, None).unwrap().expect("cold spec must fit");
                q.elapsed().as_nanos() as u64
            })
            .collect()
    });
    record("cold", lat, wall, &server);

    // ── Phase 2: warm — 8 clients re-query everything ───────────────────
    let specs = cold_specs.clone();
    let (lat, wall) = drive(&addr, 8, move |_, client| {
        specs
            .iter()
            .map(|spec| {
                let q = Instant::now();
                client.simulate(spec, None).unwrap().expect("warm spec must fit");
                q.elapsed().as_nanos() as u64
            })
            .collect()
    });
    record("warm", lat, wall, &server);

    // ── Phase 3: duplicate burst — 16 clients, same fresh tune query ────
    const BURST_CLIENTS: usize = 16;
    const BURST_ROUNDS: usize = 8;
    let barrier = Arc::new(Barrier::new(BURST_CLIENTS));
    let (lat, wall) = drive(&addr, BURST_CLIENTS, move |_, client| {
        (0..BURST_ROUNDS)
            .map(|round| {
                // A spec no earlier phase has seen: accum 3 is new.
                let mut spec = JobSpec::mics("bert-1.5b", 1 + round % 2, 8);
                spec.accum = 3;
                spec.micro_batch = 4 + round;
                barrier.wait();
                let q = Instant::now();
                client.tune(&spec, &[], None).unwrap().expect("burst spec must fit");
                q.elapsed().as_nanos() as u64
            })
            .collect()
    });
    record("burst", lat, wall, &server);

    // ── Byte-identity spot check against the in-process simulator ───────
    let spec = &cold_specs[17];
    let mut client = PlannerClient::connect(&addr).expect("checker must connect");
    let served = client.simulate(spec, None).unwrap().unwrap();
    let direct = mics_core::simulate(&mics_core::TrainingJob {
        workload: mics_model::preset(&spec.model, spec.micro_batch).unwrap(),
        cluster: mics_cluster::ClusterSpec::new(
            mics_cluster::InstanceType::preset(&spec.instance).unwrap(),
            spec.nodes,
        ),
        strategy: mics_core::Strategy::parse(&spec.strategy).unwrap(),
        accum_steps: spec.accum,
    })
    .unwrap();
    let byte_identical = served.to_json().emit() == direct.to_json().emit();
    assert!(byte_identical, "served report must be byte-identical to the in-process answer");

    client.shutdown_server().expect("shutdown must be acknowledged");
    let totals = server.cache_stats();
    server.join();

    // ── Claims ──────────────────────────────────────────────────────────
    let total_queries: u64 = phases.iter().map(|p| p.queries).sum();
    assert!(total_queries >= 1000, "expected ≥ 1000 served queries, got {total_queries}");
    let warm = &phases[1];
    assert_eq!(warm.sim_runs, 0, "warm phase must be pure cache hits");
    assert_eq!(warm.hits, warm.queries, "warm phase must hit on every query");
    let burst = &phases[2];
    let collapse = burst.queries as f64 / burst.sim_runs as f64;
    assert!(collapse > 1.0, "burst must collapse duplicates: factor {collapse}");
    assert!(
        burst.dedup >= 1,
        "barrier-synced duplicates must be observed waiting on the in-flight leader"
    );
    let hit_rate = totals.1 as f64 / totals.0 as f64;
    assert!(hit_rate > 0.0);

    // ── Report ──────────────────────────────────────────────────────────
    let mut t = Table::new(
        "Extension — planner service under load (simulate/tune over sockets)",
        &["phase", "clients", "queries", "sim runs", "wall ms", "queries/s", "p50 µs", "p99 µs"],
    );
    let mut all_ns: Vec<u64> = Vec::new();
    let total_wall: f64 = phases.iter().map(|p| p.wall.as_secs_f64()).sum();
    for (phase, clients) in phases.iter().zip([4usize, 8, BURST_CLIENTS]) {
        let mut ns = phase.latencies_ns.clone();
        ns.sort_unstable();
        t.row(vec![
            phase.name.into(),
            clients.to_string(),
            phase.queries.to_string(),
            phase.sim_runs.to_string(),
            format!("{:.2}", phase.wall.as_secs_f64() * 1e3),
            format!("{:.0}", phase.queries as f64 / phase.wall.as_secs_f64()),
            format!("{:.1}", pct(&ns, 0.50)),
            format!("{:.1}", pct(&ns, 0.99)),
        ]);
        all_ns.extend(&phase.latencies_ns);
    }
    t.print();
    all_ns.sort_unstable();
    println!(
        "\n{total_queries} queries in {:.1} ms: hit rate {:.3}, burst collapse {collapse:.1}×, \
         {} duplicates held in flight, responses byte-identical to in-process calls",
        total_wall * 1e3,
        hit_rate,
        totals.3,
    );

    write_json(
        "ext_serve",
        &Json::obj([
            ("phases", t.to_json()),
            ("queries", Json::from(total_queries)),
            ("distinct_jobs", Json::from(cold_specs.len())),
            ("queries_per_sec", Json::from(total_queries as f64 / total_wall)),
            ("cache_hits", Json::from(totals.1)),
            ("cache_hit_rate", Json::from(hit_rate)),
            ("sim_runs", Json::from(totals.4)),
            ("dedup_collapsed", Json::from(totals.3)),
            ("burst_collapse_factor", Json::from(collapse)),
            ("warm_sim_runs", Json::from(warm.sim_runs)),
            ("p50_us", Json::from(pct(&all_ns, 0.50))),
            ("p99_us", Json::from(pct(&all_ns, 0.99))),
            ("byte_identical", Json::from(byte_identical)),
        ]),
    );
}
