//! §5.1.5 case study: 52B and 100B models on A100 / 400 Gbps clusters.
//!
//! The paper reports 179 / 171 TFLOPS per GPU (≈57% / 55% of A100 peak) for
//! the 52B / 100B models on 128 GPUs, 170 TFLOPS per GPU on 512 GPUs with
//! 99.4% weak-scaling efficiency (partition group = 128 GPUs, micro-batch
//! 16, s = 4), and DeepSpeed ZeRO-3 at only 62 TFLOPS per GPU / 72%
//! weak-scaling efficiency — MiCS 2.74× ZeRO-3 on 512 GPUs.

use mics_bench::{a100, f1, run, Table};
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::{flops::per_gpu_tflops, TransformerConfig};

fn main() {
    const A100_PEAK: f64 = 312.0;
    let mb = 16;
    let s = 4;

    // 52B and 100B at 128 GPUs.
    let mut t = Table::new(
        "Case study — proprietary-scale models on 128 A100 GPUs (partition group = 128)",
        &["Model", "TFLOPS/GPU", "% of peak"],
    );
    for model in [TransformerConfig::proprietary_52b(), TransformerConfig::proprietary_100b()] {
        let r =
            run(&model.workload(mb), &a100(16), Strategy::Mics(MicsConfig::paper_defaults(128)), s)
                .expect("fits");
        let tf = per_gpu_tflops(&model, r.samples_per_sec, 128, true);
        t.row(vec![model.name.clone(), f1(tf), format!("{:.0}%", tf / A100_PEAK * 100.0)]);
    }
    t.finish("case_study_128gpu");

    // Weak scaling 128 → 512 GPUs for the 100B model (partition group 128).
    let model = TransformerConfig::proprietary_100b();
    let w = model.workload(mb);
    let mut t = Table::new(
        "Case study — 100B weak scaling, MiCS (p=128) vs DeepSpeed ZeRO-3",
        &[
            "GPUs",
            "MiCS TFLOPS/GPU",
            "MiCS weak eff.",
            "ZeRO-3 TFLOPS/GPU",
            "ZeRO-3 weak eff.",
            "MiCS/ZeRO-3",
        ],
    );
    let mut mics_base = None;
    let mut z3_base = None;
    for nodes in [16usize, 32, 64] {
        let n = nodes * 8;
        let cluster = a100(nodes);
        let mics =
            run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(128)), s).expect("fits");
        let z3 = run(&w, &cluster, Strategy::Zero(ZeroStage::Three), s).expect("fits");
        let mtf = per_gpu_tflops(&model, mics.samples_per_sec, n, true);
        let ztf = per_gpu_tflops(&model, z3.samples_per_sec, n, true);
        mics_base.get_or_insert(mtf);
        z3_base.get_or_insert(ztf);
        t.row(vec![
            n.to_string(),
            f1(mtf),
            format!("{:.1}%", mtf / mics_base.unwrap() * 100.0),
            f1(ztf),
            format!("{:.1}%", ztf / z3_base.unwrap() * 100.0),
            format!("{:.2}×", mtf / ztf),
        ]);
    }
    t.finish("case_study_100b_weak_scaling");
    println!("\n(paper: MiCS 171→170 TFLOPS/GPU with 99.4% efficiency at 512 GPUs;");
    println!(" DeepSpeed ZeRO-3 at 62 TFLOPS/GPU, 72% efficiency → MiCS 2.74×)");
}
