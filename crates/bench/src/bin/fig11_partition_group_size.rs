//! Figure 11: throughput vs partition group size (§5.2.1).
//!
//! BERT 10B, 64 V100 GPUs, micro-batch 8, global batch 8192. Growing the
//! partition group from 8 to 64 GPUs (at which point MiCS degenerates to
//! ZeRO-3 partitioning) trends throughput down — the paper measures 1.6×
//! between the extremes — so the smallest group that fits is best.

use mics_bench::{accum_steps, f1, f2, run, v100, Table};
use mics_core::{MicsConfig, Strategy};
use mics_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::bert_10b();
    let w = model.workload(8);
    let nodes = 8;
    let n = nodes * 8;
    let s = accum_steps(n, 8, 8192);
    let cluster = v100(nodes);

    let mut t = Table::new(
        "Figure 11 — throughput vs partition group size (BERT 10B, 64 GPUs)",
        &["group size", "samples/sec", "vs p=8"],
    );
    let mut first = None;
    for p in [8usize, 16, 32, 64] {
        let r = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(p)), s)
            .expect("all group sizes fit for 10B");
        let thr = r.samples_per_sec;
        if first.is_none() {
            first = Some(thr);
        }
        t.row(vec![p.to_string(), f1(thr), f2(thr / first.unwrap())]);
    }
    t.finish("fig11_partition_group_size");
    println!("\n(paper: throughput at p=8 is 1.6× that at p=64)");
}
