//! Figure 8: per-GPU TFLOPS for the Figure 6 runs, computed with the
//! Megatron FLOPs formula (§5.1.1). The paper reports ≈42% of V100 peak for
//! BERT 10B under MiCS, with ZeRO-3 far behind.

use mics_bench::{accum_steps, cell, run, v100, Table};
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::{flops::per_gpu_tflops, TransformerConfig};

fn main() {
    let cases = [
        (TransformerConfig::bert_10b(), 8usize),
        (TransformerConfig::bert_15b(), 16),
        (TransformerConfig::bert_20b(), 16),
        (TransformerConfig::bert_50b(), 64),
    ];
    const V100_PEAK_TFLOPS: f64 = 125.0;
    for (model, p) in cases {
        let w = model.workload(8);
        let mut t = Table::new(
            format!("Figure 8 — TFLOPS per GPU, {} (V100 peak = 125)", model.name),
            &["GPUs", "MiCS", "MiCS %peak", "ZeRO-3", "ZeRO-3 %peak"],
        );
        for nodes in [2usize, 4, 8, 16] {
            if nodes * 8 < p {
                continue;
            }
            let n = nodes * 8;
            let s = accum_steps(n, 8, 8192);
            let cluster = v100(nodes);
            let mics = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(p)), s)
                .map(|r| per_gpu_tflops(&model, r.samples_per_sec, n, true));
            let z3 = run(&w, &cluster, Strategy::Zero(ZeroStage::Three), s)
                .map(|r| per_gpu_tflops(&model, r.samples_per_sec, n, true));
            let pct = |x: &Result<f64, String>| match x {
                Ok(v) => format!("{:.0}%", v / V100_PEAK_TFLOPS * 100.0),
                Err(_) => "×".into(),
            };
            t.row(vec![
                n.to_string(),
                cell(&mics.clone().map(|v| format!("{v:.1}"))),
                pct(&mics),
                cell(&z3.clone().map(|v| format!("{v:.1}"))),
                pct(&z3),
            ]);
        }
        t.finish(&format!("fig08_{}", model.name.to_lowercase().replace(' ', "_")));
    }
}
