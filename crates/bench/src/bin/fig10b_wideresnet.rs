//! Figure 10b: WideResNet 3B — generality beyond transformers (§5.1.4).
//!
//! fp32, activation checkpointing disabled, batch 8 per GPU, synthetic
//! 3×224×224 images. Megatron-LM-3D has no support for this model ("×" in
//! the paper); ZeRO-2 cannot fit it; MiCS (p=8) reaches up to 2.89× the
//! throughput of DeepSpeed ZeRO-3.

use mics_bench::{cell, f1, run, v100, Table};
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::WideResNetConfig;

fn main() {
    let model = WideResNetConfig::wrn_3b();
    let w = model.workload(8);
    println!(
        "{}: {:.2}B params, {} conv layers, blocks {:?}, width {}",
        model.name,
        model.total_params() as f64 / 1e9,
        model.conv_layers(),
        model.blocks,
        model.width
    );
    let mut t = Table::new(
        "Figure 10b — WideResNet 3B, images/sec (fp32, no activation ckpt)",
        &["GPUs", "MiCS (p=8)", "ZeRO-3", "ZeRO-2", "Megatron-LM-3D", "MiCS/ZeRO-3"],
    );
    for nodes in [2usize, 4, 8, 16] {
        let n = nodes * 8;
        let cluster = v100(nodes);
        // Per-GPU batch fixed at 8; one step per batch (s = 1).
        let mics = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(8)), 1)
            .map(|r| r.samples_per_sec);
        let z3 = run(&w, &cluster, Strategy::Zero(ZeroStage::Three), 1).map(|r| r.samples_per_sec);
        let z2 = run(&w, &cluster, Strategy::Zero(ZeroStage::Two), 1).map(|r| r.samples_per_sec);
        let ratio = match (&mics, &z3) {
            (Ok(a), Ok(b)) => format!("{:.2}×", a / b),
            _ => "-".into(),
        };
        t.row(vec![
            n.to_string(),
            cell(&mics.map(f1)),
            cell(&z3.map(f1)),
            cell(&z2.map(f1)),
            "× (no support)".into(),
            ratio,
        ]);
    }
    t.finish("fig10b_wideresnet");
}
