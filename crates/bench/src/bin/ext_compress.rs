//! Extension: quantized collectives (ZeRO++-style) on the MiCS executor.
//!
//! Two sweeps, both at the paper's 100 Gbps V100 operating point:
//!
//! 1. **Bit-width** — BERT 15B on 64 GPUs with p = 16 (partition groups
//!    span 2 nodes, so the weight gathers cross the NIC): f16 passthrough,
//!    int8/128 and int4/32 block quantization, on weights, gradients, or
//!    both, against the exact-wire baseline.
//! 2. **Cluster size** — BERT 10B with the same 2-node groups as the
//!    cluster grows from 16 to 128 GPUs: int8-everything vs exact.
//!
//! A miniature *real* training run (mics-minidl) closes the loop: the same
//! int8 block format on real wires moves losses only within a small
//! relative tolerance of the exact run.

use mics_bench::{accum_steps, f1, run, v100, write_json, Json, Table, ToJson};
use mics_core::{CompressionConfig, MicsConfig, QuantScheme, RunReport, Strategy};
use mics_minidl::{train, Mlp, SyncSchedule, TrainSetup};
use mics_model::TransformerConfig;

fn mics(p: usize, compression: Option<CompressionConfig>) -> Strategy {
    let mut cfg = MicsConfig::paper_defaults(p);
    cfg.compression = compression;
    Strategy::Mics(cfg)
}

fn main() {
    // ── Sweep 1: bit-width × placement, BERT 15B on 64 GPUs ─────────────
    let model = TransformerConfig::bert_15b();
    let w = model.workload(8);
    let nodes = 8;
    let n = nodes * 8;
    let s = accum_steps(n, 8, 8192);
    let cluster = v100(nodes);

    let base = run(&w, &cluster, mics(16, None), s).expect("fits");

    let variants: [(&str, CompressionConfig); 5] = [
        ("f16 passthrough, both", CompressionConfig::both(QuantScheme::F16)),
        ("int8/128, weights only", CompressionConfig::weights_only(QuantScheme::int8())),
        ("int8/128, grads only", CompressionConfig::grads_only(QuantScheme::int8())),
        ("int8/128, both", CompressionConfig::both(QuantScheme::int8())),
        ("int4/32, both", CompressionConfig::both(QuantScheme::int4())),
    ];

    let mut t1 = Table::new(
        format!("Extension — quantized collectives, {} on {} GPUs (p=16)", model.name, n),
        &["wire format", "samples/sec", "speedup", "GB/node/step", "wire vs exact", "vs fp32"],
    );
    let row = |t: &mut Table, name: &str, r: &RunReport| {
        let ratio = base.nic_bytes_per_node as f64 / r.nic_bytes_per_node as f64;
        // The exact wire already carries fp16 casts (BERT trains in mixed
        // precision), so the fp32 comparison is 2× the measured ratio.
        t.row(vec![
            name.into(),
            f1(r.samples_per_sec),
            format!("{:.2}×", r.samples_per_sec / base.samples_per_sec),
            format!("{:.1}", r.nic_bytes_per_node as f64 / 1e9),
            format!("{ratio:.2}×"),
            format!("{:.2}×", ratio * 2.0),
        ]);
    };
    row(&mut t1, "exact (fp16 casts)", &base);
    let mut int8_both: Option<RunReport> = None;
    for (name, cfg) in variants {
        let r = run(&w, &cluster, mics(16, Some(cfg)), s).expect("fits");
        row(&mut t1, name, &r);
        if name == "int8/128, both" {
            int8_both = Some(r);
        }
    }
    t1.print();

    // The headline claims, enforced: int8 wires cut inter-node volume ~4×
    // vs fp32 and that buys real end-to-end step time at 100 Gbps.
    let int8 = int8_both.expect("int8 row ran");
    let vs_fp32 = 2.0 * base.nic_bytes_per_node as f64 / int8.nic_bytes_per_node as f64;
    assert!(
        (3.2..4.2).contains(&vs_fp32),
        "int8 should cut wire volume ~4× vs fp32, got {vs_fp32:.2}×"
    );
    assert!(
        int8.samples_per_sec > base.samples_per_sec,
        "int8 wires must beat exact at 100 Gbps: {} vs {}",
        int8.samples_per_sec,
        base.samples_per_sec
    );
    println!(
        "\nint8/128 wire volume: {vs_fp32:.2}× smaller than fp32, \
         {:.2}× end-to-end speedup",
        int8.samples_per_sec / base.samples_per_sec
    );

    // ── Sweep 2: cluster size, BERT 10B, int8 vs exact ──────────────────
    let model10 = TransformerConfig::bert_10b();
    let w10 = model10.workload(8);
    let mut t2 = Table::new(
        format!("Extension — int8 collectives as {} scales (p=16)", model10.name),
        &["GPUs", "exact samples/sec", "int8 samples/sec", "speedup"],
    );
    for nodes in [2usize, 4, 8, 16] {
        let n = nodes * 8;
        let s = accum_steps(n, 8, 8192);
        let c = v100(nodes);
        let exact = run(&w10, &c, mics(16, None), s).expect("fits");
        let q = run(&w10, &c, mics(16, Some(CompressionConfig::both(QuantScheme::int8()))), s)
            .expect("fits");
        t2.row(vec![
            n.to_string(),
            f1(exact.samples_per_sec),
            f1(q.samples_per_sec),
            format!("{:.2}×", q.samples_per_sec / exact.samples_per_sec),
        ]);
    }
    t2.print();

    // ── Fidelity: the same int8 block format on *real* wires ────────────
    let setup = TrainSetup {
        model: Mlp::new(&[12, 24, 24, 3]),
        world: 8,
        partition_size: 2,
        micro_batch: 8,
        accum_steps: 2,
        iterations: 20,
        lr: 0.01,
        seed: 20220615,
        quantize: false,
        loss_scale: mics_minidl::LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 0,
    };
    let exact = train(&setup, SyncSchedule::TwoHop);
    let mut qsetup = setup.clone();
    qsetup.comm_quant = Some(CompressionConfig::both(QuantScheme::int8()));
    let quantized = train(&qsetup, SyncSchedule::TwoHop);
    let max_dev = exact
        .losses
        .iter()
        .zip(quantized.losses.iter())
        .map(|(a, b)| (a - b).abs() / a.abs().max(1e-9))
        .fold(0.0f32, f32::max);
    println!(
        "\nfidelity: int8 comm vs exact over {} iterations — max relative loss \
         deviation {max_dev:.2e}, final losses {:.6} vs {:.6}",
        setup.iterations,
        quantized.losses.last().unwrap(),
        exact.losses.last().unwrap()
    );
    assert!(max_dev < 0.05, "int8 training must track the exact run: {max_dev:.2e}");

    write_json(
        "ext_compress",
        &Json::obj([
            ("bit_width_sweep", t1.to_json()),
            ("cluster_sweep", t2.to_json()),
            (
                "fidelity",
                Json::obj([
                    ("iterations", Json::from(setup.iterations)),
                    ("max_relative_loss_deviation", Json::from(max_dev)),
                    ("exact_losses", Json::from(exact.losses.clone())),
                    ("int8_losses", Json::from(quantized.losses.clone())),
                ]),
            ),
        ]),
    );
}
