//! Figure 13: benefit of 2-hop gradient synchronization (§5.2.3).
//!
//! BERT 10B, partition group = 8 GPUs, micro-batch 8, global batch 8192,
//! cluster sizes 16–128 GPUs. Disabling 2-hop falls back to the
//! "alternative schedule": a full-cluster all-reduce at the end of every
//! micro-step (each one a global synchronization barrier, §2.3). The paper
//! measures 11–24.9% improvement, growing with cluster size.

use mics_bench::{accum_steps, f1, run, v100, Table};
use mics_core::{MicsConfig, Strategy};
use mics_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::bert_10b();
    let w = model.workload(8);
    let mut t = Table::new(
        "Figure 13 — 2-hop gradient synchronization on/off (BERT 10B, p=8)",
        &["GPUs", "2-hop on", "2-hop off", "gain"],
    );
    for nodes in [2usize, 4, 8, 16] {
        let n = nodes * 8;
        let s = accum_steps(n, 8, 8192);
        let cluster = v100(nodes);
        let on = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(8)), s)
            .expect("fits")
            .samples_per_sec;
        let mut cfg = MicsConfig::paper_defaults(8);
        cfg.two_hop_sync = false;
        let off = run(&w, &cluster, Strategy::Mics(cfg), s).expect("fits").samples_per_sec;
        t.row(vec![n.to_string(), f1(on), f1(off), format!("{:+.1}%", (on / off - 1.0) * 100.0)]);
    }
    t.finish("fig13_two_hop");
    println!("\n(paper: 11% to 24.9% improvement, growing with cluster size)");
}
