//! Extension experiment (beyond the paper): a FLOP-budgeted **isoFLOP
//! sweep** over model sizes, spending the Kernels-v2 compute speedup on a
//! scaling-law-shaped question the paper's fixed-size fidelity run (§5.4)
//! never asks: *at a fixed compute budget, which model size trains best?*
//!
//! The corpus is an order-2 stochastic token table: `tokᵢ = T[tokᵢ₋₂][tokᵢ₋₁]`
//! with probability 1−ε and a uniform random token otherwise, where `T` is a
//! seeded `V×V` lookup. Unlike the order-1 affine chain of `mics_minidl::lm`
//! (learnable by any model), predicting this stream requires representing all
//! `V²` contexts — so small models hit a capacity floor while, at a fixed
//! FLOP budget, large models run out of optimizer steps. Each budget's
//! eval-loss-vs-size curve is therefore U-shaped, and the budget-optimal
//! size `N_opt` grows with the budget — the classic isoFLOP picture.
//!
//! Every (budget, size) cell trains under all three synchronization
//! schedules — DDP, ZeRO-3 (`PerMicroStepAllReduce`), and MiCS (`TwoHop`) —
//! on real thread-ranks, extending the §5.4 fidelity claim to the whole
//! sweep: the curves are fit on MiCS losses, and DDP/ZeRO-3 must agree.
//! Budgets are honored through the kernel FLOP counters (`flops_total`), so
//! the iteration count per cell is *measured*, not estimated.
//!
//! Enforced claims: ≥ 3 budgets; each budget's eval-loss curve is U-shaped
//! (strictly interior argmin and positive parabola curvature in log-size);
//! `N_opt` and `D_opt` grow as power laws of the budget with exponents in
//! (0, 1) summing to ≈ 1; schedule disagreement stays within tolerance; and
//! the sweep's measured kernel throughput is positive. The artifact lands in
//! `results/ext_sweep.json` (schema-checked by `tests/results_schema.rs`).
//!
//! `--smoke` runs a miniature budget end-to-end (same code path, no curve
//! assertions) and does **not** overwrite the committed artifact.

use mics_bench::{write_json, Json, Table, ToJson};
use mics_dataplane::TransportKind;
use mics_minidl::{
    flops_total, train_generic_on, LossScale, ScheduleHyper, SyncSchedule, TinyTransformer,
    TrainOutcome,
};
use std::time::Instant;

/// Vocabulary of the token table.
const VOCAB: usize = 16;
/// Context length fed to the model.
const SEQ_LEN: usize = 8;
/// Per-position probability (‰) of emitting a uniform random token instead
/// of the table entry — the irreducible-entropy floor of the stream.
const NOISE_PERMILLE: u64 = 100;
/// Data-parallel ranks (MiCS partition group spans the world, so the ZeRO-3
/// and 2-hop schedules are exercised at full partition).
const WORLD: usize = 2;
/// Sequences per rank per micro-step.
const MICRO_BATCH: usize = 8;
/// Micro-steps per optimizer step.
const ACCUM: usize = 1;
/// Adam learning rate (shared across sizes; the grid is narrow enough that
/// one rate is stable everywhere).
const LR: f32 = 0.02;
/// Master seed for the table, initialization, and data stream.
const SEED: u64 = 20260807;

/// The isoFLOP budgets, in kernel FLOPs per (budget, size) cell. Geometric
/// ×3 spacing so the fitted `ln N_opt` vs `ln C` line has real leverage.
const BUDGETS: &[f64] = &[2.0e8, 6.0e8, 1.8e9];
/// Model widths of the size grid (heads = 2, ffn = 2·d, 1 layer).
const WIDTHS: &[usize] = &[4, 8, 16, 32, 48];

fn mix(key: &mut u64, coord: u64) {
    *key = key
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(coord.wrapping_mul(0xd1b5_4a32_d192_ed03));
    *key ^= *key >> 29;
    *key = key.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    *key ^= *key >> 32;
}

fn hash(seed: u64, coords: &[u64]) -> u64 {
    let mut key = seed;
    for &c in coords {
        mix(&mut key, c);
    }
    key
}

/// The seeded order-2 transition table `T[prev2][prev1] → next`.
fn token_table(seed: u64) -> Vec<usize> {
    (0..VOCAB * VOCAB)
        .map(|i| (hash(seed, &[0x7ab1_e5a1, i as u64]) % VOCAB as u64) as usize)
        .collect()
}

/// Deterministic micro-batch of `nseq` sequences (`nseq × (SEQ_LEN + 1)`
/// row-major) for coordinates (`iteration`, `micro`, `rank`).
fn token_batch(
    table: &[usize],
    seed: u64,
    iteration: usize,
    micro: usize,
    rank: usize,
    nseq: usize,
) -> Vec<usize> {
    let v = VOCAB as u64;
    let mut out = Vec::with_capacity(nseq * (SEQ_LEN + 1));
    for sample in 0..nseq {
        let base = hash(seed, &[iteration as u64, micro as u64, rank as u64, sample as u64]);
        let mut p2 = (base % v) as usize;
        let mut p1 = ((base >> 32) % v) as usize;
        out.push(p2);
        out.push(p1);
        for pos in 0..SEQ_LEN - 1 {
            let h = hash(base, &[pos as u64]);
            let next = if h % 1000 < NOISE_PERMILLE {
                ((h >> 32) % v) as usize
            } else {
                table[p2 * VOCAB + p1]
            };
            out.push(next);
            p2 = p1;
            p1 = next;
        }
    }
    out
}

fn model_of_width(d: usize) -> TinyTransformer {
    TinyTransformer::new(VOCAB, SEQ_LEN, d, 2, 2 * d, 1)
}

/// Measured kernel FLOPs of one `loss_and_grad` call at this size — the
/// unit the budgets are denominated in (optimizer/collective arithmetic is
/// excluded by construction; it runs outside the kernel layer).
fn flops_per_call(model: &TinyTransformer, table: &[usize]) -> u64 {
    let params = model.init_params(SEED);
    let toks = token_batch(table, SEED ^ 0xca11, 0, 0, 0, MICRO_BATCH);
    let before = flops_total();
    let _ = model.loss_and_grad(&params, &toks);
    flops_total() - before
}

/// One training run of `model` for `iterations` steps under `schedule`.
fn run(
    model: &TinyTransformer,
    table: &[usize],
    iterations: usize,
    schedule: SyncSchedule,
) -> TrainOutcome {
    let hp = ScheduleHyper {
        world: WORLD,
        partition_size: WORLD,
        accum_steps: ACCUM,
        iterations,
        lr: LR,
        quantize: false,
        loss_scale: LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 0,
    };
    let m = model.clone();
    let t = table.to_vec();
    let init = model.init_params(SEED);
    let data_seed = SEED ^ 0xda7a_57e4;
    train_generic_on(TransportKind::Local, &hp, schedule, init, move |params, iter, micro, rank| {
        let toks = token_batch(&t, data_seed, iter, micro, rank, MICRO_BATCH);
        m.loss_and_grad(params, &toks)
    })
}

/// Least-squares line `y ≈ slope·x + intercept`.
fn line_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let (sx, sy) = (xs.iter().sum::<f64>(), ys.iter().sum::<f64>());
    let sxx = xs.iter().map(|x| x * x).sum::<f64>();
    let sxy = xs.iter().zip(ys).map(|(x, y)| x * y).sum::<f64>();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    (slope, (sy - slope * sx) / n)
}

/// Least-squares parabola `y ≈ a·x² + b·x + c` via the 3×3 normal
/// equations (Gaussian elimination with partial pivoting).
fn parabola_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let s = |k: u32| xs.iter().map(|x| x.powi(k as i32)).sum::<f64>();
    let t = |k: u32| xs.iter().zip(ys).map(|(x, y)| y * x.powi(k as i32)).sum::<f64>();
    let mut m =
        [[s(4), s(3), s(2), t(2)], [s(3), s(2), s(1), t(1)], [s(2), s(1), xs.len() as f64, t(0)]];
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs())).unwrap();
        m.swap(col, pivot);
        for row in col + 1..3 {
            let f = m[row][col] / m[col][col];
            let pivot_row = m[col];
            for (cell, p) in m[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= f * p;
            }
        }
    }
    let c2 = m[2][3] / m[2][2];
    let c1 = (m[1][3] - m[1][2] * c2) / m[1][1];
    let c0 = (m[0][3] - m[0][2] * c2 - m[0][1] * c1) / m[0][0];
    (c0, c1, c2)
}

/// One fitted isoFLOP curve: the per-size losses plus the parabola minimum.
struct BudgetFit {
    budget: f64,
    n_opt: f64,
    d_opt: f64,
    curvature: f64,
    argmin_index: usize,
}

fn main() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::env::set_current_dir(root).expect("workspace root must exist");
    let smoke = std::env::args().any(|a| a == "--smoke");

    mics_minidl::kernels::init();
    let table = token_table(SEED);

    let (budgets, widths): (Vec<f64>, Vec<usize>) =
        if smoke { (vec![2.0e7], vec![4, 8]) } else { (BUDGETS.to_vec(), WIDTHS.to_vec()) };

    // A fixed held-out batch, disjoint from every training coordinate by
    // seed, shared by all sizes and budgets.
    let eval_toks = token_batch(&table, SEED ^ 0xe7a1, 0, 0, 0, 64);

    let schedules = [
        ("ddp", SyncSchedule::Ddp),
        ("zero3", SyncSchedule::PerMicroStepAllReduce),
        ("mics", SyncSchedule::TwoHop),
    ];

    let mut t = Table::new(
        "Extension — isoFLOP sweep: eval cross-entropy vs model size at fixed \
         kernel-FLOP budgets (order-2 token table, 3 schedules on thread-ranks)",
        &[
            "budget_flops",
            "d_model",
            "params",
            "iterations",
            "tokens",
            "final_train_loss",
            "eval_loss_ddp",
            "eval_loss_zero3",
            "eval_loss_mics",
        ],
    );

    let flops_before = flops_total();
    let wall = Instant::now();
    let mut fits: Vec<BudgetFit> = Vec::new();
    let mut max_disagreement = 0.0f64;

    for &budget in &budgets {
        let mut ln_n: Vec<f64> = Vec::new();
        let mut ln_tokens: Vec<f64> = Vec::new();
        let mut eval_mics: Vec<f64> = Vec::new();
        for &d in &widths {
            let model = model_of_width(d);
            let n_params = model.num_params();
            let per_iter = flops_per_call(&model, &table) * (WORLD * ACCUM) as u64;
            let iterations = ((budget / per_iter as f64).round() as usize).max(2);
            let tokens = iterations * WORLD * ACCUM * MICRO_BATCH * SEQ_LEN;

            let mut evals = [0.0f32; 3];
            let mut final_train = 0.0f32;
            for (i, (_, schedule)) in schedules.iter().enumerate() {
                let out = run(&model, &table, iterations, *schedule);
                assert_eq!(out.skipped_steps, 0);
                evals[i] = model.loss_and_grad(&out.final_params, &eval_toks).0;
                final_train = *out.losses.last().unwrap();
            }
            // §5.4 fidelity, extended to the sweep: the three schedules are
            // the same optimization up to float-summation order.
            for i in 1..3 {
                let rel = ((evals[i] - evals[0]).abs() / evals[0].abs().max(1e-9)) as f64;
                max_disagreement = max_disagreement.max(rel);
                assert!(
                    rel < 5e-2,
                    "budget {budget:.1e} d={d}: {} eval {} vs ddp {} (rel {rel:.3})",
                    schedules[i].0,
                    evals[i],
                    evals[0]
                );
            }

            ln_n.push((n_params as f64).ln());
            ln_tokens.push((tokens as f64).ln());
            eval_mics.push(evals[2] as f64);
            t.row(vec![
                format!("{budget:.1e}"),
                d.to_string(),
                n_params.to_string(),
                iterations.to_string(),
                tokens.to_string(),
                format!("{final_train:.4}"),
                format!("{:.4}", evals[0]),
                format!("{:.4}", evals[1]),
                format!("{:.4}", evals[2]),
            ]);
        }

        if smoke {
            continue;
        }
        // U-shape: strictly interior argmin, positive curvature in log-size,
        // and an interior continuous minimum from the parabola fit.
        let argmin =
            (0..eval_mics.len()).min_by(|&i, &j| eval_mics[i].total_cmp(&eval_mics[j])).unwrap();
        assert!(
            argmin > 0 && argmin + 1 < eval_mics.len(),
            "budget {budget:.1e}: eval-loss argmin at grid edge (index {argmin} of {:?})",
            eval_mics
        );
        let (a, b, _) = parabola_fit(&ln_n, &eval_mics);
        assert!(a > 0.0, "budget {budget:.1e}: loss curve not convex in ln N (a = {a})");
        let x_opt = -b / (2.0 * a);
        assert!(
            x_opt > ln_n[0] && x_opt < *ln_n.last().unwrap(),
            "budget {budget:.1e}: fitted minimum ln N = {x_opt} outside the grid"
        );
        // Tokens at fixed C fall as a clean power of N; evaluate that line
        // at the fitted optimum for D_opt.
        let (slope, icept) = line_fit(&ln_n, &ln_tokens);
        fits.push(BudgetFit {
            budget,
            n_opt: x_opt.exp(),
            d_opt: (slope * x_opt + icept).exp(),
            curvature: a,
            argmin_index: argmin,
        });
    }

    let spent = flops_total() - flops_before;
    let gflops = spent as f64 / wall.elapsed().as_secs_f64() / 1e9;
    t.print();
    println!(
        "\nsweep spent {spent} kernel FLOPs in {:.1}s — {gflops:.2} GFLOP/s sustained",
        wall.elapsed().as_secs_f64()
    );
    println!("max schedule disagreement (relative eval loss): {max_disagreement:.2e}");

    if smoke {
        println!("smoke mode: skipping fits and the committed artifact");
        return;
    }

    // The scaling fits: N_opt ∝ C^α, D_opt ∝ C^β, with α + β ≈ 1 because
    // kernel FLOPs per token are ≈ linear in N.
    let ln_c: Vec<f64> = fits.iter().map(|f| f.budget.ln()).collect();
    let (alpha, _) = line_fit(&ln_c, &fits.iter().map(|f| f.n_opt.ln()).collect::<Vec<_>>());
    let (beta, _) = line_fit(&ln_c, &fits.iter().map(|f| f.d_opt.ln()).collect::<Vec<_>>());
    println!(
        "fitted exponents: N_opt ∝ C^{alpha:.3}, D_opt ∝ C^{beta:.3} (α+β = {:.3})",
        alpha + beta
    );
    assert!(fits.len() >= 3, "need ≥ 3 budgets for the power-law fit");
    assert!((0.0..1.0).contains(&alpha), "α = {alpha} outside (0, 1)");
    assert!((0.0..1.0).contains(&beta), "β = {beta} outside (0, 1)");
    assert!((alpha + beta - 1.0).abs() < 0.25, "α + β = {} far from 1", alpha + beta);
    for w in fits.windows(2) {
        assert!(
            w[1].n_opt > w[0].n_opt,
            "N_opt must grow with the budget ({} then {})",
            w[0].n_opt,
            w[1].n_opt
        );
    }

    let fits_json = Json::arr(fits.iter().map(|f| {
        Json::obj([
            ("budget_flops", Json::from(f.budget)),
            ("n_opt", Json::from(f.n_opt)),
            ("d_opt", Json::from(f.d_opt)),
            ("curvature", Json::from(f.curvature)),
            ("argmin_index", Json::from(f.argmin_index)),
            ("interior", Json::Bool(true)),
        ])
    }));
    write_json(
        "ext_sweep",
        &Json::obj([
            ("sweep", t.to_json()),
            ("budgets", Json::arr(budgets.iter().map(|&b| Json::from(b)))),
            ("fits", fits_json),
            (
                "exponents",
                Json::obj([
                    ("alpha", Json::from(alpha)),
                    ("beta", Json::from(beta)),
                    ("alpha_plus_beta", Json::from(alpha + beta)),
                ]),
            ),
            ("schedule_agreement_max_rel", Json::from(max_disagreement)),
            ("measured_gflops", Json::from(gflops)),
            ("vocab", Json::from(VOCAB)),
            ("seq_len", Json::from(SEQ_LEN)),
            ("noise_permille", Json::from(NOISE_PERMILLE)),
            ("world", Json::from(WORLD)),
            ("seed", Json::from(SEED)),
        ]),
    );
    println!("\nat a fixed FLOP budget the best model is neither the biggest nor the");
    println!("longest-trained: capacity and optimization steps trade off through the");
    println!("budget, and the optimum tracks a power law — measured end-to-end on the");
    println!("same kernels, schedules, and FLOP counters the fidelity runs use.");
}
