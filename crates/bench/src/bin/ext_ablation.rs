//! Extension: one-knob-at-a-time ablation of every MiCS design choice.
//!
//! Figures 12–14 ablate components in the paper's groupings; this bench
//! isolates each [`MicsConfig`] switch independently on the same workload
//! (BERT 15B, 64 GPUs — partition groups span 2 nodes so every knob is
//! live), reporting the throughput lost when it alone is turned off.

use mics_bench::{accum_steps, f1, run, v100, Table};
use mics_core::{MicsConfig, Strategy};
use mics_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::bert_15b();
    let w = model.workload(8);
    let nodes = 8;
    let n = nodes * 8;
    let s = accum_steps(n, 8, 8192);
    let cluster = v100(nodes);

    let full = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(16)), s)
        .expect("fits")
        .samples_per_sec;

    type Knob = (&'static str, fn(&mut MicsConfig));
    let knobs: [Knob; 5] = [
        ("hierarchical_allgather (§3.3)", |c| c.hierarchical_allgather = false),
        ("two_hop_sync (§3.4)", |c| c.two_hop_sync = false),
        ("fine_grained_sync (§4)", |c| c.fine_grained_sync = false),
        ("cached_decisions (§4)", |c| c.cached_decisions = false),
        ("coalesced_comm (§4)", |c| c.coalesced_comm = false),
    ];

    let mut t = Table::new(
        format!("Extension — single-knob ablation, {} on {} GPUs", model.name, n),
        &["knob turned off", "samples/sec", "Δ vs full MiCS"],
    );
    t.row(vec!["(none — full MiCS)".into(), f1(full), "—".into()]);
    for (name, apply) in knobs {
        let mut cfg = MicsConfig::paper_defaults(16);
        apply(&mut cfg);
        let thr = run(&w, &cluster, Strategy::Mics(cfg), s).expect("fits").samples_per_sec;
        t.row(vec![name.into(), f1(thr), format!("{:+.1}%", (thr / full - 1.0) * 100.0)]);
    }
    t.finish("ext_ablation");
    println!("\n(arena_memory affects feasibility, not steady-state speed — see the");
    println!(" memory model and `mics_tensor`'s allocator tests for its ablation)");
}
