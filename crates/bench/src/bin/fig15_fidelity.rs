//! Figure 15: fidelity of the implementation (§5.4).
//!
//! The paper trains a 1.5B model under MiCS and DeepSpeed and shows the
//! loss curves coincide. Here the *real* training stack runs: 8 thread-rank
//! workers with fp32 master weights, Adam, gradient accumulation and real
//! collectives over the shared-memory data plane, under all three
//! synchronization schedules. The model is scaled down (the schedules'
//! algebra — what the experiment validates — is size-independent).

use mics_bench::{write_json, Json, Table};
use mics_minidl::{train, train_lm, LmSetup, Mlp, SyncSchedule, TinyTransformer, TrainSetup};

fn main() {
    let setup = TrainSetup {
        model: Mlp::new(&[16, 32, 32, 4]),
        world: 8,
        partition_size: 2,
        micro_batch: 8,
        accum_steps: 4, // the paper's fidelity run: global 512 = 8 ranks × mb 8 × s 4 × …
        iterations: 40,
        lr: 0.01,
        seed: 20220615,
        quantize: true, // mixed-precision emulation, as in the paper
        loss_scale: mics_minidl::LossScale::Dynamic { init: 65536.0, growth_interval: 2000 },
        clip_grad_norm: Some(1.0),
        comm_quant: None,
        prefetch_depth: 0,
    };
    println!(
        "training {} params on {} thread-ranks (p={}, s={}, mixed precision)",
        setup.model.num_params(),
        setup.world,
        setup.partition_size,
        setup.accum_steps
    );

    let ddp = train(&setup, SyncSchedule::Ddp);
    let zero3 = train(&setup, SyncSchedule::PerMicroStepAllReduce);
    let mics = train(&setup, SyncSchedule::TwoHop);

    let mut t = Table::new(
        "Figure 15 — training loss: DeepSpeed-style vs MiCS 2-hop vs DDP",
        &["iteration", "DDP", "ZeRO-3 schedule", "MiCS 2-hop", "|MiCS − DDP|"],
    );
    for i in (0..ddp.losses.len()).step_by(4).chain([ddp.losses.len() - 1]) {
        t.row(vec![
            i.to_string(),
            format!("{:.6}", ddp.losses[i]),
            format!("{:.6}", zero3.losses[i]),
            format!("{:.6}", mics.losses[i]),
            format!("{:.2e}", (mics.losses[i] - ddp.losses[i]).abs()),
        ]);
    }
    t.finish("fig15_fidelity");

    let max_dev = ddp
        .losses
        .iter()
        .zip(mics.losses.iter())
        .map(|(a, b)| (a - b).abs() / a.abs().max(1e-9))
        .fold(0.0f32, f32::max);
    println!("\nmax relative loss deviation MiCS vs DDP: {max_dev:.2e}");
    println!(
        "loss decreased {:.1}× over {} iterations under MiCS 2-hop",
        mics.losses[0] / mics.losses.last().unwrap(),
        mics.losses.len()
    );
    assert!(max_dev < 1e-2, "convergence behaviours must coincide");
    write_json(
        "fig15_losses",
        &Json::obj([
            ("ddp", Json::from(ddp.losses.clone())),
            ("zero3_schedule", Json::from(zero3.losses.clone())),
            ("mics_two_hop", Json::from(mics.losses.clone())),
        ]),
    );

    // The paper's fidelity model is a *transformer* LM; repeat the check
    // with the miniature causal transformer (hand-written backprop) on the
    // synthetic token chain.
    let lm = LmSetup {
        model: TinyTransformer::new(9, 6, 8, 2, 16, 2),
        world: 8,
        partition_size: 2,
        micro_batch: 8,
        accum_steps: 4,
        iterations: 30,
        lr: 0.015,
        seed: 20220615,
        quantize: true,
        loss_scale: mics_minidl::LossScale::Dynamic { init: 65536.0, growth_interval: 2000 },
        clip_grad_norm: Some(1.0),
        comm_quant: None,
        prefetch_depth: 0,
    };
    println!(
        "
transformer LM: {} params, vocab {}, seq {}, {} layers",
        lm.model.num_params(),
        lm.model.vocab,
        lm.model.seq_len,
        lm.model.layers
    );
    let t_ddp = train_lm(&lm, SyncSchedule::Ddp);
    let t_mics = train_lm(&lm, SyncSchedule::TwoHop);
    let mut t = Table::new(
        "Figure 15 (transformer LM) — cross-entropy under DDP vs MiCS 2-hop",
        &["iteration", "DDP", "MiCS 2-hop", "|Δ|"],
    );
    for i in (0..t_ddp.losses.len()).step_by(5).chain([t_ddp.losses.len() - 1]) {
        t.row(vec![
            i.to_string(),
            format!("{:.6}", t_ddp.losses[i]),
            format!("{:.6}", t_mics.losses[i]),
            format!("{:.2e}", (t_mics.losses[i] - t_ddp.losses[i]).abs()),
        ]);
    }
    t.finish("fig15_transformer_lm");
    println!(
        "transformer cross-entropy {:.3} → {:.3}; schedules coincide",
        t_mics.losses[0],
        t_mics.losses.last().unwrap()
    );
}
