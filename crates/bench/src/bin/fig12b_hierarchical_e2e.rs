//! Figure 12b: end-to-end benefit of hierarchical communication (§5.2.2).
//!
//! BERT 15B (partition group = 16 GPUs, spanning 2 nodes), cluster sizes
//! 16–128 GPUs, throughput normalized to DeepSpeed ZeRO-3. The paper
//! measures hierarchical communication improving end-to-end throughput by
//! 30.6–38% over MiCS-without-hierarchical.

use mics_bench::{accum_steps, f2, run, v100, Table};
use mics_core::{MicsConfig, Strategy, ZeroStage};
use mics_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::bert_15b();
    let w = model.workload(8);
    let mut t = Table::new(
        "Figure 12b — MiCS ± hierarchical all-gather, BERT 15B (normalized to ZeRO-3)",
        &["GPUs", "ZeRO-3", "MiCS w/o hier", "MiCS w/ hier", "hier gain"],
    );
    for nodes in [2usize, 4, 8, 16] {
        let n = nodes * 8;
        let s = accum_steps(n, 8, 8192);
        let cluster = v100(nodes);
        let z3 = run(&w, &cluster, Strategy::Zero(ZeroStage::Three), s)
            .expect("ZeRO-3 fits")
            .samples_per_sec;
        let mut no_hier_cfg = MicsConfig::paper_defaults(16);
        no_hier_cfg.hierarchical_allgather = false;
        let without =
            run(&w, &cluster, Strategy::Mics(no_hier_cfg), s).expect("fits").samples_per_sec;
        let with = run(&w, &cluster, Strategy::Mics(MicsConfig::paper_defaults(16)), s)
            .expect("fits")
            .samples_per_sec;
        t.row(vec![
            n.to_string(),
            "1.00".into(),
            f2(without / z3),
            f2(with / z3),
            format!("{:+.1}%", (with / without - 1.0) * 100.0),
        ]);
    }
    t.finish("fig12b_hierarchical_e2e");
    println!("\n(paper: hierarchical communication improves throughput by 30.6–38%)");
}
