//! Extension: comm/compute overlap measured on the *real* backend.
//!
//! MiCS §4 overlaps gradient synchronization with computation; the simulator
//! backend has always charged that overlap. This experiment shows the real
//! thread-rank backend now earns it: the fig15-class transformer LM is
//! trained under the MiCS 2-hop schedule twice — once with the historical
//! inline interpreter (`prefetch_depth = 0`) and once with the async
//! executor (`prefetch_depth = 2`, reduce-scatters in flight across the next
//! micro-step's forward plus cross-iteration gather prefetch) — and the
//! per-lane spans the executor records are compared.
//!
//! Enforced claims:
//!
//! * the two modes produce **bit-identical** losses and final parameters
//!   (the async engine reorders time, never arithmetic);
//! * the async run measures a **positive overlap fraction** (communication
//!   genuinely in flight under compute lane spans);
//! * on a multi-core host, the async run's best wall-clock time **beats the
//!   inline run's** in a majority of measurement rounds; on a single-core
//!   host — where the rank threads already saturate the core and thread
//!   parallelism cannot shorten the critical path — wall-clock must not
//!   regress, and the time ranks spend **blocked on the wire collapses**
//!   (the reduce retires after compute already ran instead of stalling it);
//! * the deferral/prefetch counters match the schedule's structure: one
//!   deferred reduce-scatter per non-final micro-step, one prefetched
//!   gather per iteration after the first.

use mics_bench::{f2, write_json, Json, Table, ToJson};
use mics_cluster::{ClusterSpec, InstanceType};
use mics_core::ops::SimCluster;
use mics_core::schedule::execute_on_sim;
use mics_minidl::train::step_program_with_flops;
use mics_minidl::{
    overlappable_wire_ops, train_lm, ExecLane, LmSetup, ScheduleHyper, SyncSchedule,
    TinyTransformer, TrainOutcome,
};

const ROUNDS: usize = 3;
const RUNS_PER_ROUND: usize = 5;

fn lm_setup(prefetch_depth: usize) -> LmSetup {
    // The fig15 fidelity geometry: 8 ranks, partition groups of 2,
    // micro-batch 8 × 4 accumulation steps.
    LmSetup {
        model: TinyTransformer::new(9, 6, 8, 2, 16, 2),
        world: 8,
        partition_size: 2,
        micro_batch: 8,
        accum_steps: 4,
        iterations: 30,
        lr: 0.015,
        seed: 20220615,
        quantize: false,
        loss_scale: mics_minidl::LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth,
    }
}

/// Best-of-N training runs; returns the outcome with the smallest wall time.
fn best_run(setup: &LmSetup) -> TrainOutcome {
    (0..RUNS_PER_ROUND)
        .map(|_| train_lm(setup, SyncSchedule::TwoHop))
        .min_by_key(|o| o.lane_stats.wall_ns)
        .unwrap()
}

fn main() {
    let inline_setup = lm_setup(0);
    let async_setup = lm_setup(2);

    // ── Wall-clock comparison, noise-tolerant: majority of rounds ───────
    let mut wins = 0usize;
    let mut inline: Option<TrainOutcome> = None;
    let mut asynced: Option<TrainOutcome> = None;
    for round in 0..ROUNDS {
        let i = best_run(&inline_setup);
        let a = best_run(&async_setup);
        assert_eq!(i, a, "async executor must be bit-identical to the inline interpreter");
        let win = a.lane_stats.wall_ns < i.lane_stats.wall_ns;
        println!(
            "round {round}: inline {:.1} ms, async {:.1} ms ({})",
            i.lane_stats.wall_ns as f64 / 1e6,
            a.lane_stats.wall_ns as f64 / 1e6,
            if win { "async wins" } else { "inline wins" }
        );
        wins += win as usize;
        // Keep the best-of-all-rounds outcome per mode.
        if inline.as_ref().is_none_or(|b| i.lane_stats.wall_ns < b.lane_stats.wall_ns) {
            inline = Some(i);
        }
        if asynced.as_ref().is_none_or(|b| a.lane_stats.wall_ns < b.lane_stats.wall_ns) {
            asynced = Some(a);
        }
    }
    let inline = inline.unwrap();
    let asynced = asynced.unwrap();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores > 1 {
        assert!(
            wins * 2 > ROUNDS,
            "async executor must beat inline wall-clock in a majority of rounds \
             on a {cores}-core host, won {wins}/{ROUNDS}"
        );
    } else {
        // One core: the rank threads already saturate it, so overlap cannot
        // shorten the critical path — the realized gain is that ranks stop
        // stalling on the wire. Wall-clock may pay a small scheduler tax for
        // the progress threads but must stay within it. The margin covers
        // round-to-round scheduler noise, which is a larger relative slice
        // now that the v2 kernels shrank the compute denominator.
        assert!(
            asynced.lane_stats.wall_ns as f64 <= inline.lane_stats.wall_ns as f64 * 1.25,
            "single-core host: async wall-clock regressed beyond noise ({} vs {} ns)",
            asynced.lane_stats.wall_ns,
            inline.lane_stats.wall_ns
        );
        assert!(
            asynced.lane_stats.comm_busy_ns() < inline.lane_stats.comm_busy_ns(),
            "single-core host: async mode must cut the time ranks spend blocked on \
             collectives ({} vs {} ns)",
            asynced.lane_stats.comm_busy_ns(),
            inline.lane_stats.comm_busy_ns()
        );
    }

    // ── Structural claims ───────────────────────────────────────────────
    let overlap_fraction = asynced.lane_stats.overlap_fraction();
    assert!(overlap_fraction > 0.0, "async run must measure communication in flight under compute");
    assert!(inline.lane_stats.deferred_wire_ops.is_empty());
    assert_eq!(inline.lane_stats.prefetched_gathers, 0);
    assert_eq!(
        asynced.lane_stats.deferred_wire_ops.len(),
        async_setup.accum_steps - 1,
        "one deferred reduce-scatter per non-final micro-step"
    );
    assert_eq!(
        asynced.lane_stats.prefetched_gathers as usize,
        async_setup.iterations - 1,
        "one prefetched gather per iteration after the first"
    );

    let speedup = inline.lane_stats.wall_ns as f64 / asynced.lane_stats.wall_ns as f64;
    // How much less time ranks spend blocked on collectives — the overlap
    // gain that survives even a single-core host.
    let comm_blocked_speedup =
        inline.lane_stats.comm_busy_ns() as f64 / asynced.lane_stats.comm_busy_ns() as f64;
    assert!(comm_blocked_speedup > 1.0, "deferred reduces must shrink collective blocking time");
    let mut t = Table::new(
        "Extension — real-backend overlap, fig15 transformer LM (MiCS 2-hop, 8 ranks, p=2)",
        &[
            "mode",
            "wall ms",
            "compute ms",
            "gather ms",
            "reduce ms",
            "overlap ms",
            "overlap frac",
            "deferred",
            "prefetched",
        ],
    );
    let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
    for (mode, out) in [("inline (depth 0)", &inline), ("async (depth 2)", &asynced)] {
        let s = &out.lane_stats;
        t.row(vec![
            mode.into(),
            ms(s.wall_ns),
            ms(s.busy_ns(ExecLane::Compute)),
            ms(s.busy_ns(ExecLane::Gather)),
            ms(s.busy_ns(ExecLane::Reduce)),
            ms(s.overlap_ns()),
            f2(s.overlap_fraction()),
            s.deferred_wire_ops.len().to_string(),
            s.prefetched_gathers.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nasync executor: {speedup:.3}× wall-clock vs inline, overlap fraction \
         {overlap_fraction:.3}, losses bit-identical over {} iterations",
        async_setup.iterations
    );

    // ── Sim cross-reference: the same schedule, costed ──────────────────
    // The simulator backend charges overlap for exactly the reduce ops the
    // executor defers; report its makespan gain over the serialized bound
    // alongside the measured numbers.
    let hp = ScheduleHyper {
        world: async_setup.world,
        partition_size: async_setup.partition_size,
        accum_steps: async_setup.accum_steps,
        iterations: async_setup.iterations,
        lr: async_setup.lr,
        quantize: false,
        loss_scale: mics_minidl::LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 2,
    };
    let prog = step_program_with_flops(
        &hp,
        SyncSchedule::TwoHop,
        async_setup.model.num_params(),
        4e9,
        8e9,
    );
    let overlappable = overlappable_wire_ops(&prog).len();
    let mut inst = InstanceType::p3dn_24xlarge();
    inst.gpus_per_node = hp.world;
    let mut sc = SimCluster::new(ClusterSpec::new(inst, 1));
    execute_on_sim(&prog, &mut sc, 1e12);
    let (makespan, compute_busy, comm_busy) = sc.run();
    let serial = compute_busy.as_secs_f64() / hp.world as f64 + comm_busy.as_secs_f64();
    let sim_gain = 1.0 - makespan.as_secs_f64() / serial;
    println!(
        "sim backend: {overlappable} overlappable wire ops, charged makespan gain \
         {:.1}% over the serialized bound",
        sim_gain * 100.0
    );
    assert!(overlappable > 0 && sim_gain > 0.0);

    write_json(
        "ext_overlap",
        &Json::obj([
            ("lanes", t.to_json()),
            ("iterations", Json::from(async_setup.iterations)),
            ("overlap_fraction", Json::from(overlap_fraction)),
            ("speedup", Json::from(speedup)),
            ("comm_blocked_speedup", Json::from(comm_blocked_speedup)),
            ("cores", Json::from(cores)),
            ("rounds_won", Json::from(wins)),
            ("rounds", Json::from(ROUNDS)),
            ("losses_bit_identical", Json::from(true)),
            (
                "deferred_wire_ops",
                Json::arr(asynced.lane_stats.deferred_wire_ops.iter().map(|&op| Json::from(op))),
            ),
            (
                "sim",
                Json::obj([
                    ("overlappable_wire_ops", Json::from(overlappable)),
                    ("charged_makespan_gain", Json::from(sim_gain)),
                ]),
            ),
        ]),
    );
}
