//! Microbenchmarks of the discrete-event engine: event throughput is what
//! bounds how large a cluster/model we can simulate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mics_simnet::{Op, Sim, SimTime};

/// A chain of dependent compute ops across two streams (ping-pong events).
fn ping_pong(n: usize) -> SimTime {
    let mut sim = Sim::new();
    let a = sim.add_stream("a");
    let b = sim.add_stream("b");
    for _ in 0..n {
        let ea = sim.add_event();
        let eb = sim.add_event();
        sim.push(a, Op::compute(SimTime::from_micros(1)));
        sim.push(a, Op::RecordEvent(ea));
        sim.push(b, Op::WaitEvent(ea));
        sim.push(b, Op::compute(SimTime::from_micros(1)));
        sim.push(b, Op::RecordEvent(eb));
        sim.push(a, Op::WaitEvent(eb));
    }
    sim.run().unwrap().makespan
}

/// Many concurrent transfers churning one fluid-shared link.
fn fluid_link(transfers: usize) -> SimTime {
    let mut sim = Sim::new();
    let link = sim.add_link("nic", 12.5e9);
    for i in 0..transfers {
        let s = sim.add_stream(format!("s{i}"));
        // Staggered starts force repeated fair-share recomputation.
        sim.push(s, Op::compute(SimTime::from_micros(i as u64 * 3)));
        sim.push(s, Op::transfer(link, 1_000_000 + (i as u64 * 7919) % 500_000, SimTime::ZERO));
    }
    sim.run().unwrap().makespan
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    for n in [100usize, 1000] {
        g.bench_with_input(BenchmarkId::new("ping_pong_events", n), &n, |b, &n| {
            b.iter(|| ping_pong(n))
        });
    }
    for n in [16usize, 128] {
        g.bench_with_input(BenchmarkId::new("fluid_link_transfers", n), &n, |b, &n| {
            b.iter(|| fluid_link(n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
