//! End-to-end executor benchmarks: how long it takes to lower and simulate
//! one full training iteration (this bounds the sweep sizes the figure
//! binaries can afford).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mics_cluster::{ClusterSpec, InstanceType};
use mics_core::{
    simulate, simulate_megatron, MegatronConfig, MicsConfig, Strategy, TrainingJob, ZeroStage,
};
use mics_model::TransformerConfig;

fn job(nodes: usize, strategy: Strategy) -> TrainingJob {
    TrainingJob {
        workload: TransformerConfig::bert_10b().workload(8),
        cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes),
        strategy,
        accum_steps: 4,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.sample_size(10);

    for nodes in [2usize, 8] {
        g.bench_with_input(BenchmarkId::new("simulate_mics", nodes * 8), &nodes, |b, &nodes| {
            b.iter(|| simulate(&job(nodes, Strategy::Mics(MicsConfig::paper_defaults(8)))))
        });
        g.bench_with_input(BenchmarkId::new("simulate_zero3", nodes * 8), &nodes, |b, &nodes| {
            b.iter(|| simulate(&job(nodes, Strategy::Zero(ZeroStage::Three))))
        });
    }

    g.bench_function("simulate_megatron/64gpus", |b| {
        let model = TransformerConfig::megatron_comparison();
        let cluster = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 8);
        let cfg = MegatronConfig::table2_config3(8, 4096);
        b.iter(|| simulate_megatron(&model, &cluster, &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
