//! Wall-clock benchmarks of the real shared-memory data plane: rendezvous
//! collectives over thread-ranks, including the 3-stage hierarchical
//! all-gather and the coalesced APIs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mics_collectives::HierarchicalLayout;
use mics_dataplane::hierarchical::split_hierarchical;
use mics_dataplane::{hierarchical_all_gather, run_ranks};

const WORLD: usize = 8;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane");
    g.sample_size(20);

    for len in [1024usize, 65536] {
        g.bench_with_input(BenchmarkId::new("all_gather", len), &len, |b, &len| {
            b.iter(|| {
                run_ranks(WORLD, |comm| {
                    let v = vec![comm.rank() as f32; len];
                    comm.all_gather(&v).len()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("reduce_scatter", len), &len, |b, &len| {
            b.iter(|| {
                run_ranks(WORLD, |comm| {
                    let v = vec![comm.rank() as f32; len * WORLD];
                    comm.reduce_scatter(&v).len()
                })
            })
        });
    }

    g.bench_function("hierarchical_all_gather/8ranks_4x2", |b| {
        let layout = HierarchicalLayout::new(8, 2).unwrap();
        b.iter(|| {
            run_ranks(8, |mut comm| {
                let rank = comm.rank();
                let (channel, node) = split_hierarchical(&mut comm, &layout);
                let shard = vec![rank as f32; 4096];
                hierarchical_all_gather(&channel, &node, &layout, &shard).len()
            })
        })
    });

    g.bench_function("all_gather_coalesced/8x8buffers", |b| {
        b.iter(|| {
            run_ranks(WORLD, |comm| {
                let bufs: Vec<Vec<f32>> = (0..8).map(|p| vec![p as f32; 512]).collect();
                let refs: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();
                comm.all_gather_coalesced(&refs).len()
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
