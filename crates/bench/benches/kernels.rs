//! Microbenchmarks of the mini-DL matrix kernels: the cache-blocked,
//! register-unrolled implementations in `mics_minidl::kernels` against the
//! naive `kernels::reference` versions they replaced.
//!
//! Besides the criterion registrations, `main` takes its own best-of-N
//! measurements (the vendored criterion shim prints but cannot persist) and
//! writes the blocked-vs-reference table to `results/BENCH_kernels.json`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mics_bench::Table;
use mics_minidl::kernels;
use std::hint::black_box;
use std::time::Instant;

/// Deterministic pseudo-random buffer in roughly [-1, 1].
fn buf(len: usize, salt: u64) -> Vec<f32> {
    let mut s = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// GEMM-family shapes: a transformer-LM-sized problem (seq × model × ffn,
/// larger than the fig15 toy so timings resolve) and a square cache-stressing
/// one whose reduction crosses the KC tile.
const SHAPES: &[(usize, usize, usize)] = &[(32, 64, 128), (96, 384, 96)];

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    for &(m, k, n) in SHAPES {
        let a = buf(m * k, 1);
        let b = buf(k * n, 2);
        let shape = format!("{m}x{k}x{n}");
        g.bench_with_input(BenchmarkId::new("matmul/blocked", &shape), &(), |be, ()| {
            be.iter(|| kernels::matmul(black_box(&a), black_box(&b), m, k, n))
        });
        g.bench_with_input(BenchmarkId::new("matmul/reference", &shape), &(), |be, ()| {
            be.iter(|| kernels::reference::matmul(black_box(&a), black_box(&b), m, k, n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

/// Best-of-`samples` mean ns/iter of `f` over `iters` calls per sample.
fn best_ns(iters: u32, samples: u32, mut f: impl FnMut()) -> u64 {
    f(); // warmup
    let mut best = u64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as u64 / iters as u64);
    }
    best.max(1)
}

fn main() {
    // `cargo bench` runs with cwd = crates/bench; hop to the workspace root
    // so the artifact lands in the repo-wide `results/` directory that
    // `tests/results_schema.rs` validates.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::env::set_current_dir(root).expect("workspace root must exist");

    benches();

    let mut table = Table::new(
        "kernel microbenchmarks: blocked vs scalar reference (best-of-7, ns/iter)",
        &["kernel", "shape", "blocked_ns", "reference_ns", "speedup"],
    );
    let mut fill = |kernel: &str, shape: String, blocked: u64, reference: u64| {
        table.row(vec![
            kernel.to_string(),
            shape,
            blocked.to_string(),
            reference.to_string(),
            format!("{:.2}", reference as f64 / blocked as f64),
        ]);
    };

    for &(m, k, n) in SHAPES {
        let a = buf(m * k, 1);
        let b = buf(k * n, 2);
        let d = buf(m * n, 3);
        let shape = format!("{m}x{k}x{n}");

        let blocked = best_ns(20, 7, || {
            black_box(kernels::matmul(black_box(&a), black_box(&b), m, k, n));
        });
        let reference = best_ns(20, 7, || {
            black_box(kernels::reference::matmul(black_box(&a), black_box(&b), m, k, n));
        });
        fill("matmul", shape.clone(), blocked, reference);

        let blocked = best_ns(20, 7, || {
            black_box(kernels::matmul_bt(black_box(&d), black_box(&b), m, n, k));
        });
        let reference = best_ns(20, 7, || {
            black_box(kernels::reference::matmul_bt(black_box(&d), black_box(&b), m, n, k));
        });
        fill("matmul_bt", shape.clone(), blocked, reference);

        let mut gw = vec![0.0f32; k * n];
        let blocked = best_ns(20, 7, || {
            kernels::acc_matmul_at(black_box(&a), black_box(&d), m, k, n, black_box(&mut gw));
        });
        let mut gw = vec![0.0f32; k * n];
        let reference = best_ns(20, 7, || {
            kernels::reference::acc_matmul_at(
                black_box(&a),
                black_box(&d),
                m,
                k,
                n,
                black_box(&mut gw),
            );
        });
        fill("acc_matmul_at", shape, blocked, reference);
    }

    // MLP-shaped matvec kernels.
    let (out_dim, in_dim) = (256, 256);
    let w = buf(out_dim * in_dim, 4);
    let bias = buf(out_dim, 5);
    let x = buf(in_dim, 6);
    let dv = buf(out_dim, 7);
    let shape = format!("{out_dim}x{in_dim}");
    let blocked = best_ns(50, 7, || {
        black_box(kernels::matvec_bias(black_box(&w), &bias, black_box(&x), out_dim, in_dim));
    });
    let reference = best_ns(50, 7, || {
        black_box(kernels::reference::matvec_bias(
            black_box(&w),
            &bias,
            black_box(&x),
            out_dim,
            in_dim,
        ));
    });
    fill("matvec_bias", shape.clone(), blocked, reference);
    let blocked = best_ns(50, 7, || {
        black_box(kernels::matvec_t(black_box(&w), black_box(&dv), out_dim, in_dim));
    });
    let reference = best_ns(50, 7, || {
        black_box(kernels::reference::matvec_t(black_box(&w), black_box(&dv), out_dim, in_dim));
    });
    fill("matvec_t", shape, blocked, reference);

    table.finish("BENCH_kernels");
}
