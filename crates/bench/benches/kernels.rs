//! Microbenchmarks of the mini-DL matrix kernels across the three
//! generations that coexist in `mics_minidl::kernels`: the naive scalar
//! `reference`, the cache-blocked autovectorized v1 (`blocked`, PR 5), and
//! the v2 SIMD dispatch (AVX2+FMA lanes, single-threaded and with the
//! worker pool at the host's parallelism).
//!
//! Besides the criterion registrations, `main` takes its own best-of-N
//! measurements (the vendored criterion shim prints but cannot persist),
//! writes the four-way table to `results/BENCH_kernels.json`, and
//! *asserts* the Kernels-v2 acceptance claim inline: SIMD ≥ 2× over the
//! blocked kernels on matmul and matmul_bt at both bench shapes.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mics_bench::Table;
use mics_minidl::kernels;
use std::hint::black_box;
use std::time::Instant;

/// Deterministic pseudo-random buffer in roughly [-1, 1].
fn buf(len: usize, salt: u64) -> Vec<f32> {
    let mut s = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// GEMM-family shapes: a transformer-LM-sized problem (seq × model × ffn,
/// larger than the fig15 toy so timings resolve) and a square cache-stressing
/// one whose reduction crosses the KC tile.
const SHAPES: &[(usize, usize, usize)] = &[(32, 64, 128), (96, 384, 96)];

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    for &(m, k, n) in SHAPES {
        let a = buf(m * k, 1);
        let b = buf(k * n, 2);
        let shape = format!("{m}x{k}x{n}");
        g.bench_with_input(BenchmarkId::new("matmul/simd", &shape), &(), |be, ()| {
            be.iter(|| kernels::matmul(black_box(&a), black_box(&b), m, k, n))
        });
        g.bench_with_input(BenchmarkId::new("matmul/blocked", &shape), &(), |be, ()| {
            be.iter(|| kernels::blocked::matmul(black_box(&a), black_box(&b), m, k, n))
        });
        g.bench_with_input(BenchmarkId::new("matmul/reference", &shape), &(), |be, ()| {
            be.iter(|| kernels::reference::matmul(black_box(&a), black_box(&b), m, k, n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

/// Best-of-`samples` mean ns/iter of `f` over `iters` calls per sample.
fn best_ns(iters: u32, samples: u32, mut f: impl FnMut()) -> u64 {
    f(); // warmup
    let mut best = u64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as u64 / iters as u64);
    }
    best.max(1)
}

/// The four timing variants of one kernel at one shape. The `dispatch`
/// closure runs the public v2 entry point, measured twice: pinned to one
/// thread (`simd_ns`) and at the host's parallelism (`simd_mt_ns`).
struct Variants {
    reference_ns: u64,
    blocked_ns: u64,
    simd_ns: u64,
    simd_mt_ns: u64,
}

fn measure(
    iters: u32,
    mut reference: impl FnMut(),
    mut blocked: impl FnMut(),
    mut dispatch: impl FnMut(),
) -> Variants {
    let reference_ns = best_ns(iters, 7, &mut reference);
    let blocked_ns = best_ns(iters, 7, &mut blocked);
    kernels::set_kernel_threads(Some(1));
    let simd_ns = best_ns(iters, 7, &mut dispatch);
    kernels::set_kernel_threads(None);
    let simd_mt_ns = best_ns(iters, 7, &mut dispatch);
    Variants { reference_ns, blocked_ns, simd_ns, simd_mt_ns }
}

fn main() {
    // `cargo bench` runs with cwd = crates/bench; hop to the workspace root
    // so the artifact lands in the repo-wide `results/` directory that
    // `tests/results_schema.rs` validates.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::env::set_current_dir(root).expect("workspace root must exist");

    benches();

    kernels::init();
    assert!(
        kernels::simd_active() || !kernels::simd_available(),
        "autodetection must engage the SIMD path on capable hosts"
    );

    let mut table = Table::new(
        "kernel microbenchmarks: scalar reference vs blocked (v1) vs SIMD dispatch \
         (v2, 1 thread and host parallelism), best-of-7 ns/iter",
        &[
            "kernel",
            "shape",
            "reference_ns",
            "blocked_ns",
            "simd_ns",
            "simd_mt_ns",
            "speedup_simd_vs_blocked",
            "speedup_simd_vs_reference",
        ],
    );
    // The acceptance gate: (kernel, shape, simd-vs-blocked) triples checked
    // after the table fills.
    let mut gated: Vec<(String, String, f64)> = Vec::new();
    let mut fill = |table: &mut Table, kernel: &str, shape: String, v: Variants| {
        let best_simd = v.simd_ns.min(v.simd_mt_ns);
        let vs_blocked = v.blocked_ns as f64 / best_simd as f64;
        let vs_reference = v.reference_ns as f64 / best_simd as f64;
        gated.push((kernel.to_string(), shape.clone(), vs_blocked));
        table.row(vec![
            kernel.to_string(),
            shape,
            v.reference_ns.to_string(),
            v.blocked_ns.to_string(),
            v.simd_ns.to_string(),
            v.simd_mt_ns.to_string(),
            format!("{vs_blocked:.2}"),
            format!("{vs_reference:.2}"),
        ]);
    };

    for &(m, k, n) in SHAPES {
        let a = buf(m * k, 1);
        let b = buf(k * n, 2);
        let d = buf(m * n, 3);
        let shape = format!("{m}x{k}x{n}");

        let v = measure(
            20,
            || {
                black_box(kernels::reference::matmul(black_box(&a), black_box(&b), m, k, n));
            },
            || {
                black_box(kernels::blocked::matmul(black_box(&a), black_box(&b), m, k, n));
            },
            || {
                black_box(kernels::matmul(black_box(&a), black_box(&b), m, k, n));
            },
        );
        fill(&mut table, "matmul", shape.clone(), v);

        let v = measure(
            20,
            || {
                black_box(kernels::reference::matmul_bt(black_box(&d), black_box(&b), m, n, k));
            },
            || {
                black_box(kernels::blocked::matmul_bt(black_box(&d), black_box(&b), m, n, k));
            },
            || {
                black_box(kernels::matmul_bt(black_box(&d), black_box(&b), m, n, k));
            },
        );
        fill(&mut table, "matmul_bt", shape.clone(), v);

        let mut g1 = vec![0.0f32; k * n];
        let mut g2 = vec![0.0f32; k * n];
        let mut g3 = vec![0.0f32; k * n];
        let v = measure(
            20,
            || {
                kernels::reference::acc_matmul_at(
                    black_box(&a),
                    black_box(&d),
                    m,
                    k,
                    n,
                    black_box(&mut g1),
                );
            },
            || {
                kernels::blocked::acc_matmul_at(
                    black_box(&a),
                    black_box(&d),
                    m,
                    k,
                    n,
                    black_box(&mut g2),
                );
            },
            || {
                kernels::acc_matmul_at(black_box(&a), black_box(&d), m, k, n, black_box(&mut g3));
            },
        );
        fill(&mut table, "acc_matmul_at", shape, v);
    }

    // MLP-shaped matvec/outer kernels.
    let (out_dim, in_dim) = (256, 256);
    let w = buf(out_dim * in_dim, 4);
    let bias = buf(out_dim, 5);
    let x = buf(in_dim, 6);
    let dv = buf(out_dim, 7);
    let shape = format!("{out_dim}x{in_dim}");

    let v = measure(
        50,
        || {
            black_box(kernels::reference::matvec_bias(
                black_box(&w),
                &bias,
                black_box(&x),
                out_dim,
                in_dim,
            ));
        },
        || {
            black_box(kernels::blocked::matvec_bias(
                black_box(&w),
                &bias,
                black_box(&x),
                out_dim,
                in_dim,
            ));
        },
        || {
            black_box(kernels::matvec_bias(black_box(&w), &bias, black_box(&x), out_dim, in_dim));
        },
    );
    fill(&mut table, "matvec_bias", shape.clone(), v);

    let v = measure(
        50,
        || {
            black_box(kernels::reference::matvec_t(black_box(&w), black_box(&dv), out_dim, in_dim));
        },
        || {
            black_box(kernels::blocked::matvec_t(black_box(&w), black_box(&dv), out_dim, in_dim));
        },
        || {
            black_box(kernels::matvec_t(black_box(&w), black_box(&dv), out_dim, in_dim));
        },
    );
    fill(&mut table, "matvec_t", shape.clone(), v);

    let mut g1 = buf(out_dim * in_dim, 8);
    let mut g2 = g1.clone();
    let mut g3 = g1.clone();
    let v = measure(
        50,
        || {
            kernels::reference::acc_outer(black_box(&dv), black_box(&x), black_box(&mut g1));
        },
        || {
            kernels::blocked::acc_outer(black_box(&dv), black_box(&x), black_box(&mut g2));
        },
        || {
            kernels::acc_outer(black_box(&dv), black_box(&x), black_box(&mut g3));
        },
    );
    fill(&mut table, "acc_outer", shape, v);

    table.finish("BENCH_kernels");

    // Kernels-v2 acceptance claim (also re-checked from the committed JSON
    // by tests/results_schema.rs): on SIMD hosts the dispatch beats the v1
    // blocked kernels ≥ 2× on both GEMM-shaped matmul kernels.
    if kernels::simd_available() {
        for (kernel, shape, vs_blocked) in &gated {
            if kernel == "matmul" || kernel == "matmul_bt" {
                assert!(
                    *vs_blocked >= 2.0,
                    "{kernel}@{shape}: SIMD vs blocked {vs_blocked:.2}x < 2x"
                );
            }
        }
    }
    let stats = kernels::kernel_stats();
    let flops = stats.iter().find(|(n, _)| n == "kernel.flops").map(|(_, v)| *v).unwrap_or(0);
    println!("kernels bench: total FLOPs accounted {flops}");
}
