//! Benchmarks of the mini-DL stack: per-sample backprop cost and one full
//! data-parallel training iteration under each synchronization schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mics_minidl::{train, Mlp, SyncSchedule, TrainSetup};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("minidl");
    g.sample_size(20);

    let model = Mlp::new(&[32, 64, 64, 8]);
    let params = model.init_params(1);
    let xs: Vec<f32> = (0..8 * 32).map(|i| (i as f32 * 0.01).sin()).collect();
    let ys: Vec<f32> = (0..8 * 8).map(|i| (i as f32 * 0.02).cos()).collect();
    g.bench_function("loss_and_grad/batch8", |b| {
        b.iter(|| model.loss_and_grad(black_box(&params), &xs, &ys))
    });

    for schedule in [SyncSchedule::Ddp, SyncSchedule::PerMicroStepAllReduce, SyncSchedule::TwoHop] {
        g.bench_with_input(
            BenchmarkId::new("train_iteration", format!("{schedule:?}")),
            &schedule,
            |b, &schedule| {
                let setup = TrainSetup {
                    model: Mlp::new(&[8, 16, 2]),
                    world: 4,
                    partition_size: 2,
                    micro_batch: 4,
                    accum_steps: 2,
                    iterations: 1,
                    lr: 0.01,
                    seed: 3,
                    quantize: false,
                    loss_scale: mics_minidl::LossScale::None,
                    clip_grad_norm: None,
                    comm_quant: None,
                    prefetch_depth: 0,
                };
                b.iter(|| train(&setup, schedule).losses.len())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
