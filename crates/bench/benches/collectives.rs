//! Microbenchmarks of the collective cost models and layout math — these
//! run once per layer per micro-step inside the executors, so they must be
//! cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mics_cluster::InstanceType;
use mics_collectives::bandwidth::{effective_all_gather_bw, NetParams};
use mics_collectives::cost::{all_gather_flat, all_gather_hierarchical, all_reduce};
use mics_collectives::HierarchicalLayout;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let net = NetParams::from_instance(&InstanceType::p3dn_24xlarge());
    let mut g = c.benchmark_group("collectives");

    g.bench_function("cost/all_gather_flat", |b| {
        b.iter(|| all_gather_flat(black_box(64), 8, black_box(128 << 20), &net))
    });
    g.bench_function("cost/all_gather_hierarchical", |b| {
        b.iter(|| all_gather_hierarchical(black_box(64), 8, black_box(128 << 20), &net, true))
    });
    g.bench_function("cost/all_reduce_replication", |b| {
        b.iter(|| all_reduce(black_box(16), 8, 8, black_box(32 << 20), &net))
    });
    g.bench_function("bandwidth/effective_all_gather", |b| {
        b.iter(|| effective_all_gather_bw(black_box(256), 8, black_box(128 << 20), &net))
    });
    for p in [16usize, 64, 512] {
        g.bench_with_input(BenchmarkId::new("layout/simulate", p), &p, |b, &p| {
            let layout = HierarchicalLayout::new(p, 8).unwrap();
            b.iter(|| layout.simulate(black_box(0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
