//! Microbenchmarks of the planner's per-query hot path: one simulator
//! call, one tuner search, the canonical-key hash that indexes the memo
//! cache, and a memoized cache hit.
//!
//! These are the unit costs behind `ext_serve`'s throughput numbers: a
//! cache hit must be orders of magnitude cheaper than the simulation it
//! memoizes, and the key hash must be negligible against both.
//!
//! Besides the criterion registrations, `main` takes its own best-of-N
//! measurements (the vendored criterion shim prints but cannot persist) and
//! writes the per-query cost table to `results/BENCH_planner.json`.

use criterion::{criterion_group, Criterion};
use mics_bench::Table;
use mics_cluster::{ClusterSpec, InstanceType};
use mics_core::{simulate, tune, Canonical, Json, TrainingJob};
use mics_planner::PlanCache;
use std::hint::black_box;
use std::time::Instant;

/// The query every ext_serve phase is made of: BERT-1.5B on two p3dn
/// nodes under MiCS with partition groups of 8.
fn job() -> TrainingJob {
    TrainingJob {
        workload: mics_model::preset("bert-1.5b", 8).unwrap(),
        cluster: ClusterSpec::new(InstanceType::preset("p3dn").unwrap(), 2),
        strategy: mics_core::Strategy::parse("mics:8").unwrap(),
        accum_steps: 4,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner");
    g.sample_size(10);
    let job = job();
    g.bench_function("simulate", |b| b.iter(|| simulate(black_box(&job))));
    g.bench_function("tune", |b| {
        b.iter(|| tune(black_box(&job.workload), black_box(&job.cluster), job.accum_steps))
    });
    g.bench_function("canonical_key", |b| b.iter(|| black_box(&job).canonical_key()));
    let cache = PlanCache::new();
    let key = job.canonical_key();
    let far = Instant::now() + std::time::Duration::from_secs(3600);
    cache.get_or_compute(key, far, || Json::from("memoized")).unwrap();
    g.bench_function("cache_hit", |b| {
        b.iter(|| cache.get_or_compute(black_box(key), far, || unreachable!("must hit")))
    });
    g.finish();
}

criterion_group!(benches, bench);

/// Best-of-`samples` mean ns/iter of `f` over `iters` calls per sample.
fn best_ns(iters: u32, samples: u32, mut f: impl FnMut()) -> u64 {
    f(); // warmup
    let mut best = u64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as u64 / iters as u64);
    }
    best.max(1)
}

fn main() {
    // `cargo bench` runs with cwd = crates/bench; hop to the workspace root
    // so the artifact lands in the repo-wide `results/` directory that
    // `tests/results_schema.rs` validates.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::env::set_current_dir(root).expect("workspace root must exist");

    benches();

    let job = job();
    let sim_ns = best_ns(50, 7, || {
        black_box(simulate(black_box(&job))).ok();
    });
    let tune_ns = best_ns(10, 7, || {
        black_box(tune(black_box(&job.workload), black_box(&job.cluster), job.accum_steps)).ok();
    });
    let key_ns = best_ns(200, 7, || {
        black_box(black_box(&job).canonical_key());
    });
    let cache = PlanCache::new();
    let key = job.canonical_key();
    let far = Instant::now() + std::time::Duration::from_secs(3600);
    cache.get_or_compute(key, far, || Json::from("memoized")).unwrap();
    let hit_ns = best_ns(200, 7, || {
        black_box(cache.get_or_compute(black_box(key), far, || unreachable!()).unwrap());
    });

    let mut table = Table::new(
        "planner per-query costs, bert-1.5b on 2×p3dn mics:8 (best-of-7, ns/iter)",
        &["operation", "ns", "vs cache hit"],
    );
    for (op, ns) in
        [("simulate", sim_ns), ("tune", tune_ns), ("canonical_key", key_ns), ("cache_hit", hit_ns)]
    {
        table.row(vec![
            op.to_string(),
            ns.to_string(),
            format!("{:.1}", ns as f64 / hit_ns as f64),
        ]);
    }
    table.finish("BENCH_planner");
}
