//! Chunk-layout math for the 3-stage hierarchical all-gather (paper §3.3,
//! Figure 4).
//!
//! A message of `p` equal chunks is sharded so that group-local rank `i`
//! holds chunk `i`. The hierarchical algorithm on a group spanning
//! `N = p / k` nodes (with `k` devices per node) runs:
//!
//! 1. **Inter-node all-gather**, one per *channel* (devices with the same
//!    local rank on each node), executed in parallel over the NICs. After
//!    this stage, the device at node `j`, local rank `c` holds chunks
//!    `[c, k + c, 2k + c, …]` — note they are *not* consecutive.
//! 2. **Re-arrangement**: each device copies its stage-1 slots into the
//!    positions the final buffer needs. Skipping this stage and naively
//!    concatenating per-device buffers yields the wrong order the paper uses
//!    as its running example (`[C0, C2, C1, C3]` instead of
//!    `[C0, C1, C2, C3]`).
//! 3. **Batched intra-node all-gathers** (`N` of them) over NVLink, each
//!    filling one `k`-chunk span of the output on every device of the node.

/// The chunk geometry of one hierarchical all-gather: `p` participants,
/// `k` per node.
///
/// ```
/// use mics_collectives::HierarchicalLayout;
/// // The paper's Figure 4 example: 4 participants on 2 nodes.
/// let l = HierarchicalLayout::new(4, 2).unwrap();
/// assert_eq!(l.stage1_holdings(0), vec![0, 2]);       // interleaved!
/// assert_eq!(l.naive_concat_order(0), vec![0, 2, 1, 3]); // the bug
/// assert_eq!(l.simulate(0), vec![0, 1, 2, 3]);        // stage 2+3 fix it
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalLayout {
    p: usize,
    k: usize,
}

impl HierarchicalLayout {
    /// Create a layout. Requires `k` to divide `p` and the group to span at
    /// least two nodes (`p > k`), otherwise hierarchical communication does
    /// not apply (§3.3).
    pub fn new(p: usize, k: usize) -> Option<Self> {
        if k == 0 || p <= k || !p.is_multiple_of(k) {
            return None;
        }
        Some(HierarchicalLayout { p, k })
    }

    /// Number of participants (`p`).
    pub fn participants(&self) -> usize {
        self.p
    }

    /// Devices per node (`k`).
    pub fn per_node(&self) -> usize {
        self.k
    }

    /// Nodes spanned (`p / k`).
    pub fn nodes(&self) -> usize {
        self.p / self.k
    }

    /// The node index of a group-local rank.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.k
    }

    /// The within-node index of a group-local rank.
    pub fn local_of(&self, rank: usize) -> usize {
        rank % self.k
    }

    /// Members of `rank`'s inter-node channel (stage 1): one rank per node,
    /// all with the same within-node index, in node order.
    pub fn channel(&self, rank: usize) -> Vec<usize> {
        let c = self.local_of(rank);
        (0..self.nodes()).map(|j| j * self.k + c).collect()
    }

    /// Chunk ids held by `rank` after stage 1, in memory order.
    ///
    /// Slot `j` of the stage-1 buffer holds the chunk contributed by the
    /// channel member on node `j`, i.e. chunk `j·k + local(rank)`.
    pub fn stage1_holdings(&self, rank: usize) -> Vec<usize> {
        let c = self.local_of(rank);
        (0..self.nodes()).map(|j| j * self.k + c).collect()
    }

    /// Where stage 2 must place the chunk sitting in stage-1 slot `slot`:
    /// its index in the final `p`-chunk output buffer.
    pub fn stage2_destination(&self, rank: usize, slot: usize) -> usize {
        debug_assert!(slot < self.nodes());
        slot * self.k + self.local_of(rank)
    }

    /// The output order produced by *naively* concatenating the stage-1
    /// buffers of the node's devices (what you would get by launching one
    /// ordinary all-gather on the stage-1 output, i.e. skipping stages 2–3).
    ///
    /// This is the paper's wrong-layout example: for `p = 4, k = 2` it
    /// returns `[0, 2, 1, 3]`.
    pub fn naive_concat_order(&self, rank: usize) -> Vec<usize> {
        let node = self.node_of(rank);
        let mut order = Vec::with_capacity(self.p);
        for dev in 0..self.k {
            order.extend(self.stage1_holdings(node * self.k + dev));
        }
        order
    }

    /// Simulate all three stages symbolically and return the chunk ids each
    /// device of `rank`'s node ends up with, in memory order. A correct
    /// implementation returns `[0, 1, …, p-1]`.
    ///
    /// Stage 3 is modelled exactly as §3.3 describes: `p / k` batched
    /// intra-node all-gathers, where call `j` gathers — from each device of
    /// the node — the chunk that belongs at output position `j·k + local`.
    pub fn simulate(&self, rank: usize) -> Vec<usize> {
        let node = self.node_of(rank);
        let mut out = vec![usize::MAX; self.p];
        // After stages 1+2, device (node, c) holds chunk j*k + c at output
        // position j*k + c, for every j.
        // Stage 3, call j: intra-node all-gather among the k devices; device
        // with local rank c contributes its chunk at position j*k + c; every
        // device receives all k contributions into positions j*k .. j*k + k.
        for j in 0..self.nodes() {
            for c in 0..self.k {
                // Contribution of device (node, c): it must own this chunk
                // after stages 1+2 — assert the handoff is consistent.
                let contributing_rank = node * self.k + c;
                let holdings = self.stage1_holdings(contributing_rank);
                let chunk = holdings[j];
                let dest = self.stage2_destination(contributing_rank, j);
                out[dest] = chunk;
            }
        }
        out
    }
}

/// Chunk order of a flat (single-stage) all-gather: rank `i` contributes
/// chunk `i`, concatenated in rank order — the reference layout every other
/// algorithm must match.
pub fn flat_order(p: usize) -> Vec<usize> {
    (0..p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_geometries() {
        assert!(HierarchicalLayout::new(8, 8).is_none(), "single node");
        assert!(HierarchicalLayout::new(4, 8).is_none(), "sub-node group");
        assert!(HierarchicalLayout::new(12, 8).is_none(), "k does not divide p");
        assert!(HierarchicalLayout::new(16, 0).is_none(), "zero k");
        assert!(HierarchicalLayout::new(16, 8).is_some());
    }

    #[test]
    fn paper_figure4_example() {
        // p = 4 participants, k = 2 per node (two nodes).
        let l = HierarchicalLayout::new(4, 2).unwrap();
        // Node 0, device 0 gathers C0 and C2 in stage 1.
        assert_eq!(l.stage1_holdings(0), vec![0, 2]);
        assert_eq!(l.stage1_holdings(1), vec![1, 3]);
        // The naive concatenation is the paper's wrong layout.
        assert_eq!(l.naive_concat_order(0), vec![0, 2, 1, 3]);
        // The full 3-stage algorithm produces the correct layout.
        assert_eq!(l.simulate(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn channels_partition_group_one_rank_per_node() {
        let l = HierarchicalLayout::new(32, 8).unwrap();
        let ch = l.channel(11); // node 1, local 3
        assert_eq!(ch, vec![3, 11, 19, 27]);
        assert_eq!(l.nodes(), 4);
    }

    #[test]
    fn stage3_batched_call_count_is_p_over_k() {
        // §3.3: "the number of batched all-gather calls is p/k".
        let l = HierarchicalLayout::new(64, 8).unwrap();
        assert_eq!(l.nodes(), 8);
    }

    #[test]
    fn naive_order_only_correct_for_trivial_channel() {
        // With k = 1 hierarchical never applies; for any valid layout the
        // naive order must differ from flat whenever k > 1 and N > 1.
        for (p, k) in [(4, 2), (16, 8), (32, 8), (64, 16)] {
            let l = HierarchicalLayout::new(p, k).unwrap();
            assert_ne!(l.naive_concat_order(0), flat_order(p), "p={p} k={k}");
        }
    }

    proptest! {
        /// The headline invariant: for every valid geometry, the 3-stage
        /// hierarchical all-gather produces exactly the flat order.
        #[test]
        fn hierarchical_equals_flat(nodes in 2usize..10, k in 1usize..9) {
            let p = nodes * k;
            prop_assume!(p > k);
            let l = HierarchicalLayout::new(p, k).unwrap();
            for rank in 0..p {
                prop_assert_eq!(l.simulate(rank), flat_order(p));
            }
        }

        /// Stage-1 holdings cover each channel's chunks exactly once, and the
        /// union over a node's devices covers all chunks.
        #[test]
        fn stage1_holdings_partition_chunks(nodes in 2usize..8, k in 1usize..9) {
            let p = nodes * k;
            let l = HierarchicalLayout::new(p, k).unwrap();
            let mut seen = vec![false; p];
            for c in 0..k {
                for chunk in l.stage1_holdings(c) {
                    prop_assert!(!seen[chunk]);
                    seen[chunk] = true;
                }
            }
            prop_assert!(seen.iter().all(|&b| b));
        }

        /// Stage-2 destinations are a bijection onto the output positions
        /// that the device's chunks must occupy.
        #[test]
        fn stage2_destinations_unique(nodes in 2usize..8, k in 1usize..9) {
            let p = nodes * k;
            let l = HierarchicalLayout::new(p, k).unwrap();
            for rank in 0..p {
                let mut dests: Vec<_> =
                    (0..l.nodes()).map(|s| l.stage2_destination(rank, s)).collect();
                dests.sort_unstable();
                dests.dedup();
                prop_assert_eq!(dests.len(), l.nodes());
            }
        }
    }
}
