//! Effective-bandwidth estimation (paper §2.3, Figure 1).
//!
//! The paper defines *effective communication bandwidth* as "the bandwidth
//! measured using collective communication", which folds algorithm latency
//! into the number: for a fixed message size, effective bandwidth shrinks as
//! the participant count grows, because ring latency `(p-1)·α` grows while
//! the wire volume `(p-1)/p·M` saturates. Figure 1 shows exactly this —
//! 128 MB messages get poor utilization on 16 and 32 nodes.

use crate::cost;
use mics_simnet::SimTime;

/// Network parameters of one homogeneous cluster, consumed by the cost
/// models. Construct by hand or via [`NetParams::from_instance`].
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Per-node NIC bandwidth, bytes/s.
    pub nic_bw: f64,
    /// Per-node aggregate NVLink fabric bandwidth, bytes/s.
    pub nvlink_bw: f64,
    /// Per-device copy-engine bandwidth, bytes/s.
    pub memcpy_bw: f64,
    /// Startup latency of one intra-node hop.
    pub alpha_intra: SimTime,
    /// Startup latency of one inter-node hop.
    pub alpha_inter: SimTime,
    /// Host-side launch overhead per collective.
    pub launch: SimTime,
    /// Extra overhead per additional call in a coalesced batch.
    pub coalesced_call: SimTime,
}

impl NetParams {
    /// Derive network parameters from a cluster instance type.
    pub fn from_instance(inst: &mics_cluster::InstanceType) -> Self {
        NetParams {
            nic_bw: inst.nic_bw,
            nvlink_bw: inst.nvlink_fabric_bw,
            memcpy_bw: inst.memcpy_bw,
            alpha_intra: inst.alpha_intra,
            alpha_inter: inst.alpha_inter,
            launch: inst.launch_overhead,
            coalesced_call: SimTime::from_micros(2),
        }
    }
}

/// Algorithm bandwidth: full message size divided by elapsed time. This is
/// what a user perceives ("how fast did my M bytes get gathered").
pub fn algorithm_bandwidth(message_bytes: u64, elapsed: SimTime) -> f64 {
    if elapsed == SimTime::ZERO {
        return f64::INFINITY;
    }
    message_bytes as f64 / elapsed.as_secs_f64()
}

/// Bus bandwidth: wire volume `(p-1)/p · M` divided by elapsed time. This is
/// the NCCL convention and what the paper's B_part / B_all numbers use
/// (B_part ≈ 128 GB/s on NVLink, B_all ≈ 11 GB/s across 8 nodes).
pub fn bus_bandwidth(p: usize, message_bytes: u64, elapsed: SimTime) -> f64 {
    if elapsed == SimTime::ZERO || p < 2 {
        return f64::INFINITY;
    }
    let wire = message_bytes as f64 * (p as f64 - 1.0) / p as f64;
    wire / elapsed.as_secs_f64()
}

/// Effective all-gather bus bandwidth for a message of `m` bytes over `p`
/// ranks (`k` per node) — the model behind Figure 1.
pub fn effective_all_gather_bw(p: usize, k: usize, m: u64, net: &NetParams) -> f64 {
    let t = cost::all_gather_flat(p, k, m, net).serial_time(net);
    bus_bandwidth(p, m, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p3dn_net() -> NetParams {
        NetParams::from_instance(&mics_cluster::InstanceType::p3dn_24xlarge())
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn bus_bandwidth_definition() {
        // 16 ranks, 16 MB, 1 ms → wire volume 15 MB → 15 MB/ms.
        let bw = bus_bandwidth(16, 16 * MB, SimTime::from_millis(1));
        assert!((bw - 15.0 * MB as f64 * 1000.0).abs() / bw < 1e-9);
    }

    #[test]
    fn figure1_shape_bandwidth_drops_with_scale_at_fixed_message() {
        // At 128 MB, effective bandwidth must fall monotonically from
        // 2 to 32 nodes (Fig. 1's headline observation).
        let net = p3dn_net();
        let mut prev = f64::INFINITY;
        for nodes in [2usize, 4, 8, 16, 32] {
            let bw = effective_all_gather_bw(nodes * 8, 8, 128 * MB, &net);
            assert!(bw < prev, "{nodes} nodes: {bw} !< {prev}");
            prev = bw;
        }
    }

    #[test]
    fn figure1_shape_large_messages_saturate() {
        // For a fixed scale, bigger messages approach the NIC line rate.
        let net = p3dn_net();
        let small = effective_all_gather_bw(64, 8, 8 * MB, &net);
        let large = effective_all_gather_bw(64, 8, 4096 * MB, &net);
        assert!(large > small * 1.5);
        assert!(large <= net.nic_bw);
        assert!(large > 0.9 * net.nic_bw, "4 GB should nearly saturate: {large}");
    }

    #[test]
    fn paper_calibration_points() {
        let net = p3dn_net();
        // B_all ≈ 11 GB/s measured across 8 nodes (§3.2). Accept 9–12.5.
        let b_all = effective_all_gather_bw(64, 8, 512 * MB, &net);
        assert!((9e9..=12.5e9).contains(&b_all), "B_all calibration off: {:.2} GB/s", b_all / 1e9);
        // B_part ≈ 128 GB/s within one node. Accept 100–160.
        let b_part = effective_all_gather_bw(8, 8, 512 * MB, &net);
        assert!(
            (100e9..=160e9).contains(&b_part),
            "B_part calibration off: {:.2} GB/s",
            b_part / 1e9
        );
        // §3.2: the cost ratio for intra-node partitioning can reach ~11.6.
        let ratio = b_part / b_all;
        assert!((8.0..=16.0).contains(&ratio), "B_part/B_all = {ratio}");
    }

    #[test]
    fn algorithm_bandwidth_zero_time_is_infinite() {
        assert!(algorithm_bandwidth(MB, SimTime::ZERO).is_infinite());
    }
}
