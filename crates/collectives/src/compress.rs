//! α–β cost models for *quantized* collectives.
//!
//! A compressed collective trades wire bytes for copy-engine work: every
//! payload is shrunk by the scheme's compression ratio before it touches a
//! NIC or NVLink, and two extra memcpy-class phases appear — the quantize
//! kernel before the transfer and the dequantize(-reduce) kernel after it.
//! That shifts the α–β crossover points: on a 100 Gbps NIC the bandwidth
//! saving dwarfs the ~700 GB/s memcpy overhead for any sizeable message,
//! while for small messages (or fast intra-node fabrics) the two extra
//! kernel launches make fp32 the better choice. [`crossover_bytes`] finds
//! the break-even message size the tuner and benches reason about.
//!
//! The models here stay deliberately independent of `mics-compress` (this
//! crate sits below it in the dependency order); `mics-compress` converts
//! its `QuantScheme` into a [`CompressionModel`] and the two accountings are
//! tested equal in that crate.

use crate::bandwidth::NetParams;
use crate::cost::{
    all_gather_flat, all_gather_hierarchical, all_reduce, reduce_scatter, CollectiveCost,
    LinkClass, Phase,
};

/// Wire-size model of one quantization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionModel {
    /// Bits per transported element code.
    pub code_bits: u32,
    /// Elements per scale/zero-point metadata block (0 = no metadata).
    pub block: usize,
    /// Uncompressed element size in bytes (4: fp32 wires).
    pub elem_bytes: u64,
}

impl CompressionModel {
    /// 8-bit block quantization.
    pub fn int8(block: usize) -> Self {
        CompressionModel { code_bits: 8, block, elem_bytes: 4 }
    }

    /// 4-bit block quantization.
    pub fn int4(block: usize) -> Self {
        CompressionModel { code_bits: 4, block, elem_bytes: 4 }
    }

    /// f16 passthrough (no block metadata).
    pub fn f16() -> Self {
        CompressionModel { code_bits: 16, block: 0, elem_bytes: 4 }
    }

    /// Compressed size of an `m`-byte uncompressed message: packed codes
    /// plus 8 metadata bytes per block.
    pub fn compressed_bytes(&self, m: u64) -> u64 {
        let elems = m / self.elem_bytes;
        let code = (elems * self.code_bits as u64).div_ceil(8);
        let meta = if self.block > 0 { elems.div_ceil(self.block as u64) * 8 } else { 0 };
        code + meta
    }

    /// Compression ratio for an `m`-byte message.
    pub fn ratio(&self, m: u64) -> f64 {
        if m == 0 {
            return 1.0;
        }
        m as f64 / self.compressed_bytes(m) as f64
    }
}

/// Scale every wire phase of `base` by the compressed/uncompressed byte
/// ratio `c/m`. Memcpy phases scale too: staging copies inside a quantized
/// collective (e.g. the hierarchical stage-2 re-arrangement) move encoded
/// chunks, not fp32.
fn shrink_wire(base: &CollectiveCost, m: u64, c: u64) -> CollectiveCost {
    if m == 0 {
        return base.clone();
    }
    CollectiveCost {
        phases: base
            .phases
            .iter()
            .map(|ph| Phase {
                link: ph.link,
                bytes: ((ph.bytes as u128 * c as u128) / m as u128) as u64,
                latency: ph.latency,
            })
            .collect(),
    }
}

/// A quant/dequant kernel pass: `bytes` through the copy engine plus one
/// kernel launch.
fn kernel_phase(bytes: u64, net: &NetParams) -> Phase {
    Phase { link: LinkClass::Memcpy, bytes, latency: net.launch }
}

fn with_kernels(
    wire: CollectiveCost,
    quant_bytes: u64,
    dequant_bytes: u64,
    net: &NetParams,
) -> CollectiveCost {
    let mut phases = Vec::with_capacity(wire.phases.len() + 2);
    phases.push(kernel_phase(quant_bytes, net));
    phases.extend(wire.phases);
    phases.push(kernel_phase(dequant_bytes, net));
    CollectiveCost { phases }
}

/// Quantized flat all-gather (qwZ-style weight gather): each rank quantizes
/// its `m/p` shard, the ring moves compressed bytes, every rank dequantizes
/// the full gathered buffer.
pub fn quantized_all_gather_flat(
    p: usize,
    k: usize,
    m: u64,
    net: &NetParams,
    cm: &CompressionModel,
) -> CollectiveCost {
    if p <= 1 {
        return all_gather_flat(p, k, m, net);
    }
    let c = cm.compressed_bytes(m);
    let wire = shrink_wire(&all_gather_flat(p, k, m, net), m, c);
    with_kernels(wire, (m + c) / p as u64, c + m, net)
}

/// Quantized 3-stage hierarchical all-gather: the wire phases (stage-1 NIC,
/// stage-2 staging memcpy, stage-3 NVLink) all move encoded chunks, so every
/// phase shrinks by the compression ratio; quant/dequant bracket the
/// collective exactly as in the flat case. `None` when the geometry does not
/// span nodes.
pub fn quantized_all_gather_hierarchical(
    p: usize,
    k: usize,
    m: u64,
    net: &NetParams,
    coalesced: bool,
    cm: &CompressionModel,
) -> Option<CollectiveCost> {
    let base = all_gather_hierarchical(p, k, m, net, coalesced)?;
    let c = cm.compressed_bytes(m);
    Some(with_kernels(shrink_wire(&base, m, c), (m + c) / p as u64, c + m, net))
}

/// Quantized reduce-scatter (qgZ-style gradient reduce): quantize the full
/// local buffer, move compressed bytes, dequantize-and-reduce on arrival.
/// The trailing kernel pass accounts the per-hop dequantize + requantize
/// work a ring implementation performs (one full pass over the data in
/// aggregate).
pub fn quantized_reduce_scatter(
    p: usize,
    k: usize,
    m: u64,
    net: &NetParams,
    cm: &CompressionModel,
) -> CollectiveCost {
    if p <= 1 {
        return reduce_scatter(p, k, m, net);
    }
    let c = cm.compressed_bytes(m);
    let wire = shrink_wire(&reduce_scatter(p, k, m, net), m, c);
    with_kernels(wire, m + c, c + m, net)
}

/// Quantized all-reduce: reduce-scatter + all-gather on compressed wires,
/// with quantize and dequantize-reduce kernel passes. Used for the hop-2
/// replication-group synchronization when compression scope is
/// "everywhere".
pub fn quantized_all_reduce(
    p: usize,
    k: usize,
    stride: usize,
    m: u64,
    net: &NetParams,
    cm: &CompressionModel,
) -> CollectiveCost {
    if p <= 1 {
        return all_reduce(p, k, stride, m, net);
    }
    let c = cm.compressed_bytes(m);
    let wire = shrink_wire(&all_reduce(p, k, stride, m, net), m, c);
    with_kernels(wire, m + c, c + m, net)
}

/// Smallest message size (bytes, within `lo..hi` by doubling + bisection)
/// at which the quantized all-gather beats the fp32 one for this geometry,
/// or `None` if fp32 wins across the whole range. This is the α–β crossover
/// the compression shifts: below it the two extra kernel launches dominate,
/// above it the wire saving does.
pub fn crossover_bytes(
    p: usize,
    k: usize,
    net: &NetParams,
    cm: &CompressionModel,
    lo: u64,
    hi: u64,
) -> Option<u64> {
    let quantized_wins = |m: u64| {
        let q = quantized_all_gather_flat(p, k, m, net, cm).serial_time(net);
        let f = all_gather_flat(p, k, m, net).serial_time(net);
        q < f
    };
    if !quantized_wins(hi) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    if quantized_wins(lo) {
        return Some(lo);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if quantized_wins(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mics_simnet::SimTime;

    fn net() -> NetParams {
        NetParams {
            nic_bw: 12.5e9,
            nvlink_bw: 8.0 * 135e9,
            memcpy_bw: 700e9,
            alpha_intra: SimTime::from_micros(4),
            alpha_inter: SimTime::from_micros(22),
            launch: SimTime::from_micros(12),
            coalesced_call: SimTime::from_micros(2),
        }
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn compressed_bytes_ratios() {
        let int8 = CompressionModel::int8(128);
        // 1 MiB fp32 = 256 Ki elems → 256 KiB codes + 2 Ki blocks × 8 B.
        assert_eq!(int8.compressed_bytes(MB), 256 * 1024 + 2048 * 8);
        assert!((int8.ratio(MB) - 3.76).abs() < 0.01, "{}", int8.ratio(MB));
        let int4 = CompressionModel::int4(128);
        assert!((int4.ratio(MB) - 7.11).abs() < 0.02, "{}", int4.ratio(MB));
        let f16 = CompressionModel::f16();
        assert_eq!(f16.compressed_bytes(MB), MB / 2);
        assert_eq!(f16.ratio(MB), 2.0);
    }

    #[test]
    fn quantized_gather_shrinks_nic_bytes_by_ratio() {
        let n = net();
        let cm = CompressionModel::int8(128);
        let m = 128 * MB;
        let base = all_gather_flat(16, 8, m, &n);
        let q = quantized_all_gather_flat(16, 8, m, &n, &cm);
        let expect = (base.nic_bytes() as f64 / cm.ratio(m)).round() as u64;
        assert!((q.nic_bytes() as i64 - expect as i64).unsigned_abs() <= 1);
        // And the memcpy kernel passes are present (quant + dequant).
        let memcpy: Vec<_> = q.phases.iter().filter(|p| p.link == LinkClass::Memcpy).collect();
        assert_eq!(memcpy.len(), 2);
    }

    #[test]
    fn hierarchical_quantized_keeps_stage_structure() {
        let n = net();
        let cm = CompressionModel::int8(128);
        let base = all_gather_hierarchical(16, 8, 64 * MB, &n, true).unwrap();
        let q = quantized_all_gather_hierarchical(16, 8, 64 * MB, &n, true, &cm).unwrap();
        // quant + (stage1 nic, stage2 memcpy, stage3 nvlink) + dequant.
        assert_eq!(q.phases.len(), base.phases.len() + 2);
        assert!(q.nic_bytes() < base.nic_bytes());
        assert!(quantized_all_gather_hierarchical(8, 8, MB, &n, true, &cm).is_none());
    }

    #[test]
    fn int8_wins_large_messages_on_nic() {
        // The headline crossover shift: at 100 Gbps, a 64 MiB inter-node
        // gather is much faster quantized.
        let n = net();
        let cm = CompressionModel::int8(128);
        for m in [16 * MB, 64 * MB, 256 * MB] {
            let q = quantized_all_gather_flat(16, 8, m, &n, &cm).serial_time(&n);
            let f = all_gather_flat(16, 8, m, &n).serial_time(&n);
            assert!(q.as_secs_f64() < 0.5 * f.as_secs_f64(), "m={m}: quantized {q} vs fp32 {f}");
        }
    }

    #[test]
    fn fp32_wins_small_messages() {
        // Two extra kernel launches dominate a 4 KiB message.
        let n = net();
        let cm = CompressionModel::int8(128);
        let q = quantized_all_gather_flat(16, 8, 4096, &n, &cm).serial_time(&n);
        let f = all_gather_flat(16, 8, 4096, &n).serial_time(&n);
        assert!(q > f, "quantized {q} vs fp32 {f}");
    }

    #[test]
    fn crossover_exists_and_moves_with_bit_width() {
        let n = net();
        let c8 = crossover_bytes(16, 8, &n, &CompressionModel::int8(128), 1024, 1 << 30)
            .expect("int8 must win somewhere on a 100 Gbps NIC");
        let c4 = crossover_bytes(16, 8, &n, &CompressionModel::int4(128), 1024, 1 << 30)
            .expect("int4 must win somewhere");
        // Reasonable range: tens of KB to a few MB.
        assert!((16 * 1024..16 * 1024 * 1024).contains(&c8), "int8 crossover {c8}");
        // More aggressive compression pays off earlier (never later).
        assert!(c4 <= c8, "int4 {c4} vs int8 {c8}");
    }

    #[test]
    fn intra_node_crossover_is_later_than_inter_node() {
        // NVLink is ~86× faster than the NIC, so the wire saving is worth
        // ~86× less and the crossover (if any) happens much later.
        let n = net();
        let cm = CompressionModel::int8(128);
        let inter = crossover_bytes(16, 8, &n, &cm, 1024, 1 << 30).unwrap();
        // `None` — fp32 winning everywhere intra-node — is also acceptable.
        if let Some(intra) = crossover_bytes(8, 8, &n, &cm, 1024, 1 << 30) {
            assert!(intra > 4 * inter, "intra {intra} vs inter {inter}");
        }
    }

    #[test]
    fn quantized_all_reduce_and_reduce_scatter_shrink_wire() {
        let n = net();
        let cm = CompressionModel::int4(64);
        let m = 32 * MB;
        assert!(
            quantized_reduce_scatter(16, 8, m, &n, &cm).nic_bytes()
                < reduce_scatter(16, 8, m, &n).nic_bytes()
        );
        let q = quantized_all_reduce(4, 8, 8, m, &n, &cm);
        let f = all_reduce(4, 8, 8, m, &n);
        assert!(q.nic_bytes() < f.nic_bytes());
        assert_eq!(q.phases.len(), f.phases.len() + 2);
    }

    #[test]
    fn trivial_groups_pay_no_kernels() {
        let n = net();
        let cm = CompressionModel::int8(128);
        assert!(quantized_all_gather_flat(1, 8, MB, &n, &cm).phases.is_empty());
        assert!(quantized_all_reduce(1, 8, 1, MB, &n, &cm).phases.is_empty());
    }
}
