//! Per-op cost dispatch: a wire-level collective descriptor.
//!
//! The schedule IR in `mics-core` annotates every communication op with a
//! [`WireCollective`] — *what* moves (kind, participants, payload bytes,
//! optional codec) without *when* or *on which stream*. This module turns
//! such a descriptor into a [`CollectiveCost`] by dispatching to the α–β
//! models of [`crate::cost`] / [`crate::compress`], so the simulator backend
//! and any analytic consumer (the Megatron comparator, wire accounting)
//! price an op through one code path.

use crate::bandwidth::NetParams;
use crate::compress::{
    quantized_all_gather_flat, quantized_all_gather_hierarchical, quantized_all_reduce,
    quantized_reduce_scatter, CompressionModel,
};
use crate::cost::{
    all_gather_flat, all_gather_hierarchical, all_reduce, p2p, reduce_scatter, CollectiveCost,
};

/// Which collective algorithm an op runs on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKind {
    /// Ring (or, when `hierarchical`, the §3.3 3-stage) all-gather over a
    /// contiguous group.
    AllGather {
        /// Use the 3-stage hierarchical algorithm (requires the group to
        /// span nodes: `participants > devices_per_node`).
        hierarchical: bool,
        /// Batch the stage-3 intra-node calls through the coalesced API.
        coalesced: bool,
    },
    /// Ring reduce-scatter over a contiguous group.
    ReduceScatter,
    /// Ring all-reduce over a group whose members are laid out with this
    /// stride (1 = contiguous partition group, `p` = replication group).
    AllReduce {
        /// Rank stride between consecutive members.
        stride: usize,
    },
    /// Point-to-point transfer (pipeline-parallel activations).
    P2p {
        /// Whether the endpoints sit on different nodes.
        inter_node: bool,
    },
}

/// A priced communication op: everything the α–β models need, nothing the
/// executors add (streams, events, host overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireCollective {
    /// The algorithm and its layout parameters.
    pub kind: WireKind,
    /// Number of participating ranks.
    pub participants: usize,
    /// Devices per node (`k`), which decides NVLink vs NIC.
    pub devices_per_node: usize,
    /// Uncompressed payload bytes (`m` in the cost-model signatures).
    pub bytes: u64,
    /// Quantized-wire codec (`None` = full-precision wire).
    pub codec: Option<CompressionModel>,
}

impl WireCollective {
    /// Price this op with the α–β cost models.
    ///
    /// # Panics
    /// Panics when `kind` asks for the hierarchical all-gather on a
    /// geometry that does not span nodes — callers are expected to have
    /// validated the geometry (the executors do so via `check_memory`).
    pub fn cost(&self, net: &NetParams) -> CollectiveCost {
        let (p, k, m) = (self.participants, self.devices_per_node, self.bytes);
        match (self.kind, &self.codec) {
            (WireKind::AllGather { hierarchical: true, coalesced }, Some(cm)) => {
                quantized_all_gather_hierarchical(p, k, m, net, coalesced, cm)
                    .expect("geometry validated by check_memory")
            }
            (WireKind::AllGather { hierarchical: true, coalesced }, None) => {
                all_gather_hierarchical(p, k, m, net, coalesced)
                    .expect("geometry validated by check_memory")
            }
            (WireKind::AllGather { hierarchical: false, .. }, Some(cm)) => {
                quantized_all_gather_flat(p, k, m, net, cm)
            }
            (WireKind::AllGather { hierarchical: false, .. }, None) => {
                all_gather_flat(p, k, m, net)
            }
            (WireKind::ReduceScatter, Some(cm)) => quantized_reduce_scatter(p, k, m, net, cm),
            (WireKind::ReduceScatter, None) => reduce_scatter(p, k, m, net),
            (WireKind::AllReduce { stride }, Some(cm)) => {
                quantized_all_reduce(p, k, stride, m, net, cm)
            }
            (WireKind::AllReduce { stride }, None) => all_reduce(p, k, stride, m, net),
            (WireKind::P2p { inter_node }, _) => p2p(m, inter_node, net),
        }
    }

    /// Per-node NIC bytes of this op (the wire volume the IR's accounting
    /// aggregates), via [`CollectiveCost::nic_bytes`].
    pub fn nic_bytes(&self, net: &NetParams) -> u64 {
        self.cost(net).nic_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mics_simnet::SimTime;

    fn net() -> NetParams {
        NetParams {
            nic_bw: 12.5e9,
            nvlink_bw: 8.0 * 135e9,
            memcpy_bw: 700e9,
            alpha_intra: SimTime::from_micros(4),
            alpha_inter: SimTime::from_micros(22),
            launch: SimTime::from_micros(12),
            coalesced_call: SimTime::from_micros(2),
        }
    }

    const MB: u64 = 1 << 20;

    fn wc(kind: WireKind, p: usize, m: u64, codec: Option<CompressionModel>) -> WireCollective {
        WireCollective { kind, participants: p, devices_per_node: 8, bytes: m, codec }
    }

    #[test]
    fn dispatch_matches_direct_calls_exactly() {
        let n = net();
        let cm = CompressionModel::int8(128);
        let cases = [
            (
                wc(
                    WireKind::AllGather { hierarchical: false, coalesced: false },
                    16,
                    64 * MB,
                    None,
                ),
                all_gather_flat(16, 8, 64 * MB, &n),
            ),
            (
                wc(WireKind::AllGather { hierarchical: true, coalesced: true }, 16, 64 * MB, None),
                all_gather_hierarchical(16, 8, 64 * MB, &n, true).unwrap(),
            ),
            (
                wc(
                    WireKind::AllGather { hierarchical: true, coalesced: true },
                    16,
                    64 * MB,
                    Some(cm),
                ),
                quantized_all_gather_hierarchical(16, 8, 64 * MB, &n, true, &cm).unwrap(),
            ),
            (wc(WireKind::ReduceScatter, 16, 32 * MB, None), reduce_scatter(16, 8, 32 * MB, &n)),
            (
                wc(WireKind::ReduceScatter, 16, 32 * MB, Some(cm)),
                quantized_reduce_scatter(16, 8, 32 * MB, &n, &cm),
            ),
            (
                wc(WireKind::AllReduce { stride: 8 }, 4, 8 * MB, None),
                all_reduce(4, 8, 8, 8 * MB, &n),
            ),
            (
                wc(WireKind::AllReduce { stride: 8 }, 4, 8 * MB, Some(cm)),
                quantized_all_reduce(4, 8, 8, 8 * MB, &n, &cm),
            ),
            (wc(WireKind::P2p { inter_node: true }, 2, 16 * MB, None), p2p(16 * MB, true, &n)),
        ];
        for (desc, expect) in cases {
            assert_eq!(desc.cost(&n), expect, "{desc:?}");
            assert_eq!(desc.nic_bytes(&n), expect.nic_bytes(), "{desc:?}");
        }
    }

    #[test]
    #[should_panic(expected = "geometry validated")]
    fn hierarchical_on_intra_node_geometry_panics() {
        let desc = wc(WireKind::AllGather { hierarchical: true, coalesced: true }, 8, MB, None);
        let _ = desc.cost(&net());
    }
}
