//! α–β cost models for the collectives MiCS uses.
//!
//! Every model follows the classic formulation the paper cites (Chan et al.,
//! §7.1.7): a collective over `p` participants pays a startup term that grows
//! with `p` (ring algorithms: `(p-1)·α`) plus a bandwidth term
//! `volume / B` where the volume on the bottleneck link is `(p-1)/p · M` for
//! all-gather / reduce-scatter and `2(p-1)/p · M` for all-reduce.
//!
//! Costs are expressed as a sequence of [`Phase`]s, each naming the class of
//! link it occupies. The simulator executors in `mics-core` map each phase to
//! a timed transfer on the right shared link, so *contention between
//! overlapping collectives emerges from the simulation* rather than being
//! baked into these formulas. For analytic uses (Fig. 1, Fig. 12a) a phase
//! list can also be collapsed with [`CollectiveCost::serial_time`].

use crate::bandwidth::NetParams;
use crate::layout::HierarchicalLayout;
use mics_simnet::SimTime;

/// The class of shared resource a phase occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// A node's inter-node NIC. `bytes` is per participating node.
    Nic,
    /// A node's intra-node NVLink fabric. `bytes` is per participating node.
    NvLink,
    /// A device's local copy engine. `bytes` is per device.
    Memcpy,
}

/// One timed stage of a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Which resource the bytes traverse.
    pub link: LinkClass,
    /// Bytes moved through one instance of that resource.
    pub bytes: u64,
    /// Fixed startup cost paid before the bytes move.
    pub latency: SimTime,
}

/// The cost of a collective as a sequence of phases executed in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveCost {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl CollectiveCost {
    /// Wall-clock time of the collective assuming exclusive use of every
    /// link (no contention). Used for analytic plots and micro-benchmarks.
    pub fn serial_time(&self, net: &NetParams) -> SimTime {
        let mut t = SimTime::ZERO;
        for ph in &self.phases {
            let bw = match ph.link {
                LinkClass::Nic => net.nic_bw,
                LinkClass::NvLink => net.nvlink_bw,
                LinkClass::Memcpy => net.memcpy_bw,
            };
            t += ph.latency + SimTime::from_secs_f64(ph.bytes as f64 / bw);
        }
        t
    }

    /// Total bytes crossing NIC links (per node), the quantity §3.3 argues
    /// hierarchical communication reduces from `(p-1)M/p` to `(p-k)M/p`.
    pub fn nic_bytes(&self) -> u64 {
        self.phases.iter().filter(|p| p.link == LinkClass::Nic).map(|p| p.bytes).sum()
    }
}

fn frac_bytes(m: u64, num: usize, den: usize) -> u64 {
    ((m as u128 * num as u128) / den as u128) as u64
}

/// Effective per-hop inter-node latency for a ring of `ranks` participants.
///
/// Every ring step waits for the *slowest* of `ranks` concurrent hop
/// transmissions, so the expected per-step latency grows with the ring size
/// (the cloud-straggler effect behind Figure 1's collapse at 16–32 nodes).
/// We model the growth linearly: `α · (1 + ranks/256)`, calibrated so that
/// 64-rank collectives still reproduce the paper's B_all ≈ 11 GB/s while
/// 512-rank collectives degrade the way §5.1.5's ZeRO-3 baseline does.
fn inter_hop(net: &NetParams, ranks: usize) -> SimTime {
    SimTime::from_secs_f64(net.alpha_inter.as_secs_f64() * (1.0 + ranks as f64 / 256.0))
}

/// Cost of a flat (single ring) all-gather of a message of `m` bytes over a
/// contiguous group of `p` ranks with `k` devices per node.
///
/// * `p ≤ k`: the ring stays on NVLink. The node fabric carries
///   `p · (p-1)/p · m = (p-1)·m` bytes.
/// * `p > k`: the ring crosses nodes; the NIC is the bottleneck, carrying
///   `(p-1)/p · m` bytes per node, and every one of the `p-1` steps pays the
///   inter-node hop latency.
pub fn all_gather_flat(p: usize, k: usize, m: u64, net: &NetParams) -> CollectiveCost {
    assert!(p >= 1 && k >= 1);
    if p == 1 {
        return CollectiveCost { phases: vec![] };
    }
    if p <= k {
        CollectiveCost {
            phases: vec![Phase {
                link: LinkClass::NvLink,
                bytes: frac_bytes(m, p - 1, 1),
                latency: net.launch + net.alpha_intra * (p as u64 - 1),
            }],
        }
    } else {
        CollectiveCost {
            phases: vec![Phase {
                link: LinkClass::Nic,
                bytes: frac_bytes(m, p - 1, p),
                latency: net.launch + inter_hop(net, p) * (p as u64 - 1),
            }],
        }
    }
}

/// Cost of the MiCS 3-stage hierarchical all-gather (§3.3) of `m` bytes over
/// a group of `p` ranks spanning `p/k` nodes.
///
/// Stage 1 runs `k` inter-node all-gathers in parallel (one per channel of
/// `p/k` ranks); together they put `(p-k)/p · m` bytes on each node's NIC —
/// the data-volume reduction the paper proves. Stage 2 re-arranges `m/k`
/// bytes through the local copy engine. Stage 3 issues `p/k` *batched*
/// intra-node all-gathers moving `(k-1)·m/k · k = (k-1)·m` bytes per node
/// over NVLink; with the coalesced API the batch pays one launch plus a
/// small per-call overhead instead of a full launch per call.
///
/// Returns `None` when the geometry does not span nodes (use
/// [`all_gather_flat`]).
pub fn all_gather_hierarchical(
    p: usize,
    k: usize,
    m: u64,
    net: &NetParams,
    coalesced: bool,
) -> Option<CollectiveCost> {
    let layout = HierarchicalLayout::new(p, k)?;
    let nodes = layout.nodes();
    let batch_overhead = if coalesced {
        net.launch + net.coalesced_call * (nodes as u64 - 1)
    } else {
        net.launch * nodes as u64
    };
    Some(CollectiveCost {
        phases: vec![
            // Stage 1: k parallel inter-node all-gathers of p/k ranks each —
            // each channel is a *small* ring, so its per-hop latency barely
            // suffers from the straggler effect (the scale advantage §3.3
            // exploits).
            Phase {
                link: LinkClass::Nic,
                bytes: frac_bytes(m, p - k, p),
                latency: net.launch + inter_hop(net, nodes) * (nodes as u64 - 1),
            },
            // Stage 2: local chunk re-arrangement of the m/k gathered bytes.
            Phase {
                link: LinkClass::Memcpy,
                bytes: frac_bytes(m, 1, k),
                latency: SimTime::from_micros(1),
            },
            // Stage 3: p/k batched intra-node all-gathers.
            Phase {
                link: LinkClass::NvLink,
                bytes: frac_bytes(m, k - 1, 1),
                latency: batch_overhead + net.alpha_intra * (k as u64 - 1),
            },
        ],
    })
}

/// Cost of a ring reduce-scatter over `p` ranks (`m` = full message size).
/// Volume-symmetric with all-gather; reduction arithmetic is assumed hidden
/// behind the transfers (true on GPUs).
pub fn reduce_scatter(p: usize, k: usize, m: u64, net: &NetParams) -> CollectiveCost {
    all_gather_flat(p, k, m, net)
}

/// Cost of a ring all-reduce over a group of `p` ranks whose members are
/// laid out with stride `stride` (1 = contiguous partition group, `p_part` =
/// replication group). `k` is devices per node.
///
/// An all-reduce is a reduce-scatter followed by an all-gather: `2(p-1)/p·m`
/// bytes on the bottleneck link and `2(p-1)` hop latencies.
pub fn all_reduce(p: usize, k: usize, stride: usize, m: u64, net: &NetParams) -> CollectiveCost {
    assert!(p >= 1 && k >= 1 && stride >= 1);
    if p == 1 {
        return CollectiveCost { phases: vec![] };
    }
    // The group spans multiple nodes if the span of its members exceeds one
    // node's worth of ranks.
    let span = (p - 1) * stride + 1;
    let crosses_nodes = span > k;
    if crosses_nodes {
        CollectiveCost {
            phases: vec![Phase {
                link: LinkClass::Nic,
                bytes: frac_bytes(m, 2 * (p - 1), p),
                latency: net.launch + inter_hop(net, p) * (2 * (p as u64 - 1)),
            }],
        }
    } else {
        CollectiveCost {
            phases: vec![Phase {
                link: LinkClass::NvLink,
                bytes: frac_bytes(m, 2 * (p - 1), 1),
                latency: net.launch + net.alpha_intra * (2 * (p as u64 - 1)),
            }],
        }
    }
}

/// Cost of a point-to-point transfer of `m` bytes (pipeline-parallel
/// activations between stages).
pub fn p2p(m: u64, inter_node: bool, net: &NetParams) -> CollectiveCost {
    let (link, alpha) = if inter_node {
        (LinkClass::Nic, net.alpha_inter)
    } else {
        (LinkClass::NvLink, net.alpha_intra)
    };
    CollectiveCost { phases: vec![Phase { link, bytes: m, latency: net.launch + alpha }] }
}

/// Cost of a double-binary-tree all-reduce over `p` ranks (`stride`/`k` as
/// in [`all_reduce`]).
///
/// Per the paper's footnote 1 (Chan et al. §7.1.7), tree algorithms bound
/// collective latency with `⌈log₂ p⌉·α` per direction instead of the ring's
/// `2·p·α` — at the price of a far worse bandwidth term: a non-pipelined
/// binary tree moves the full message once per level in each direction,
/// `2·⌈log₂ p⌉·m` bytes on the bottleneck link, which is why rings win for
/// large messages.
pub fn all_reduce_tree(
    p: usize,
    k: usize,
    stride: usize,
    m: u64,
    net: &NetParams,
) -> CollectiveCost {
    assert!(p >= 1 && k >= 1 && stride >= 1);
    if p == 1 {
        return CollectiveCost { phases: vec![] };
    }
    let depth = (usize::BITS - (p - 1).leading_zeros()) as u64; // ⌈log₂ p⌉
    let span = (p - 1) * stride + 1;
    if span > k {
        CollectiveCost {
            phases: vec![Phase {
                link: LinkClass::Nic,
                bytes: 2 * depth * m,
                latency: net.launch + inter_hop(net, p) * (2 * depth),
            }],
        }
    } else {
        CollectiveCost {
            phases: vec![Phase {
                link: LinkClass::NvLink,
                bytes: 2 * depth * m,
                latency: net.launch + net.alpha_intra * (2 * depth),
            }],
        }
    }
}

/// NCCL-style algorithm selection: rings win for large messages (better
/// bandwidth term), trees win for small messages at scale (latency term).
/// Picks whichever the cost model says is faster.
pub fn all_reduce_auto(
    p: usize,
    k: usize,
    stride: usize,
    m: u64,
    net: &NetParams,
) -> CollectiveCost {
    let ring = all_reduce(p, k, stride, m, net);
    let tree = all_reduce_tree(p, k, stride, m, net);
    if tree.serial_time(net) < ring.serial_time(net) {
        tree
    } else {
        ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetParams {
        NetParams {
            nic_bw: 12.5e9,
            nvlink_bw: 8.0 * 135e9,
            memcpy_bw: 700e9,
            alpha_intra: SimTime::from_micros(4),
            alpha_inter: SimTime::from_micros(22),
            launch: SimTime::from_micros(12),
            coalesced_call: SimTime::from_micros(2),
        }
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn trivial_group_costs_nothing() {
        let c = all_gather_flat(1, 8, 128 * MB, &net());
        assert!(c.phases.is_empty());
        assert_eq!(c.serial_time(&net()), SimTime::ZERO);
    }

    #[test]
    fn intra_node_all_gather_uses_nvlink_only() {
        let c = all_gather_flat(8, 8, 128 * MB, &net());
        assert_eq!(c.phases.len(), 1);
        assert_eq!(c.phases[0].link, LinkClass::NvLink);
        assert_eq!(c.phases[0].bytes, 7 * 128 * MB);
        assert_eq!(c.nic_bytes(), 0);
    }

    #[test]
    fn inter_node_all_gather_puts_expected_bytes_on_nic() {
        // (p-1)/p of the message crosses each node's NIC.
        let m = 128 * MB;
        let c = all_gather_flat(16, 8, m, &net());
        assert_eq!(c.phases[0].link, LinkClass::Nic);
        assert_eq!(c.phases[0].bytes, m * 15 / 16);
    }

    #[test]
    fn hierarchical_reduces_nic_volume_by_paper_ratio() {
        // §3.3: inter-node volume shrinks from (p-1)M/p to (p-k)M/p.
        let m = 256 * MB;
        for (p, k) in [(16usize, 8usize), (32, 8), (64, 8)] {
            let flat = all_gather_flat(p, k, m, &net());
            let hier = all_gather_hierarchical(p, k, m, &net(), true).unwrap();
            assert_eq!(flat.nic_bytes(), m * (p as u64 - 1) / p as u64);
            assert_eq!(hier.nic_bytes(), m * (p as u64 - k as u64) / p as u64);
            assert!(hier.nic_bytes() < flat.nic_bytes());
        }
    }

    #[test]
    fn hierarchical_volume_reduction_for_paper_range() {
        // §3.3: for k = 8 and 8 ≤ p ≤ 64, the reduction is 11.1%–46.6%.
        let m = 1024 * MB;
        let n = net();
        let h16 = all_gather_hierarchical(16, 8, m, &n, true).unwrap();
        let f16 = all_gather_flat(16, 8, m, &n);
        let red16 = 1.0 - h16.nic_bytes() as f64 / f16.nic_bytes() as f64;
        assert!((red16 - 0.466).abs() < 0.01, "p=16 reduction {red16}");
        let h64 = all_gather_hierarchical(64, 8, m, &n, true).unwrap();
        let f64_ = all_gather_flat(64, 8, m, &n);
        let red64 = 1.0 - h64.nic_bytes() as f64 / f64_.nic_bytes() as f64;
        assert!((red64 - 0.111).abs() < 0.01, "p=64 reduction {red64}");
    }

    #[test]
    fn hierarchical_faster_than_flat_for_typical_messages() {
        // Fig. 12a: the hierarchical operator beats vanilla all-gather on
        // two p3dn nodes across message sizes.
        let n = net();
        for m in [2 * MB, 16 * MB, 64 * MB, 128 * MB, 256 * MB] {
            let flat = all_gather_flat(16, 8, m, &n).serial_time(&n);
            let hier = all_gather_hierarchical(16, 8, m, &n, true).unwrap().serial_time(&n);
            assert!(hier < flat, "m = {m}: hier {hier} vs flat {flat}");
        }
    }

    #[test]
    fn hierarchical_rejects_intra_node_geometry() {
        assert!(all_gather_hierarchical(8, 8, MB, &net(), true).is_none());
        assert!(all_gather_hierarchical(4, 8, MB, &net(), true).is_none());
    }

    #[test]
    fn coalescing_reduces_stage3_latency() {
        let n = net();
        let coalesced = all_gather_hierarchical(64, 8, 128 * MB, &n, true).unwrap();
        let separate = all_gather_hierarchical(64, 8, 128 * MB, &n, false).unwrap();
        assert!(coalesced.phases[2].latency < separate.phases[2].latency);
    }

    #[test]
    fn all_reduce_volume_is_double_all_gather() {
        let n = net();
        let m = 64 * MB;
        let ag = all_gather_flat(16, 8, m, &n);
        let ar = all_reduce(16, 8, 1, m, &n);
        assert_eq!(ar.nic_bytes(), 2 * ag.nic_bytes());
    }

    #[test]
    fn replication_group_all_reduce_detects_node_span() {
        let n = net();
        // Replication group of 4 members with stride 8 (p=8 partition groups
        // on k=8 nodes): members on distinct nodes → NIC.
        let ar = all_reduce(4, 8, 8, 64 * MB, &n);
        assert_eq!(ar.phases[0].link, LinkClass::Nic);
        // Stride-2 group of 2 inside one node → NVLink.
        let ar = all_reduce(2, 8, 2, 64 * MB, &n);
        assert_eq!(ar.phases[0].link, LinkClass::NvLink);
    }

    #[test]
    fn latency_grows_with_scale() {
        // §2.3: latency has positive correlation with communication scale.
        let n = net();
        let t8: Vec<SimTime> = [16usize, 64, 256]
            .iter()
            .map(|&p| all_gather_flat(p, 8, MB, &n).serial_time(&n))
            .collect();
        assert!(t8[0] < t8[1] && t8[1] < t8[2]);
    }

    #[test]
    fn tree_all_reduce_has_log_latency() {
        let n = net();
        let ring = all_reduce(256, 8, 1, 1 << 20, &n);
        let tree = all_reduce_tree(256, 8, 1, 1 << 20, &n);
        // Tree latency ≈ 2·log₂(256)·α = 16 hops; ring ≈ 2·255 hops.
        assert!(tree.phases[0].latency < ring.phases[0].latency);
        // But the tree moves 2M bytes vs the ring's ~2M·(p-1)/p — the tree
        // has no bandwidth advantage.
        assert!(tree.phases[0].bytes >= ring.phases[0].bytes);
    }

    #[test]
    fn auto_selection_crossover() {
        // Small message at scale → tree; large message → ring.
        let n = net();
        let small = all_reduce_auto(256, 8, 1, 64 << 10, &n);
        let tree = all_reduce_tree(256, 8, 1, 64 << 10, &n);
        assert_eq!(small, tree, "64 KiB over 256 ranks must pick the tree");
        let large = all_reduce_auto(256, 8, 1, 256 << 20, &n);
        let ring = all_reduce(256, 8, 1, 256 << 20, &n);
        assert_eq!(large, ring, "256 MiB must pick the ring");
    }

    #[test]
    fn tree_intra_node_uses_nvlink() {
        let n = net();
        let c = all_reduce_tree(8, 8, 1, 1 << 20, &n);
        assert_eq!(c.phases[0].link, LinkClass::NvLink);
        let c = all_reduce_tree(1, 8, 1, 1 << 20, &n);
        assert!(c.phases.is_empty());
    }

    #[test]
    fn p2p_costs() {
        let n = net();
        let inter = p2p(16 * MB, true, &n).serial_time(&n);
        let intra = p2p(16 * MB, false, &n).serial_time(&n);
        assert!(inter > intra);
    }
}
