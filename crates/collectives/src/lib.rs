//! Collective-communication algorithms for MiCS: chunk-layout math, α–β cost
//! models, and effective-bandwidth estimation.
//!
//! This crate is the shared brain behind both halves of the reproduction:
//!
//! * the **data plane** (`mics-dataplane`) executes the chunk layouts from
//!   [`layout`] on real buffers — including the 3-stage hierarchical
//!   all-gather of paper §3.3 with its stage-2 re-arrangement;
//! * the **simulator executors** (`mics-core`) turn the [`cost`] models into
//!   timed transfer operations on shared NIC/NVLink links.
//!
//! Keeping one source of truth for "which chunk goes where" lets property
//! tests prove the hierarchical algorithm equivalent to a flat all-gather
//! for every valid `(p, k)` geometry, which is exactly the correctness bug
//! class the paper calls out (the `[C0, C2, C1, C3]` wrong layout).

#![warn(missing_docs)]

pub mod bandwidth;
pub mod compress;
pub mod cost;
pub mod dispatch;
pub mod layout;

pub use bandwidth::{algorithm_bandwidth, bus_bandwidth, NetParams};
pub use compress::CompressionModel;
pub use cost::{CollectiveCost, LinkClass, Phase};
pub use dispatch::{WireCollective, WireKind};
pub use layout::HierarchicalLayout;
