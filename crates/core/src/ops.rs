//! Lowering collectives and compute onto the discrete-event simulator.
//!
//! Each device owns three streams, mirroring the CUDA-stream structure of
//! DeepSpeed/MiCS: a **compute** stream, a **gather** lane (parameter
//! all-gathers) and a **reduce** lane (gradient reduce-scatter/all-reduce).
//! A collective is emitted once per *group*: on every participating node,
//! the lowest-ranked member (the node leader) executes the timed phases on
//! that node's shared links; the node's other members wait on the leader's
//! completion event. Devices in symmetric SPMD programs reach collectives at
//! identical virtual times, so this compact encoding preserves timing while
//! letting *cross-collective* contention (e.g. `k` replication-group
//! all-reduces sharing one NIC) emerge from the fluid link model.

use mics_cluster::{ClusterSpec, Fabric, Rank};
use mics_collectives::{CollectiveCost, LinkClass, NetParams};
use mics_simnet::{EventId, Op, Sim, SimTime, StreamId};

/// Which communication stream a collective runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Parameter gathering (forward/backward all-gathers).
    Gather,
    /// Gradient synchronization (reduce-scatter / all-reduce).
    Reduce,
}

/// A materialized cluster: simulator + fabric + per-device streams.
#[derive(Debug)]
pub struct SimCluster {
    /// The event-driven simulator being programmed.
    pub sim: Sim,
    /// Cluster geometry.
    pub spec: ClusterSpec,
    /// Shared links (NICs, NVLink fabrics, copy engines).
    pub fabric: Fabric,
    /// Network parameters for the cost models.
    pub net: NetParams,
    compute: Vec<StreamId>,
    gather: Vec<StreamId>,
    reduce: Vec<StreamId>,
}

/// Fraction of the NIC's clean-network bandwidth that inter-node collectives
/// sustain *while training*: host/PCIe/copy-engine contention with busy
/// compute kernels and bidirectional traffic derate the wire. Calibrated
/// against §2.3's own measurement that ZeRO-3 parameter gathering takes
/// 2.85× the computation time for BERT 10B — the microbenchmarks
/// (`mics-collectives::bandwidth`, Fig. 1 / Fig. 12a) run at the full
/// clean-network rate.
pub const NIC_TRAINING_DERATE: f64 = 0.7;

/// Process name the simulator's timeline is presented under in exported
/// traces: these are *charged* virtual-time spans, as opposed to the
/// minidl backend's measured ones.
pub const SIM_TRACE_PROCESS: &str = "simulator (charged)";

impl SimCluster {
    /// Materialize `spec` into a fresh simulator.
    pub fn new(spec: ClusterSpec) -> Self {
        let mut sim = Sim::new();
        let mut fabric = spec.build_fabric(&mut sim);
        // Replace the NIC links with training-derated ones.
        fabric.nic = (0..spec.nodes)
            .map(|node| {
                let per_node = spec.nic_derate(mics_cluster::NodeId(node));
                sim.add_link(
                    format!("nic-training[{node}]"),
                    spec.instance.nic_bw * NIC_TRAINING_DERATE * per_node,
                )
            })
            .collect();
        let net = NetParams::from_instance(&spec.instance);
        let n = spec.total_devices();
        let mut compute = Vec::with_capacity(n);
        let mut gather = Vec::with_capacity(n);
        let mut reduce = Vec::with_capacity(n);
        for r in 0..n {
            compute.push(sim.add_stream(format!("compute[{r}]")));
            gather.push(sim.add_stream(format!("gather[{r}]")));
            reduce.push(sim.add_stream(format!("reduce[{r}]")));
        }
        SimCluster { sim, spec, fabric, net, compute, gather, reduce }
    }

    fn lane_stream(&self, lane: Lane, rank: Rank) -> StreamId {
        match lane {
            Lane::Gather => self.gather[rank.0],
            Lane::Reduce => self.reduce[rank.0],
        }
    }

    /// Push a compute kernel of `flops` at `sustained_flops` onto the
    /// device's compute stream.
    pub fn compute_kernel(&mut self, rank: Rank, flops: f64, sustained_flops: f64) {
        let duration = SimTime::from_secs_f64(flops / sustained_flops);
        if duration > SimTime::ZERO {
            self.sim.push(self.compute[rank.0], Op::compute(duration));
        }
    }

    /// Push a fixed-duration operation onto the compute stream (optimizer
    /// step, host-side work attributed to the device timeline).
    pub fn compute_for(&mut self, rank: Rank, duration: SimTime) {
        if duration > SimTime::ZERO {
            self.sim.push(self.compute[rank.0], Op::compute(duration));
        }
    }

    /// Make the compute stream wait for `event`.
    pub fn compute_wait(&mut self, rank: Rank, event: EventId) {
        self.sim.push(self.compute[rank.0], Op::WaitEvent(event));
    }

    /// Record a fresh event at the current tail of the compute stream.
    pub fn compute_record(&mut self, rank: Rank) -> EventId {
        let e = self.sim.add_event();
        self.sim.push(self.compute[rank.0], Op::RecordEvent(e));
        e
    }

    /// Record a pre-allocated event at the current tail of the compute
    /// stream (lets callers create the full event table up front).
    pub fn compute_record_into(&mut self, rank: Rank, event: EventId) {
        self.sim.push(self.compute[rank.0], Op::RecordEvent(event));
    }

    /// Allocate an event without attaching it anywhere yet.
    pub fn new_event(&mut self) -> EventId {
        self.sim.add_event()
    }

    /// Make a communication lane wait for `event` (used for prefetch
    /// backpressure and for gating gradient reduction on backward compute).
    pub fn lane_wait(&mut self, lane: Lane, rank: Rank, event: EventId) {
        self.sim.push(self.lane_stream(lane, rank), Op::WaitEvent(event));
    }

    /// Emit one collective over `members` (global ranks, ascending) on
    /// `lane`, paying `host_overhead` of launch/decision time on each node
    /// leader's lane before the wire phases.
    ///
    /// Returns the per-member completion events, parallel to `members`.
    pub fn collective(
        &mut self,
        members: &[Rank],
        lane: Lane,
        cost: &CollectiveCost,
        host_overhead: SimTime,
    ) -> Vec<EventId> {
        debug_assert!(!members.is_empty());
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members must ascend");

        // Trivial collective (single member or empty phase list): complete
        // immediately in stream order.
        if members.len() == 1 || cost.phases.is_empty() {
            return members
                .iter()
                .map(|&m| {
                    let e = self.sim.add_event();
                    self.sim.push(self.lane_stream(lane, m), Op::RecordEvent(e));
                    e
                })
                .collect();
        }

        // Group members by node; the first member on each node leads and
        // executes the timed phases on that node's shared links.
        let mut node_done: Vec<(usize, EventId)> = Vec::new(); // (node, event)
        for &m in members {
            let node = self.spec.node_of(m).0;
            if node_done.iter().any(|&(nd, _)| nd == node) {
                continue;
            }
            let stream = self.lane_stream(lane, m);
            let done = self.sim.add_event();
            node_done.push((node, done));
            if host_overhead > SimTime::ZERO {
                self.sim.push(stream, Op::compute(host_overhead));
            }
            for ph in &cost.phases {
                let link = match ph.link {
                    LinkClass::Nic => self.fabric.nic[node],
                    LinkClass::NvLink => self.fabric.nvlink[node],
                    LinkClass::Memcpy => self.fabric.memcpy[m.0],
                };
                self.sim.push(stream, Op::transfer(link, ph.bytes, ph.latency));
            }
            self.sim.push(stream, Op::RecordEvent(done));
        }
        // A collective completes only when its *slowest* node finishes —
        // essential once nodes are heterogeneous (stragglers). The first
        // member joins all node completions into one group event.
        let group_done = if node_done.len() == 1 {
            node_done[0].1
        } else {
            let leader_stream = self.lane_stream(lane, members[0]);
            for &(_, e) in &node_done {
                self.sim.push(leader_stream, Op::WaitEvent(e));
            }
            let e = self.sim.add_event();
            self.sim.push(leader_stream, Op::RecordEvent(e));
            e
        };
        let mut events = Vec::with_capacity(members.len());
        for (i, &m) in members.iter().enumerate() {
            if i == 0 {
                events.push(group_done);
                continue;
            }
            let stream = self.lane_stream(lane, m);
            self.sim.push(stream, Op::WaitEvent(group_done));
            let mine = self.sim.add_event();
            self.sim.push(stream, Op::RecordEvent(mine));
            events.push(mine);
        }
        events
    }

    /// Record execution spans for chrome-trace export.
    pub fn enable_tracing(&mut self) {
        self.sim.enable_tracing();
    }

    /// Run the programmed iteration and return `(makespan, compute-busy,
    /// comm-busy)` where the busy numbers are summed across devices.
    pub fn run(self) -> (SimTime, SimTime, SimTime) {
        let (makespan, compute, comm, _) = self.run_traced();
        (makespan, compute, comm)
    }

    /// Like [`SimCluster::run`], but also returns the recorded
    /// [`mics_trace::Trace`] of the timeline (empty unless
    /// [`SimCluster::enable_tracing`] was called), with its process
    /// renamed to [`SIM_TRACE_PROCESS`]. Callers render it with the shared
    /// writer ([`mics_trace::Trace::to_json`]) or merge it with measured
    /// timelines first.
    pub fn run_traced(mut self) -> (SimTime, SimTime, SimTime, mics_trace::Trace) {
        let stats = self.sim.run().expect("iteration program must not deadlock");
        let compute_busy: SimTime = self.compute.iter().map(|s| stats.stream_busy[s.0]).sum();
        let comm_busy: SimTime =
            self.gather.iter().chain(self.reduce.iter()).map(|s| stats.stream_busy[s.0]).sum();
        let mut trace = stats.trace;
        trace.rename_process(mics_simnet::SIM_PROCESS, SIM_TRACE_PROCESS);
        (stats.makespan, compute_busy, comm_busy, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mics_cluster::InstanceType;
    use mics_collectives::cost;

    fn cluster(nodes: usize) -> SimCluster {
        SimCluster::new(ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes))
    }

    #[test]
    fn single_member_collective_is_free() {
        let mut sc = cluster(1);
        let c = cost::all_gather_flat(1, 8, 1 << 20, &sc.net);
        let evs = sc.collective(&[Rank(0)], Lane::Gather, &c, SimTime::ZERO);
        assert_eq!(evs.len(), 1);
        let (makespan, _, _) = sc.run();
        assert_eq!(makespan, SimTime::ZERO);
    }

    #[test]
    fn intra_node_collective_takes_cost_model_time() {
        let mut sc = cluster(1);
        let m = 256u64 << 20;
        let c = cost::all_gather_flat(8, 8, m, &sc.net);
        let expect = c.serial_time(&sc.net);
        let members: Vec<Rank> = (0..8).map(Rank).collect();
        sc.collective(&members, Lane::Gather, &c, SimTime::ZERO);
        let (makespan, _, _) = sc.run();
        // The fluid link model rounds completion up to whole nanoseconds.
        assert!(makespan.saturating_sub(expect) <= SimTime::from_nanos(2));
        assert!(expect.saturating_sub(makespan) <= SimTime::from_nanos(2));
    }

    #[test]
    fn two_groups_on_one_node_contend_on_nvlink() {
        // Two partition groups of 4 GPUs inside one node gather at once:
        // the shared NVLink fabric halves each one's bandwidth.
        let m = 256u64 << 20;
        let solo = {
            let mut sc = cluster(1);
            let c = cost::all_gather_flat(4, 8, m, &sc.net);
            sc.collective(&(0..4).map(Rank).collect::<Vec<_>>(), Lane::Gather, &c, SimTime::ZERO);
            sc.run().0
        };
        let contended = {
            let mut sc = cluster(1);
            let c = cost::all_gather_flat(4, 8, m, &sc.net);
            sc.collective(&(0..4).map(Rank).collect::<Vec<_>>(), Lane::Gather, &c, SimTime::ZERO);
            sc.collective(&(4..8).map(Rank).collect::<Vec<_>>(), Lane::Gather, &c, SimTime::ZERO);
            sc.run().0
        };
        assert!(contended.as_secs_f64() > 1.8 * solo.as_secs_f64());
    }

    #[test]
    fn inter_node_collective_pays_training_derated_nic() {
        let mut sc = cluster(2);
        let m = 128u64 << 20;
        let c = cost::all_gather_flat(16, 8, m, &sc.net);
        let members: Vec<Rank> = (0..16).map(Rank).collect();
        let bytes = c.phases[0].bytes;
        let expect = c.phases[0].latency
            + SimTime::from_secs_f64(bytes as f64 / (sc.net.nic_bw * NIC_TRAINING_DERATE));
        let clean = c.serial_time(&sc.net);
        sc.collective(&members, Lane::Gather, &c, SimTime::ZERO);
        let (makespan, _, _) = sc.run();
        assert!(makespan.saturating_sub(expect) <= SimTime::from_nanos(2));
        assert!(expect.saturating_sub(makespan) <= SimTime::from_nanos(2));
        // Derated below the clean-network serial time.
        assert!(makespan > clean);
    }

    #[test]
    fn host_overhead_delays_completion() {
        let m = 16u64 << 20;
        let members: Vec<Rank> = (0..8).map(Rank).collect();
        let mut sc = cluster(1);
        let c = cost::all_gather_flat(8, 8, m, &sc.net);
        sc.collective(&members, Lane::Gather, &c, SimTime::from_micros(500));
        let (with_overhead, _, _) = sc.run();
        let mut sc = cluster(1);
        let c = cost::all_gather_flat(8, 8, m, &sc.net);
        sc.collective(&members, Lane::Gather, &c, SimTime::ZERO);
        let (without, _, _) = sc.run();
        assert_eq!(with_overhead, without + SimTime::from_micros(500));
    }

    #[test]
    fn compute_and_comm_overlap_via_events() {
        let mut sc = cluster(1);
        let m = 128u64 << 20;
        let c = cost::all_gather_flat(8, 8, m, &sc.net);
        let members: Vec<Rank> = (0..8).map(Rank).collect();
        let gather_time = c.serial_time(&sc.net);
        let evs = sc.collective(&members, Lane::Gather, &c, SimTime::ZERO);
        // Every device computes 2× the gather time concurrently, then a
        // dependent kernel.
        for (i, &r) in members.iter().enumerate() {
            sc.compute_for(r, gather_time * 2);
            sc.compute_wait(r, evs[i]);
            sc.compute_for(r, SimTime::from_millis(1));
        }
        let (makespan, _, _) = sc.run();
        assert_eq!(makespan, gather_time * 2 + SimTime::from_millis(1));
    }

    #[test]
    fn replication_style_collectives_share_nic() {
        // k=8 per-device all-reduces with stride 8 (one per local rank)
        // across 2 nodes share each node's NIC: total time ≈ 8× one alone.
        let m = 32u64 << 20;
        let one = {
            let mut sc = cluster(2);
            let c = cost::all_reduce(2, 8, 8, m, &sc.net);
            sc.collective(&[Rank(0), Rank(8)], Lane::Reduce, &c, SimTime::ZERO);
            sc.run().0
        };
        let eight = {
            let mut sc = cluster(2);
            let c = cost::all_reduce(2, 8, 8, m, &sc.net);
            for local in 0..8 {
                sc.collective(&[Rank(local), Rank(8 + local)], Lane::Reduce, &c, SimTime::ZERO);
            }
            sc.run().0
        };
        let ratio = eight.as_secs_f64() / one.as_secs_f64();
        assert!((6.0..9.0).contains(&ratio), "ratio {ratio}");
    }
}
