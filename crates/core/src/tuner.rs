//! Automatic configuration search (paper §7: "We leave the configuration
//! search for the best performance as our future work").
//!
//! The search space is small and structured: partition group sizes are
//! node-aligned powers of two between one node's worth of devices and the
//! cluster, times the hierarchical-communication toggle. The tuner prunes
//! with the memory model first (OOM candidates cost nothing) and then ranks
//! the survivors by simulated throughput — a few dozen deterministic
//! simulations at most.

use crate::config::{MicsConfig, Strategy};
use crate::dp::{simulate_dp_view, JobView};
use crate::memory::{check_memory, OomError};
use crate::report::RunReport;
use mics_cluster::ClusterSpec;
use mics_compress::CompressionConfig;
use mics_model::WorkloadSpec;

/// One evaluated candidate configuration.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The configuration tried.
    pub config: MicsConfig,
    /// Its simulation result (`Err` = did not fit).
    pub outcome: Result<RunReport, OomError>,
}

impl Candidate {
    /// Samples/sec, or 0 for OOM candidates.
    pub fn throughput(&self) -> f64 {
        self.outcome.as_ref().map(|r| r.samples_per_sec).unwrap_or(0.0)
    }
}

/// Result of a tuning run: the winner plus the full exploration record.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The best feasible configuration.
    pub best: MicsConfig,
    /// Its report.
    pub report: RunReport,
    /// Every candidate evaluated, in exploration order.
    pub explored: Vec<Candidate>,
}

/// Node-aligned candidate partition sizes for a cluster: `k, 2k, 4k, …, n`,
/// plus the sub-node powers of two (`k/2, k/4, …, 1`) that still divide
/// the cluster size.
pub fn candidate_partition_sizes(cluster: &ClusterSpec) -> Vec<usize> {
    let n = cluster.total_devices();
    let k = cluster.devices_per_node();
    let mut sizes = Vec::new();
    let mut p = 1;
    while p <= n {
        let aligned = p % k == 0 || k.is_multiple_of(p);
        if aligned && n.is_multiple_of(p) {
            sizes.push(p);
        }
        p *= 2;
    }
    // The whole cluster (ZeRO-3 degenerate case) is always a candidate,
    // even when n is not a power of two.
    if sizes.last() != Some(&n) {
        sizes.push(n);
    }
    sizes
}

/// Find the fastest feasible MiCS configuration for `workload` on
/// `cluster` with `accum_steps` gradient accumulation.
///
/// Returns `Err` with the smallest candidate's OOM record when *nothing*
/// fits (the model is simply too large for the cluster).
///
/// ```
/// use mics_cluster::{ClusterSpec, InstanceType};
/// use mics_model::TransformerConfig;
/// let cluster = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 4);
/// let result =
///     mics_core::tune(&TransformerConfig::bert_10b().workload(8), &cluster, 4).unwrap();
/// // Recovers the paper's heuristic: smallest group that fits (one node).
/// assert_eq!(result.best.partition_size, 8);
/// ```
pub fn tune(
    workload: &WorkloadSpec,
    cluster: &ClusterSpec,
    accum_steps: usize,
) -> Result<TuneResult, OomError> {
    tune_with_compression(workload, cluster, accum_steps, &[None])
}

/// Like [`tune`], additionally sweeping the given quantized-collective
/// options (use `&[None]` for the full-precision search, or e.g.
/// `&[None, Some(CompressionConfig::both(QuantScheme::int8()))]` to let the
/// tuner decide whether compression pays off on this cluster).
pub fn tune_with_compression(
    workload: &WorkloadSpec,
    cluster: &ClusterSpec,
    accum_steps: usize,
    compression_options: &[Option<CompressionConfig>],
) -> Result<TuneResult, OomError> {
    let mut explored = Vec::new();
    let mut best: Option<(MicsConfig, RunReport)> = None;
    let mut first_oom: Option<OomError> = None;

    for p in candidate_partition_sizes(cluster) {
        for hierarchical in [true, false] {
            let spans_nodes = p > cluster.devices_per_node();
            if hierarchical && !spans_nodes {
                continue; // hierarchical comm is a no-op for intra-node groups
            }
            for &compression in compression_options {
                let mut config = MicsConfig::paper_defaults(p);
                config.hierarchical_allgather = hierarchical;
                config.compression = compression;
                // The strategy is built once per candidate and borrowed from
                // there on — no workload/cluster clones on this hot path.
                let strategy = Strategy::Mics(config.clone());
                // Cheap memory pre-check before paying for a simulation.
                let plan = strategy.plan(cluster.total_devices());
                if let Err(e) = check_memory(workload, cluster, &plan, "tuner") {
                    if first_oom.is_none() {
                        first_oom = Some(e.clone());
                    }
                    explored.push(Candidate { config, outcome: Err(e) });
                    continue;
                }
                let outcome = simulate_dp_view(JobView {
                    workload,
                    cluster,
                    strategy: &strategy,
                    accum_steps,
                });
                if let Ok(r) = &outcome {
                    let better =
                        best.as_ref().is_none_or(|(_, b)| r.samples_per_sec > b.samples_per_sec);
                    if better {
                        best = Some((config.clone(), r.clone()));
                    }
                }
                explored.push(Candidate { config, outcome });
            }
        }
    }

    match best {
        Some((best, report)) => Ok(TuneResult { best, report, explored }),
        None => Err(first_oom.expect("no candidates at all implies an OOM record")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mics_cluster::InstanceType;
    use mics_model::TransformerConfig;

    fn v100(nodes: usize) -> ClusterSpec {
        ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes)
    }

    #[test]
    fn candidate_sizes_are_aligned_divisors() {
        let sizes = candidate_partition_sizes(&v100(4));
        assert_eq!(sizes, vec![1, 2, 4, 8, 16, 32]);
        let sizes = candidate_partition_sizes(&v100(3));
        // n = 24: powers of two dividing 24 with node alignment, plus the
        // whole cluster.
        assert_eq!(sizes, vec![1, 2, 4, 8, 24]);
    }

    #[test]
    fn tuner_picks_smallest_fitting_group_for_bert10b() {
        // §5.1.1's heuristic should fall out of the search: BERT 10B on
        // 64 GPUs is fastest with 8-GPU (single-node) partition groups.
        let result = tune(&TransformerConfig::bert_10b().workload(8), &v100(8), 4).unwrap();
        assert_eq!(result.best.partition_size, 8);
        assert!(result.report.samples_per_sec > 0.0);
        // The exploration record contains both feasible and (for p too
        // small) infeasible candidates.
        assert!(result.explored.iter().any(|c| c.outcome.is_err()));
        assert!(result.explored.len() >= 6);
    }

    #[test]
    fn tuner_respects_memory_for_bert50b() {
        // 50B needs 8 nodes; the tuner must not pick anything smaller.
        let result = tune(&TransformerConfig::bert_50b().workload(8), &v100(8), 4).unwrap();
        assert_eq!(result.best.partition_size, 64);
    }

    #[test]
    fn tuner_reports_oom_when_nothing_fits() {
        // 100B cannot fit on two V100 nodes no matter the configuration.
        let err =
            tune(&TransformerConfig::proprietary_100b().workload(8), &v100(2), 4).unwrap_err();
        assert!(err.required > err.available);
    }

    #[test]
    fn tuner_adopts_compression_when_it_wins() {
        use mics_compress::{CompressionConfig, QuantScheme};
        // BERT 15B forces 2-node partition groups: inter-node gathers
        // dominate and int8 wires win, so a compression-aware search must
        // pick the quantized candidate (and explore both).
        let options = [None, Some(CompressionConfig::both(QuantScheme::int8()))];
        let result = tune_with_compression(
            &TransformerConfig::bert_15b().workload(8),
            &v100(4),
            4,
            &options,
        )
        .unwrap();
        assert!(result.best.compression.is_some(), "winner: {:?}", result.best);
        assert!(result.explored.iter().any(|c| c.config.compression.is_none()));
        // And plain tune() is exactly the None-only search.
        let plain = tune(&TransformerConfig::bert_15b().workload(8), &v100(4), 4).unwrap();
        assert!(plain.best.compression.is_none());
        assert!(result.report.samples_per_sec >= plain.report.samples_per_sec);
    }

    #[test]
    fn tuner_prefers_hierarchical_for_multi_node_groups() {
        // BERT 15B (min group = 2 nodes): the winner must have the
        // hierarchical all-gather enabled.
        let result = tune(&TransformerConfig::bert_15b().workload(8), &v100(4), 4).unwrap();
        assert_eq!(result.best.partition_size, 16);
        assert!(result.best.hierarchical_allgather);
        // And the explored set contains the non-hierarchical variant with
        // strictly lower throughput.
        let without = result
            .explored
            .iter()
            .find(|c| c.config.partition_size == 16 && !c.config.hierarchical_allgather)
            .expect("variant must have been explored");
        assert!(without.throughput() < result.report.samples_per_sec);
    }
}
