//! Strategy configuration: MiCS knobs and the baseline zoo.

use crate::json::{Json, ToJson};
use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
use mics_simnet::SimTime;

/// Which data-parallel system to emulate.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Classic data parallelism (PyTorch-DDP-like): full model states on
    /// every device, boundary all-reduce.
    Ddp,
    /// DeepSpeed ZeRO at a given stage, with DeepSpeed's default behaviours
    /// (coarse-grained stream synchronization, on-the-fly fetch decisions,
    /// dynamic allocator — the §4 baseline).
    Zero(ZeroStage),
    /// ZeRO-3 with ZeRO++-style quantized collectives (qwZ/qgZ): identical
    /// execution plan to [`Strategy::Zero`] at stage 3, but parameter
    /// gathers and/or gradient reductions travel compressed.
    ZeroCompressed(CompressionConfig),
    /// MiCS (this paper).
    Mics(MicsConfig),
}

/// ZeRO memory-optimization stages (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroStage {
    /// Optimizer states partitioned across all devices.
    One,
    /// Gradients + optimizer states partitioned.
    Two,
    /// Parameters, gradients and optimizer states all partitioned.
    Three,
}

/// MiCS configuration: the three design components of §3 plus the §4
/// implementation optimizations, each independently switchable so the
/// ablation experiments (§5.2, §5.3) are plain parameter sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct MicsConfig {
    /// Partition group size `p` (devices sharing one model-state replica).
    pub partition_size: usize,
    /// §3.3 hierarchical all-gather for groups spanning multiple nodes.
    pub hierarchical_allgather: bool,
    /// §3.4 2-hop gradient synchronization (off = the "alternative
    /// schedule": per-micro-step all-reduce over all devices).
    pub two_hop_sync: bool,
    /// §4 fine-grained `wait_event`/`wait_stream` synchronization enabling
    /// deep compute/communication overlap (off = coarse device sync).
    pub fine_grained_sync: bool,
    /// §4 precomputed & cached fetch/release decisions (off = on-the-fly
    /// decision making with its per-operation bubbles).
    pub cached_decisions: bool,
    /// §4 coalesced communication APIs for batched small collectives.
    pub coalesced_comm: bool,
    /// §4 pre-allocated contiguous memory pools (off = dynamic allocator
    /// with fragmentation overhead).
    pub arena_memory: bool,
    /// ZeRO++-style quantized collectives (`None` = full-precision wire, the
    /// paper's configuration).
    pub compression: Option<CompressionConfig>,
}

impl MicsConfig {
    /// The full MiCS system as evaluated in §5, with a given partition
    /// group size.
    pub fn paper_defaults(partition_size: usize) -> Self {
        MicsConfig {
            partition_size,
            hierarchical_allgather: true,
            two_hop_sync: true,
            fine_grained_sync: true,
            cached_decisions: true,
            coalesced_comm: true,
            arena_memory: true,
            compression: None,
        }
    }

    /// The full MiCS system with quantized collectives layered on top.
    pub fn compressed(partition_size: usize, compression: CompressionConfig) -> Self {
        MicsConfig { compression: Some(compression), ..Self::paper_defaults(partition_size) }
    }

    /// "MiCS (ZeRO-3)" from §5.3 / Figure 14: partition over all `n`
    /// devices and disable the §3 design components (scale-aware
    /// partitioning, hierarchical communication, 2-hop has no effect at
    /// p = n) but keep the §4 implementation optimizations — isolating
    /// §4 from §3.
    pub fn zero3_with_impl_opts(n: usize) -> Self {
        MicsConfig { partition_size: n, hierarchical_allgather: false, ..Self::paper_defaults(n) }
    }

    /// Decode the [`ToJson`] encoding (`None` on shape mismatch).
    pub fn from_json(doc: &Json) -> Option<Self> {
        Some(MicsConfig {
            partition_size: doc.get("partition_size")?.as_num()? as usize,
            hierarchical_allgather: doc.get("hierarchical_allgather")? == &Json::Bool(true),
            two_hop_sync: doc.get("two_hop_sync")? == &Json::Bool(true),
            fine_grained_sync: doc.get("fine_grained_sync")? == &Json::Bool(true),
            cached_decisions: doc.get("cached_decisions")? == &Json::Bool(true),
            coalesced_comm: doc.get("coalesced_comm")? == &Json::Bool(true),
            arena_memory: doc.get("arena_memory")? == &Json::Bool(true),
            compression: match doc.get("compression")? {
                Json::Null => None,
                c => Some(compression_from_json(c)?),
            },
        })
    }
}

impl ToJson for MicsConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("partition_size", Json::Num(self.partition_size as f64)),
            ("hierarchical_allgather", Json::Bool(self.hierarchical_allgather)),
            ("two_hop_sync", Json::Bool(self.two_hop_sync)),
            ("fine_grained_sync", Json::Bool(self.fine_grained_sync)),
            ("cached_decisions", Json::Bool(self.cached_decisions)),
            ("coalesced_comm", Json::Bool(self.coalesced_comm)),
            ("arena_memory", Json::Bool(self.arena_memory)),
            (
                "compression",
                match &self.compression {
                    None => Json::Null,
                    Some(c) => c.to_json(),
                },
            ),
        ])
    }
}

impl ToJson for CompressionConfig {
    fn to_json(&self) -> Json {
        let (scheme, block) = match self.scheme {
            QuantScheme::F16 => ("f16", Json::Null),
            QuantScheme::Int8 { block } => ("int8", Json::Num(block as f64)),
            QuantScheme::Int4 { block } => ("int4", Json::Num(block as f64)),
        };
        Json::obj([
            ("scheme", Json::from(scheme)),
            ("block", block),
            ("weights", Json::Bool(self.weights)),
            ("grads", Json::Bool(self.grads)),
            (
                "scope",
                Json::from(match self.scope {
                    CompressionScope::IntraGroupOnly => "intra_group",
                    CompressionScope::Everywhere => "everywhere",
                }),
            ),
        ])
    }
}

/// Decode the [`ToJson`] encoding of a [`CompressionConfig`].
pub fn compression_from_json(doc: &Json) -> Option<CompressionConfig> {
    let block = || doc.get("block").and_then(Json::as_num).map(|b| b as usize);
    let scheme = match doc.get("scheme")?.as_str()? {
        "f16" => QuantScheme::F16,
        "int8" => QuantScheme::Int8 { block: block()? },
        "int4" => QuantScheme::Int4 { block: block()? },
        _ => return None,
    };
    let scope = match doc.get("scope")?.as_str()? {
        "intra_group" => CompressionScope::IntraGroupOnly,
        "everywhere" => CompressionScope::Everywhere,
        _ => return None,
    };
    Some(CompressionConfig {
        scheme,
        weights: doc.get("weights")? == &Json::Bool(true),
        grads: doc.get("grads")? == &Json::Bool(true),
        scope,
    })
}

/// Resolved execution knobs shared by every DP strategy, derived from
/// [`Strategy`] for a cluster of `n` devices.
#[derive(Debug, Clone, Copy)]
pub struct DpPlan {
    /// Shard count for parameters (1 = fully replicated).
    pub p_params: usize,
    /// Shard count for gradients.
    pub p_grads: usize,
    /// Shard count for optimizer states.
    pub p_opt: usize,
    /// Per-micro-step gradient handling.
    pub micro_sync: MicroSync,
    /// Use the hierarchical all-gather for parameter gathering when the
    /// partition group spans nodes.
    pub hierarchical: bool,
    /// Comm-stream lookahead in layers (0 = coarse sync, no overlap).
    pub prefetch_depth: usize,
    /// Host-side think time before each collective launch.
    pub decision_overhead: SimTime,
    /// Batched small collectives pay one launch instead of many.
    pub coalesced: bool,
    /// Arena memory (affects the fragmentation factor of the memory model).
    pub arena_memory: bool,
    /// Quantized-collective configuration (`None` = fp32/fp16 wire).
    pub compression: Option<CompressionConfig>,
}

/// Gradient synchronization performed inside each micro-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroSync {
    /// Accumulate locally; all synchronization happens at the boundary
    /// (DDP, ZeRO-1, ZeRO-2).
    LocalAccumulate,
    /// All-reduce over **all** devices every micro-step, then keep own
    /// shard (DeepSpeed ZeRO-3's default; §3.4's "alternative schedule").
    GlobalAllReduce,
    /// Reduce-scatter within the partition group every micro-step; the
    /// cross-replication-group all-reduce waits for the boundary (MiCS
    /// 2-hop, §3.4).
    PartitionReduceScatter,
}

impl Strategy {
    /// Resolve to execution knobs for a cluster of `n` devices.
    ///
    /// # Panics
    /// Panics if a MiCS partition size does not divide `n`.
    pub fn plan(&self, n: usize) -> DpPlan {
        // Calibrated host-side overheads: DeepSpeed's on-the-fly
        // fetch/release decision making (Python control plane) versus
        // MiCS's precomputed schedule (§4 "precomputing and caching the
        // decisions").
        let slow_host = SimTime::from_micros(150);
        let fast_host = SimTime::from_micros(15);
        match self {
            Strategy::Ddp => DpPlan {
                p_params: 1,
                p_grads: 1,
                p_opt: 1,
                micro_sync: MicroSync::LocalAccumulate,
                hierarchical: false,
                prefetch_depth: 2,
                decision_overhead: fast_host,
                coalesced: false,
                arena_memory: false,
                compression: None,
            },
            Strategy::Zero(stage) => {
                let (p_params, p_grads, p_opt, micro) = match stage {
                    ZeroStage::One => (1, 1, n, MicroSync::LocalAccumulate),
                    ZeroStage::Two => (1, n, n, MicroSync::LocalAccumulate),
                    ZeroStage::Three => (n, n, n, MicroSync::GlobalAllReduce),
                };
                DpPlan {
                    p_params,
                    p_grads,
                    p_opt,
                    micro_sync: micro,
                    hierarchical: false,
                    // Coarse device/stream synchronization limits the
                    // communication lane to one bucket of lookahead.
                    prefetch_depth: 1,
                    decision_overhead: slow_host,
                    coalesced: false,
                    arena_memory: false,
                    compression: None,
                }
            }
            Strategy::ZeroCompressed(c) => {
                let mut plan = Strategy::Zero(ZeroStage::Three).plan(n);
                plan.compression = Some(*c);
                plan
            }
            Strategy::Mics(cfg) => {
                assert!(
                    cfg.partition_size > 0 && n.is_multiple_of(cfg.partition_size),
                    "partition size {} must divide cluster size {n}",
                    cfg.partition_size
                );
                DpPlan {
                    p_params: cfg.partition_size,
                    p_grads: cfg.partition_size,
                    p_opt: cfg.partition_size,
                    micro_sync: if cfg.two_hop_sync {
                        MicroSync::PartitionReduceScatter
                    } else {
                        MicroSync::GlobalAllReduce
                    },
                    hierarchical: cfg.hierarchical_allgather,
                    prefetch_depth: if cfg.fine_grained_sync { 2 } else { 1 },
                    decision_overhead: if cfg.cached_decisions { fast_host } else { slow_host },
                    coalesced: cfg.coalesced_comm,
                    arena_memory: cfg.arena_memory,
                    compression: cfg.compression,
                }
            }
        }
    }

    /// Parse the CLI/wire strategy grammar: `ddp`, `zero1`, `zero2`,
    /// `zero3`, or `mics:<p>` (paper-default MiCS with partition size `p`).
    /// Shared by `mics-sim --strategy` and the planner service so both
    /// surfaces accept exactly the same spellings.
    pub fn parse(spec: &str) -> Result<Strategy, String> {
        match spec {
            "ddp" => Ok(Strategy::Ddp),
            "zero1" => Ok(Strategy::Zero(ZeroStage::One)),
            "zero2" => Ok(Strategy::Zero(ZeroStage::Two)),
            "zero3" => Ok(Strategy::Zero(ZeroStage::Three)),
            s if s.starts_with("mics:") => {
                let p: usize = s["mics:".len()..]
                    .parse()
                    .map_err(|_| format!("bad partition size in '{s}'"))?;
                Ok(Strategy::Mics(MicsConfig::paper_defaults(p)))
            }
            other => Err(format!(
                "unknown strategy '{other}' (expected mics:<p>, zero1, zero2, zero3, or ddp)"
            )),
        }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            Strategy::Ddp => "DDP".into(),
            Strategy::Zero(ZeroStage::One) => "ZeRO-1".into(),
            Strategy::Zero(ZeroStage::Two) => "ZeRO-2".into(),
            Strategy::Zero(ZeroStage::Three) => "ZeRO-3".into(),
            Strategy::ZeroCompressed(c) => format!("ZeRO-3+{}", c.label()),
            Strategy::Mics(c) => match &c.compression {
                Some(q) => format!("MiCS(p={})+{}", c.partition_size, q.label()),
                None => format!("MiCS(p={})", c.partition_size),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stage_sharding_progression() {
        let n = 64;
        let z1 = Strategy::Zero(ZeroStage::One).plan(n);
        let z2 = Strategy::Zero(ZeroStage::Two).plan(n);
        let z3 = Strategy::Zero(ZeroStage::Three).plan(n);
        assert_eq!((z1.p_params, z1.p_grads, z1.p_opt), (1, 1, 64));
        assert_eq!((z2.p_params, z2.p_grads, z2.p_opt), (1, 64, 64));
        assert_eq!((z3.p_params, z3.p_grads, z3.p_opt), (64, 64, 64));
    }

    #[test]
    fn mics_plan_reflects_knobs() {
        let cfg = MicsConfig::paper_defaults(8);
        let plan = Strategy::Mics(cfg).plan(64);
        assert_eq!(plan.p_params, 8);
        assert_eq!(plan.micro_sync, MicroSync::PartitionReduceScatter);
        assert!(plan.hierarchical);
        assert!(plan.prefetch_depth > 0);

        let mut no2hop = MicsConfig::paper_defaults(8);
        no2hop.two_hop_sync = false;
        let plan = Strategy::Mics(no2hop).plan(64);
        assert_eq!(plan.micro_sync, MicroSync::GlobalAllReduce);
    }

    #[test]
    fn deepspeed_baseline_is_coarse_and_slow_host() {
        let z3 = Strategy::Zero(ZeroStage::Three).plan(16);
        let mics = Strategy::Mics(MicsConfig::paper_defaults(16)).plan(16);
        assert!(z3.prefetch_depth < mics.prefetch_depth);
        assert!(z3.decision_overhead > mics.decision_overhead);
        assert!(!z3.arena_memory && mics.arena_memory);
    }

    #[test]
    fn mics_zero3_mode_partitions_over_cluster() {
        let cfg = MicsConfig::zero3_with_impl_opts(128);
        assert_eq!(cfg.partition_size, 128);
        assert!(cfg.fine_grained_sync && cfg.cached_decisions);
    }

    #[test]
    #[should_panic(expected = "must divide cluster size")]
    fn invalid_partition_size_panics() {
        let _ = Strategy::Mics(MicsConfig::paper_defaults(12)).plan(64);
    }

    #[test]
    fn labels() {
        assert_eq!(Strategy::Ddp.label(), "DDP");
        assert_eq!(Strategy::Zero(ZeroStage::Three).label(), "ZeRO-3");
        assert_eq!(Strategy::Mics(MicsConfig::paper_defaults(16)).label(), "MiCS(p=16)");
    }

    #[test]
    fn mics_config_json_round_trips() {
        let plain = MicsConfig::paper_defaults(8);
        assert_eq!(MicsConfig::from_json(&plain.to_json()), Some(plain.clone()));
        let mut quantized =
            MicsConfig::compressed(16, CompressionConfig::both(QuantScheme::Int4 { block: 64 }));
        quantized.two_hop_sync = false;
        assert_eq!(MicsConfig::from_json(&quantized.to_json()), Some(quantized));
        assert_eq!(MicsConfig::from_json(&Json::Null), None);
    }

    #[test]
    fn parse_round_trips_the_cli_grammar() {
        assert_eq!(Strategy::parse("ddp").unwrap(), Strategy::Ddp);
        assert_eq!(Strategy::parse("zero1").unwrap(), Strategy::Zero(ZeroStage::One));
        assert_eq!(Strategy::parse("zero3").unwrap(), Strategy::Zero(ZeroStage::Three));
        assert_eq!(
            Strategy::parse("mics:16").unwrap(),
            Strategy::Mics(MicsConfig::paper_defaults(16))
        );
        assert!(Strategy::parse("mics:x").is_err());
        assert!(Strategy::parse("zero9").is_err());
    }

    #[test]
    fn compression_knobs_flow_into_plan_and_label() {
        use mics_compress::{CompressionConfig, QuantScheme};
        let c = CompressionConfig::both(QuantScheme::int8());
        let zq = Strategy::ZeroCompressed(c);
        assert_eq!(zq.label(), "ZeRO-3+int8/128·wg");
        let plan = zq.plan(16);
        // Identical plan to ZeRO-3 except for the compressed wire.
        let z3 = Strategy::Zero(ZeroStage::Three).plan(16);
        assert_eq!((plan.p_params, plan.p_grads, plan.p_opt), (16, 16, 16));
        assert_eq!(plan.micro_sync, z3.micro_sync);
        assert_eq!(plan.compression, Some(c));
        assert_eq!(z3.compression, None);

        let mics = Strategy::Mics(MicsConfig::compressed(8, c));
        assert_eq!(mics.label(), "MiCS(p=8)+int8/128·wg");
        assert_eq!(mics.plan(64).compression, Some(c));
        assert_eq!(Strategy::Mics(MicsConfig::paper_defaults(8)).plan(64).compression, None);
    }
}
