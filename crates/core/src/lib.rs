//! `mics-core` — the paper's contribution: the MiCS training executor, its
//! DeepSpeed ZeRO / DDP baselines, and a Megatron-LM-3D comparator, all
//! running on the deterministic cluster simulator.
//!
//! # Architecture
//!
//! A [`TrainingJob`] pairs a workload (from `mics-model`), a cluster (from
//! `mics-cluster`) and a [`Strategy`]. [`simulate`] first runs the §4-style
//! memory model ([`memory::MemoryEstimate`]) — jobs that do not fit report
//! OOM exactly like the "×" marks in the paper's figures — then lowers one
//! training iteration (s micro-steps plus the gradient-accumulation
//! boundary) into stream programs on the discrete-event simulator and
//! returns a [`report::RunReport`] with iteration time, throughput and
//! communication/computation breakdowns.
//!
//! The three MiCS design components map to config knobs on
//! [`MicsConfig`]:
//!
//! * scale-aware model partitioning (§3.2) — `partition_size`;
//! * hierarchical communication (§3.3) — `hierarchical_allgather`;
//! * 2-hop gradient synchronization (§3.4) — `two_hop_sync`;
//!
//! and the §4 implementation optimizations to `fine_grained_sync`,
//! `cached_decisions`, `coalesced_comm`, and `arena_memory`, so every
//! ablation figure of §5.2–§5.3 is a configuration sweep.
//!
//! # Example
//!
//! ```
//! use mics_core::{simulate, MicsConfig, Strategy, TrainingJob};
//! use mics_cluster::{ClusterSpec, InstanceType};
//! use mics_model::TransformerConfig;
//!
//! let cluster = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2);
//! let job = TrainingJob {
//!     workload: TransformerConfig::bert_10b().workload(8),
//!     cluster,
//!     strategy: Strategy::Mics(MicsConfig::paper_defaults(8)),
//!     accum_steps: 4,
//! };
//! let report = simulate(&job).expect("fits in memory");
//! assert!(report.samples_per_sec > 0.0);
//! ```

#![warn(missing_docs)]

pub mod canonical;
pub mod config;
pub mod dp;
pub mod json;
pub mod megatron;
pub mod memory;
pub mod ops;
pub mod recovery;
pub mod report;
pub mod schedule;
pub mod tuner;

pub use canonical::{Canonical, CanonicalHasher, CanonicalKey};
pub use config::{MicsConfig, Strategy, ZeroStage};
pub use dp::{dp_pipeline_program, dp_program, simulate_dp_pipeline, simulate_dp_traced, JobView};
pub use json::{Json, ToJson};
pub use megatron::{simulate_megatron, MegatronConfig, MegatronReport};
pub use memory::{MemoryEstimate, OomError};
pub use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
pub use recovery::{
    poisson_failures, policy_for, recovery_time, simulate_elastic, simulate_with_failures,
    spot_plan, ElasticReport, RecoveryConfig, RecoveryPolicy, RecoveryReport, RecoveryTime,
    SpotPolicy,
};
pub use report::RunReport;
pub use schedule::{
    apply_prefetch, emit_pipeline, emit_step, execute_on_sim, reshape, Geometry, GroupRef, OpKind,
    Pass, PipelineSpec, ScheduleOp, ScheduleSpec, StepProgram, WireOp,
};
pub use tuner::{candidate_partition_sizes, tune, tune_with_compression, Candidate, TuneResult};

use mics_cluster::ClusterSpec;
use mics_model::WorkloadSpec;

/// A complete description of one training job to simulate.
#[derive(Debug, Clone)]
pub struct TrainingJob {
    /// The model, lowered for a specific micro-batch size.
    pub workload: WorkloadSpec,
    /// The cluster to run on.
    pub cluster: ClusterSpec,
    /// The parallelization strategy.
    pub strategy: Strategy,
    /// Micro-steps per iteration (`s`, gradient accumulation depth).
    pub accum_steps: usize,
}

impl TrainingJob {
    /// Global samples consumed per iteration
    /// (`devices × micro_batch × accum_steps`).
    pub fn samples_per_iteration(&self) -> usize {
        self.cluster.total_devices() * self.workload.micro_batch * self.accum_steps
    }

    /// Borrow this job as a [`JobView`] — the allocation-free form the
    /// tuner and planner hot paths simulate from.
    pub fn view(&self) -> JobView<'_> {
        JobView {
            workload: &self.workload,
            cluster: &self.cluster,
            strategy: &self.strategy,
            accum_steps: self.accum_steps,
        }
    }
}

/// Simulate one training iteration of `job`.
///
/// Returns [`OomError`] when the memory model says the job cannot fit — the
/// simulated equivalent of the paper's out-of-memory "×" marks. MiCS jobs
/// with `hierarchical_allgather` that fit only without the hierarchical
/// staging buffers are automatically downgraded (the paper does exactly this
/// for BERT 20B on 16 GPUs, §5.1.1) and the report notes it.
pub fn simulate(job: &TrainingJob) -> Result<RunReport, OomError> {
    dp::simulate_dp(job)
}
