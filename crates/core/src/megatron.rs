//! Megatron-LM-3D comparator (paper §5.1.3, Table 2, Figure 10a).
//!
//! Megatron-LM-3D combines tensor parallelism (TP), pipeline parallelism
//! (PP) and data parallelism (DP). Following the paper's tuning rules, TP
//! stays within a node (≤ 8) and the 1F1B pipeline schedule is used. The
//! model here is analytic rather than event-driven — pipeline timing has a
//! well-known closed form — but draws its communication terms from the same
//! α–β cost models as the DP executors:
//!
//! * per-layer TP communication: 2 all-reduces of the activation tensor in
//!   forward and 2 in backward, over the TP group (NVLink);
//! * inter-stage p2p of activations (and gradients on the way back);
//! * pipeline bubble: with `m` micro-batches and `pp` stages, the 1F1B
//!   schedule idles for `(pp − 1)` micro-batch slots —
//!   `bubble = (pp − 1) / (m + pp − 1)`, the §2.2 / §6 criticism;
//! * boundary DP all-reduce of each stage's parameters and the optimizer.

use crate::memory::{OomError, RUNTIME_RESERVED};
use mics_cluster::ClusterSpec;
use mics_collectives::{NetParams, WireCollective, WireKind};
use mics_model::TransformerConfig;
use mics_simnet::SimTime;

/// A Megatron-LM-3D parallelization configuration (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegatronConfig {
    /// Tensor-parallel group size (≤ devices per node, per the paper).
    pub tensor_parallel: usize,
    /// Pipeline-parallel stage count.
    pub pipeline_parallel: usize,
    /// Micro-batch size per model replica.
    pub micro_batch: usize,
    /// Global batch size in sequences.
    pub global_batch: usize,
}

impl MegatronConfig {
    /// Table 2, configuration (1): TP = 8, PP = 1.
    pub fn table2_config1(micro_batch: usize, global_batch: usize) -> Self {
        MegatronConfig { tensor_parallel: 8, pipeline_parallel: 1, micro_batch, global_batch }
    }

    /// Table 2, configuration (2): TP = 4, PP = 4.
    pub fn table2_config2(micro_batch: usize, global_batch: usize) -> Self {
        MegatronConfig { tensor_parallel: 4, pipeline_parallel: 4, micro_batch, global_batch }
    }

    /// Table 2, configuration (3): TP = 2, PP = 8.
    pub fn table2_config3(micro_batch: usize, global_batch: usize) -> Self {
        MegatronConfig { tensor_parallel: 2, pipeline_parallel: 8, micro_batch, global_batch }
    }
}

/// Outcome of a Megatron-LM-3D simulation.
#[derive(Debug, Clone)]
pub struct MegatronReport {
    /// Configuration label, e.g. `"Megatron(TP=2,PP=8)"`.
    pub label: String,
    /// One optimizer-step (iteration) time.
    pub iter_time: SimTime,
    /// Sequences per second across the cluster.
    pub samples_per_sec: f64,
    /// Fraction of pipeline slots lost to the 1F1B bubble.
    pub bubble_fraction: f64,
    /// Data-parallel replica count implied by the cluster size.
    pub data_parallel: usize,
    /// Peak memory per device.
    pub peak_mem_bytes: u64,
}

/// Simulate one iteration of Megatron-LM-3D training for `cfg` on
/// `cluster`.
///
/// Returns an error when the configuration does not tile the cluster, when
/// the layer count is not divisible by the pipeline size (a real
/// Megatron-LM constraint the paper works around by padding to 128 layers),
/// or when a stage does not fit in device memory.
pub fn simulate_megatron(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &MegatronConfig,
) -> Result<MegatronReport, OomError> {
    let label = format!("Megatron(TP={},PP={})", cfg.tensor_parallel, cfg.pipeline_parallel);
    let n = cluster.total_devices();
    let k = cluster.devices_per_node();
    let t = cfg.tensor_parallel;
    let pp = cfg.pipeline_parallel;
    assert!(t >= 1 && t <= k, "tensor parallelism must stay within a node (paper §5.1.3)");
    assert!(model.layers.is_multiple_of(pp), "layer count must divide pipeline size");
    assert!(n.is_multiple_of(t * pp), "cluster size {n} not divisible by TP×PP = {}", t * pp);
    let d = n / (t * pp); // data-parallel replicas
    let m = cfg.global_batch / (d * cfg.micro_batch); // micro-batches per pipeline
    assert!(m >= 1, "global batch too small for this parallelization");

    let net = NetParams::from_instance(&cluster.instance);
    let sustained = cluster.instance.sustained_fp16_flops();
    let layers_per_stage = model.layers / pp;
    let b = cfg.micro_batch;

    // --- per-micro-batch stage times ---
    let layer_fwd = model.layer_fwd_flops(b) / t as f64 / sustained;
    // TP communication: 2 all-reduces of the activation (b × l × h fp16)
    // per layer forward, 2 per layer backward, within the node.
    let act_bytes = (b * model.seq_len * model.hidden) as u64 * 2;
    let wire = |kind, participants, bytes| WireCollective {
        kind,
        participants,
        devices_per_node: k,
        bytes,
        codec: None,
    };
    let tp_ar = if t > 1 {
        wire(WireKind::AllReduce { stride: 1 }, t, act_bytes)
            .cost(&net)
            .serial_time(&net)
            .as_secs_f64()
    } else {
        0.0
    };
    let stage_fwd = layers_per_stage as f64 * (layer_fwd + 2.0 * tp_ar);
    // Backward: 2× compute + recompute (activation checkpointing) + 2 TP
    // all-reduces per layer.
    let stage_bwd = layers_per_stage as f64 * (3.0 * layer_fwd + 2.0 * tp_ar);
    // Head/embedding compute on the last/first stages — amortize over all
    // stages (small relative term).
    let head = model.head_fwd_flops(b) / t as f64 / sustained;

    // Inter-stage p2p. Consecutive stages land on different nodes whenever
    // t × (stage index change) crosses the node boundary; with TP packed
    // first, a stage occupies t consecutive devices, so stages are
    // inter-node when t × pp > k.
    let inter_node_stages = t * pp > k;
    let p2p_time = if pp > 1 {
        wire(WireKind::P2p { inter_node: inter_node_stages }, 2, act_bytes)
            .cost(&net)
            .serial_time(&net)
            .as_secs_f64()
    } else {
        0.0
    };

    // --- 1F1B schedule ---
    let slot = stage_fwd + stage_bwd + 2.0 * p2p_time;
    let steady = m as f64 * slot;
    let ramp = (pp as f64 - 1.0) * slot;
    let bubble_fraction = ramp / (steady + ramp);
    let pipeline_time = steady + ramp + (head + 2.0 * head) / pp as f64;

    // --- boundary: DP all-reduce of each stage's parameters + optimizer ---
    let stage_param_bytes = model.params_per_layer() * layers_per_stage as u64 * 2 / t as u64;
    let dp_sync = if d > 1 {
        // DP replicas of the same stage are strided t×pp apart → inter-node
        // for every realistic configuration.
        wire(WireKind::AllReduce { stride: t * pp }, d, stage_param_bytes)
            .cost(&net)
            .serial_time(&net)
            .as_secs_f64()
    } else {
        0.0
    };
    let opt_bytes = model.params_per_layer() * layers_per_stage as u64 / t as u64 * 24;
    let opt_time = opt_bytes as f64 / cluster.instance.memcpy_bw;

    let iter_secs = pipeline_time + dp_sync + opt_time;

    // --- memory ---
    // Model states of one stage, split over TP: 16 B/param. 1F1B keeps up
    // to min(pp, m) micro-batches of checkpointed activations alive.
    let stage_states = model.params_per_layer() * layers_per_stage as u64 * 16 / t as u64;
    let live_micro = pp.min(m) as u64;
    let acts = model.checkpoint_bytes(b) / t as u64 * layers_per_stage as u64 * live_micro
        + model.working_bytes(b) / t as u64;
    let peak = stage_states + acts + 2 * (1 << 30);
    let usable = cluster.instance.gpu_mem_bytes.saturating_sub(RUNTIME_RESERVED);
    if peak > usable {
        return Err(OomError { required: peak, available: usable, strategy: label });
    }

    Ok(MegatronReport {
        label,
        iter_time: SimTime::from_secs_f64(iter_secs),
        samples_per_sec: cfg.global_batch as f64 / iter_secs,
        bubble_fraction,
        data_parallel: d,
        peak_mem_bytes: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mics_cluster::InstanceType;

    fn cluster(nodes: usize) -> ClusterSpec {
        ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes)
    }

    fn model() -> TransformerConfig {
        TransformerConfig::megatron_comparison()
    }

    #[test]
    fn table2_configs_run_on_64_gpus() {
        let c = cluster(8);
        for cfg in [
            MegatronConfig::table2_config1(8, 4096),
            MegatronConfig::table2_config2(8, 4096),
            MegatronConfig::table2_config3(8, 4096),
        ] {
            let r = simulate_megatron(&model(), &c, &cfg).unwrap();
            assert!(r.samples_per_sec > 0.0, "{}", r.label);
        }
    }

    #[test]
    fn config3_beats_config1() {
        // §5.1.3: configuration (3) is ~38% better than configuration (1):
        // TP=8 pays heavy per-layer all-reduce cost, deep pipeline with
        // many micro-batches keeps the bubble small.
        let c = cluster(8);
        let r1 = simulate_megatron(&model(), &c, &MegatronConfig::table2_config1(8, 4096)).unwrap();
        let r3 = simulate_megatron(&model(), &c, &MegatronConfig::table2_config3(8, 4096)).unwrap();
        let gain = r3.samples_per_sec / r1.samples_per_sec;
        assert!(gain > 1.1, "config3/config1 = {gain:.2}");
    }

    #[test]
    fn bubble_shrinks_with_more_micro_batches() {
        let c = cluster(8);
        let few = MegatronConfig { global_batch: 512, ..MegatronConfig::table2_config3(8, 512) };
        let many = MegatronConfig::table2_config3(8, 4096);
        let rf = simulate_megatron(&model(), &c, &few).unwrap();
        let rm = simulate_megatron(&model(), &c, &many).unwrap();
        assert!(rf.bubble_fraction > rm.bubble_fraction);
        assert!(rm.bubble_fraction > 0.0);
    }

    #[test]
    fn pp1_has_no_bubble() {
        let c = cluster(8);
        let r = simulate_megatron(&model(), &c, &MegatronConfig::table2_config1(8, 4096)).unwrap();
        assert_eq!(r.bubble_fraction, 0.0);
    }

    #[test]
    fn dp_replicas_computed_from_cluster() {
        let c = cluster(8); // 64 GPUs
        let r = simulate_megatron(&model(), &c, &MegatronConfig::table2_config2(8, 4096)).unwrap();
        assert_eq!(r.data_parallel, 64 / 16);
    }

    #[test]
    #[should_panic(expected = "must divide pipeline size")]
    fn indivisible_layers_rejected() {
        // BERT 10B has 127 layers — precisely why the paper pads to 128.
        let c = cluster(8);
        let _ = simulate_megatron(
            &TransformerConfig::bert_10b(),
            &c,
            &MegatronConfig::table2_config3(8, 4096),
        );
    }

    #[test]
    #[should_panic(expected = "within a node")]
    fn tensor_parallelism_beyond_node_rejected() {
        let c = cluster(8);
        let cfg = MegatronConfig {
            tensor_parallel: 16,
            pipeline_parallel: 1,
            micro_batch: 8,
            global_batch: 4096,
        };
        let _ = simulate_megatron(&model(), &c, &cfg);
    }
}
