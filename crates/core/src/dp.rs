//! The data-parallel executors: MiCS, DeepSpeed ZeRO-1/2/3 and DDP.
//!
//! One training iteration (`s` micro-steps plus the gradient-accumulation
//! boundary) is lowered layer-by-layer onto the simulator:
//!
//! * **forward**: for sharded-parameter strategies, each layer's parameters
//!   are all-gathered within the partition group on the gather lane —
//!   hierarchically when enabled and the group spans nodes (§3.3) — with a
//!   prefetch-lookahead of `plan.prefetch_depth` layers (0 under the
//!   baseline's coarse synchronization, §4); the compute stream waits on the
//!   per-layer gather event;
//! * **backward** (reverse layer order): parameters are re-gathered, the
//!   layer recomputes (activation checkpointing) and back-propagates, then
//!   gradients synchronize on the reduce lane according to the schedule:
//!   MiCS reduce-scatters within the partition group (hop 1 of §3.4);
//!   DeepSpeed ZeRO-3 all-reduces over **all** devices every micro-step; DDP
//!   / ZeRO-1 / ZeRO-2 only synchronize while the *last* micro-step's
//!   backward runs;
//! * **boundary**: MiCS all-reduces the accumulated gradient shards across
//!   replication groups (hop 2); the optimizer updates its shard; ZeRO-1/2
//!   re-broadcast updated parameters with a cluster-wide all-gather.

use crate::config::MicroSync;
use crate::memory::{check_memory, OomError};
use crate::ops::{Lane, SimCluster};
use crate::report::RunReport;
use crate::TrainingJob;
use mics_cluster::Rank;
use mics_collectives::compress::{
    quantized_all_gather_flat, quantized_all_gather_hierarchical, quantized_all_reduce,
    quantized_reduce_scatter,
};
use mics_collectives::cost::{
    all_gather_flat, all_gather_hierarchical, all_reduce, reduce_scatter,
};
use mics_collectives::CollectiveCost;
use mics_compress::CompressionScope;
use mics_simnet::{EventId, SimTime};

/// Number of distinct nodes a rank group touches (for NIC-volume
/// accounting: [`CollectiveCost::nic_bytes`] is *per participating node*).
fn nodes_spanned(group: &[Rank], k: usize) -> u64 {
    let mut nodes: Vec<usize> = group.iter().map(|r| r.0 / k).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes.len() as u64
}

/// Simulate one iteration of a DP job (all strategies except Megatron).
pub fn simulate_dp(job: &TrainingJob) -> Result<RunReport, OomError> {
    simulate_dp_inner(job, false).map(|(r, _)| r)
}

/// Like [`simulate_dp`], additionally returning a chrome-trace JSON
/// timeline of every stream (loadable in `chrome://tracing` / Perfetto).
pub fn simulate_dp_traced(job: &TrainingJob) -> Result<(RunReport, String), OomError> {
    simulate_dp_inner(job, true)
}

fn simulate_dp_inner(job: &TrainingJob, trace: bool) -> Result<(RunReport, String), OomError> {
    let n = job.cluster.total_devices();
    let k = job.cluster.devices_per_node();
    let plan = job.strategy.plan(n);
    let label = job.strategy.label();
    let est = check_memory(&job.workload, &job.cluster, &plan, &label)?;
    let hier_active = est.hierarchical_buffers;

    let mut sc = SimCluster::new(job.cluster.clone());
    if trace {
        sc.enable_tracing();
    }
    let dtype = job.workload.param_dtype_bytes;
    let sustained = if dtype == 2 {
        job.cluster.instance.sustained_fp16_flops()
    } else {
        job.cluster.instance.sustained_fp32_flops()
    };
    let layers = &job.workload.layers;
    let num_layers = layers.len();
    let p = plan.p_params;
    let s = job.accum_steps;
    let total_param_bytes = job.workload.total_params() * dtype;

    // Group tables.
    let partition_groups: Vec<Vec<Rank>> =
        (0..n / p).map(|g| (g * p..(g + 1) * p).map(Rank).collect()).collect();
    let all_ranks: Vec<Rank> = (0..n).map(Rank).collect();

    // Quantized-collective configuration (ZeRO++-style). Parameter gathers
    // and hop-1 reductions stay inside the partition group, so both scopes
    // compress them; collectives that leave the group (hop 2, the global
    // all-reduce when it spans more than the partition group) compress only
    // under [`CompressionScope::Everywhere`].
    let comp = plan.compression;
    // The workload dictates the uncompressed wire width (fp16 for the
    // paper's language models, fp32 for WideResNet); the cost model needs
    // it to count elements, not bytes.
    let cost_model = |c: &mics_compress::CompressionConfig| {
        let mut cm = c.scheme.cost_model();
        cm.elem_bytes = dtype;
        cm
    };
    let weight_cm = comp.filter(|c| c.weights).map(|c| cost_model(&c));
    let grad_cm = |beyond_group: bool| {
        comp.filter(|c| c.grads)
            .filter(|c| !beyond_group || c.scope == CompressionScope::Everywhere)
            .map(|c| cost_model(&c))
    };

    // Per-layer collective costs (identical for every group by symmetry).
    let gather_costs: Vec<Option<CollectiveCost>> = layers
        .iter()
        .map(|l| {
            let m = l.params * dtype;
            if p == 1 || m == 0 {
                return None;
            }
            if hier_active && p > k {
                Some(match &weight_cm {
                    Some(cm) => {
                        quantized_all_gather_hierarchical(p, k, m, &sc.net, plan.coalesced, cm)
                            .expect("geometry validated by check_memory")
                    }
                    None => all_gather_hierarchical(p, k, m, &sc.net, plan.coalesced)
                        .expect("geometry validated by check_memory"),
                })
            } else {
                Some(match &weight_cm {
                    Some(cm) => quantized_all_gather_flat(p, k, m, &sc.net, cm),
                    None => all_gather_flat(p, k, m, &sc.net),
                })
            }
        })
        .collect();
    // Gradient reductions run at *bucket* granularity (DeepSpeed's
    // `reduce_bucket_size`): consecutive layers (in backward order) are
    // fused until the bucket reaches `BUCKET_BYTES`, amortizing collective
    // latency over several layers. Each bucket is a list of layer indices
    // in backward order plus its fused byte count.
    let buckets: Vec<(Vec<usize>, u64)> = {
        let mut out: Vec<(Vec<usize>, u64)> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut bytes = 0u64;
        for idx in 0..num_layers {
            let l = num_layers - 1 - idx;
            let b = layers[l].params * dtype;
            if b == 0 {
                continue;
            }
            if !cur.is_empty() && bytes + b > crate::memory::BUCKET_BYTES {
                out.push((std::mem::take(&mut cur), bytes));
                bytes = 0;
            }
            cur.push(l);
            bytes += b;
        }
        if !cur.is_empty() {
            out.push((cur, bytes));
        }
        out
    };
    let bucket_costs: Vec<Option<CollectiveCost>> = buckets
        .iter()
        .map(|(_, m)| {
            let m = *m;
            match plan.micro_sync {
                MicroSync::PartitionReduceScatter => (p > 1).then(|| match grad_cm(false) {
                    Some(cm) => quantized_reduce_scatter(p, k, m, &sc.net, &cm),
                    None => reduce_scatter(p, k, m, &sc.net),
                }),
                // The global all-reduce leaves the partition group unless the
                // group *is* the cluster (ZeRO-3 / MiCS with p = n).
                MicroSync::GlobalAllReduce => (n > 1).then(|| match grad_cm(p < n) {
                    Some(cm) => quantized_all_reduce(n, k, 1, m, &sc.net, &cm),
                    None => all_reduce(n, k, 1, m, &sc.net),
                }),
                MicroSync::LocalAccumulate => {
                    if n == 1 {
                        None
                    } else if plan.p_grads > 1 {
                        // ZeRO-2: reduce-scatter over the whole cluster.
                        Some(reduce_scatter(n, k, m, &sc.net))
                    } else {
                        // DDP / ZeRO-1: bucketed all-reduce over the cluster.
                        Some(all_reduce(n, k, 1, m, &sc.net))
                    }
                }
            }
        })
        .collect();

    // Cluster-wide NIC wire volume for one iteration, accumulated at every
    // collective emission ([`CollectiveCost::nic_bytes`] is per node, so
    // each emission contributes bytes × nodes-the-group-touches). This is
    // the quantity compressed collectives shrink.
    let mut nic_total: u64 = 0;

    let mut last_reduce_done: Vec<Option<EventId>> = vec![None; n];
    // Per-layer gradient-reduction events of the previous micro-step: the
    // gradient accumulation buffer of layer l cannot be rewritten by the
    // next micro-step's backward until its previous reduction has read it
    // (write-after-read hazard) — the structural reason per-micro-step
    // global synchronization hurts (§3.4).
    let mut reduce_done: Vec<Vec<Option<EventId>>> = vec![vec![None; num_layers]; n];

    // Under the "alternative schedule" (per-micro-step global all-reduce
    // then partition, §3.4), every partitioning step is "a global
    // synchronization barrier among all devices" (§2.3): the next
    // micro-step cannot begin until the previous one's gradient
    // synchronization has fully completed.
    let mut micro_barrier: Vec<Option<EventId>> = vec![None; n];

    for micro in 0..s {
        // ---------- forward ----------
        if plan.micro_sync == MicroSync::GlobalAllReduce {
            for (r, barrier) in micro_barrier.iter().enumerate() {
                if let Some(e) = *barrier {
                    sc.compute_wait(Rank(r), e);
                    sc.lane_wait(Lane::Gather, Rank(r), e);
                }
            }
        }
        let cd_fwd: Vec<Vec<EventId>> =
            (0..n).map(|_| (0..num_layers).map(|_| sc.new_event()).collect()).collect();
        let mut gd_fwd: Vec<Vec<Option<EventId>>> = vec![vec![None; num_layers]; n];
        for (l, cost) in gather_costs.iter().enumerate() {
            let Some(cost) = cost else { continue };
            for group in &partition_groups {
                // Prefetch backpressure: gather for layer l may start once
                // layer l - depth - 1 has computed.
                if l > plan.prefetch_depth {
                    let dep = l - plan.prefetch_depth - 1;
                    for &m in group {
                        sc.lane_wait(Lane::Gather, m, cd_fwd[m.0][dep]);
                    }
                }
                nic_total += cost.nic_bytes() * nodes_spanned(group, k);
                let evs = sc.collective(group, Lane::Gather, cost, plan.decision_overhead);
                for (i, &m) in group.iter().enumerate() {
                    gd_fwd[m.0][l] = Some(evs[i]);
                }
            }
        }
        for r in 0..n {
            for (l, layer) in layers.iter().enumerate() {
                if let Some(e) = gd_fwd[r][l] {
                    sc.compute_wait(Rank(r), e);
                }
                sc.compute_kernel(Rank(r), layer.fwd_flops, sustained);
                sc.compute_record_into(Rank(r), cd_fwd[r][l]);
            }
        }

        // ---------- backward (reverse layer order) ----------
        let cd_bwd: Vec<Vec<EventId>> =
            (0..n).map(|_| (0..num_layers).map(|_| sc.new_event()).collect()).collect();
        let mut gd_bwd: Vec<Vec<Option<EventId>>> = vec![vec![None; num_layers]; n];
        for idx in 0..num_layers {
            let l = num_layers - 1 - idx;
            let Some(cost) = &gather_costs[l] else { continue };
            for group in &partition_groups {
                if idx > plan.prefetch_depth {
                    let dep_layer = num_layers - 1 - (idx - plan.prefetch_depth - 1);
                    for &m in group {
                        sc.lane_wait(Lane::Gather, m, cd_bwd[m.0][dep_layer]);
                    }
                }
                nic_total += cost.nic_bytes() * nodes_spanned(group, k);
                let evs = sc.collective(group, Lane::Gather, cost, plan.decision_overhead);
                for (i, &m) in group.iter().enumerate() {
                    gd_bwd[m.0][l] = Some(evs[i]);
                }
            }
        }
        for r in 0..n {
            for idx in 0..num_layers {
                let l = num_layers - 1 - idx;
                if let Some(e) = gd_bwd[r][l] {
                    sc.compute_wait(Rank(r), e);
                }
                if let Some(e) = reduce_done[r][l] {
                    // Gradient-buffer write-after-read hazard against the
                    // previous micro-step's reduction of this layer.
                    sc.compute_wait(Rank(r), e);
                }
                let layer = &layers[l];
                sc.compute_kernel(Rank(r), layer.recompute_flops + layer.bwd_flops, sustained);
                sc.compute_record_into(Rank(r), cd_bwd[r][l]);
            }
        }

        // ---------- per-micro-step gradient synchronization ----------
        let sync_this_micro = match plan.micro_sync {
            MicroSync::LocalAccumulate => micro == s - 1,
            _ => true,
        };
        let boundary = micro == s - 1;
        if sync_this_micro {
            for (bi, (bucket_layers, bucket_bytes)) in buckets.iter().enumerate() {
                // A bucket is ready when its last-computed layer (the lowest
                // index — backward runs in decreasing layer order on one
                // stream) has finished.
                let ready_layer = *bucket_layers.last().unwrap();
                let mut hop1_emitted = false;
                if let Some(cost) = &bucket_costs[bi] {
                    let groups: &[Vec<Rank>] =
                        if plan.micro_sync == MicroSync::PartitionReduceScatter {
                            &partition_groups
                        } else {
                            std::slice::from_ref(&all_ranks)
                        };
                    for group in groups {
                        for &m in group {
                            sc.lane_wait(Lane::Reduce, m, cd_bwd[m.0][ready_layer]);
                        }
                        nic_total += cost.nic_bytes() * nodes_spanned(group, k);
                        let evs = sc.collective(group, Lane::Reduce, cost, plan.decision_overhead);
                        for (i, &m) in group.iter().enumerate() {
                            last_reduce_done[m.0] = Some(evs[i]);
                            for &l in bucket_layers {
                                reduce_done[m.0][l] = Some(evs[i]);
                            }
                            if plan.micro_sync == MicroSync::GlobalAllReduce {
                                // The final bucket's reduction is the last
                                // to finish and forms the micro-step barrier.
                                micro_barrier[m.0] = Some(evs[i]);
                            }
                        }
                    }
                    hop1_emitted = true;
                }
                // 2-hop second hop (§3.4): at the accumulation boundary,
                // all-reduce this bucket's accumulated gradient shard across
                // the replication group — bucketed so it overlaps with the
                // remaining backward compute, just like hop 1.
                if boundary && plan.micro_sync == MicroSync::PartitionReduceScatter && n > p {
                    let shard_bytes = bucket_bytes / p as u64;
                    if shard_bytes > 0 {
                        let repl_size = n / p;
                        // Hop 2 crosses replication groups — beyond the
                        // partition group, so intra-group-only compression
                        // keeps it at full precision.
                        let cost = match grad_cm(true) {
                            Some(cm) => {
                                quantized_all_reduce(repl_size, k, p, shard_bytes, &sc.net, &cm)
                            }
                            None => all_reduce(repl_size, k, p, shard_bytes, &sc.net),
                        };
                        for local in 0..p {
                            let members: Vec<Rank> =
                                (0..repl_size).map(|g| Rank(g * p + local)).collect();
                            if !hop1_emitted {
                                for &m in &members {
                                    sc.lane_wait(Lane::Reduce, m, cd_bwd[m.0][ready_layer]);
                                }
                            }
                            nic_total += cost.nic_bytes() * nodes_spanned(&members, k);
                            let evs = sc.collective(&members, Lane::Reduce, &cost, SimTime::ZERO);
                            for (i, &m) in members.iter().enumerate() {
                                last_reduce_done[m.0] = Some(evs[i]);
                            }
                        }
                    }
                }
            }
        }
    }

    // ---------- optimizer step ----------
    // Bandwidth-bound fp32 Adam update over this device's shard: read/write
    // master weights, two moments, gradient, fp16 param ≈ 24 B/parameter.
    let opt_bytes = job.workload.total_params() * 24 / plan.p_opt as u64;
    let opt_time = SimTime::from_secs_f64(opt_bytes as f64 / job.cluster.instance.memcpy_bw);
    let mut opt_done: Vec<Option<EventId>> = vec![None; n];
    for r in 0..n {
        if let Some(e) = last_reduce_done[r] {
            sc.compute_wait(Rank(r), e);
        }
        sc.compute_for(Rank(r), opt_time);
        if plan.p_opt > 1 && plan.p_params == 1 {
            opt_done[r] = Some(sc.compute_record(Rank(r)));
        }
    }

    // ---------- ZeRO-1/2: refresh the full parameter replicas ----------
    if plan.p_opt > 1 && plan.p_params == 1 && n > 1 {
        let cost = all_gather_flat(n, k, total_param_bytes, &sc.net);
        for &m in &all_ranks {
            if let Some(e) = opt_done[m.0] {
                sc.lane_wait(Lane::Gather, m, e);
            }
        }
        nic_total += cost.nic_bytes() * nodes_spanned(&all_ranks, k);
        sc.collective(&all_ranks, Lane::Gather, &cost, plan.decision_overhead);
    }

    let (iter_time, compute_busy, comm_busy, trace_json) = sc.run_traced();
    let samples = job.samples_per_iteration() as f64;
    let secs = iter_time.as_secs_f64();
    Ok((
        RunReport {
            label,
            iter_time,
            samples_per_sec: samples / secs,
            achieved_flops_per_gpu: job.workload.total_flops() * s as f64 / secs,
            memory: est,
            hierarchical_used: hier_active,
            compute_fraction: compute_busy.as_secs_f64() / (n as f64 * secs),
            comm_fraction: comm_busy.as_secs_f64() / (n as f64 * secs),
            nic_bytes_per_node: nic_total / (n / k).max(1) as u64,
        },
        trace_json,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MicsConfig, Strategy, ZeroStage};
    use mics_cluster::{ClusterSpec, InstanceType};
    use mics_model::TransformerConfig;

    fn job(nodes: usize, strategy: Strategy) -> TrainingJob {
        TrainingJob {
            workload: TransformerConfig::bert_10b().workload(8),
            cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes),
            strategy,
            accum_steps: 4,
        }
    }

    #[test]
    fn mics_beats_zero3_on_two_nodes() {
        // The headline: on 100 Gbps V100 clusters MiCS is >2× DeepSpeed
        // ZeRO-3 for BERT 10B (223% — §5.1.1).
        let mics = simulate_dp(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        let zero3 = simulate_dp(&job(2, Strategy::Zero(ZeroStage::Three))).unwrap();
        let speedup = mics.samples_per_sec / zero3.samples_per_sec;
        assert!(speedup > 1.5, "MiCS/ZeRO-3 speedup only {speedup:.2}×");
    }

    #[test]
    fn zero2_oom_reports_error() {
        let mut j = job(2, Strategy::Zero(ZeroStage::Two));
        j.workload = TransformerConfig::bert_15b().workload(4);
        let err = simulate_dp(&j).unwrap_err();
        assert!(err.required > err.available);
    }

    #[test]
    fn partition_group_size_monotonicity() {
        // Figure 11: smaller partition groups are faster (64 GPUs, BERT 10B).
        let mut prev = f64::INFINITY;
        for p in [8usize, 16, 32, 64] {
            let r = simulate_dp(&job(8, Strategy::Mics(MicsConfig::paper_defaults(p)))).unwrap();
            let thr = r.samples_per_sec;
            assert!(thr < prev, "p={p}: throughput {thr} !< {prev}");
            prev = thr;
        }
    }

    #[test]
    fn two_hop_beats_alternative_schedule() {
        // Figure 13: 2-hop on vs off, BERT 10B, p = 8.
        let on = simulate_dp(&job(8, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        let mut cfg = MicsConfig::paper_defaults(8);
        cfg.two_hop_sync = false;
        let off = simulate_dp(&job(8, Strategy::Mics(cfg))).unwrap();
        assert!(
            on.samples_per_sec > off.samples_per_sec * 1.05,
            "2-hop {} vs alternative {}",
            on.samples_per_sec,
            off.samples_per_sec
        );
    }

    #[test]
    fn hierarchical_allgather_helps_multi_node_groups() {
        // Figure 12b: BERT 15B (p = 16) with vs without hierarchical comm.
        let mk = |hier: bool| {
            let mut cfg = MicsConfig::paper_defaults(16);
            cfg.hierarchical_allgather = hier;
            let mut j = job(4, Strategy::Mics(cfg));
            j.workload = TransformerConfig::bert_15b().workload(8);
            simulate_dp(&j).unwrap()
        };
        let with = mk(true);
        let without = mk(false);
        assert!(with.hierarchical_used && !without.hierarchical_used);
        assert!(
            with.samples_per_sec > without.samples_per_sec * 1.1,
            "hierarchical {} vs flat {}",
            with.samples_per_sec,
            without.samples_per_sec
        );
    }

    #[test]
    fn impl_opts_alone_beat_deepspeed() {
        // Figure 14: MiCS(ZeRO-3) — partition over all devices but with §4
        // optimizations — must beat DeepSpeed ZeRO-3, and full MiCS must
        // beat both.
        let n = 32;
        let ds = simulate_dp(&job(4, Strategy::Zero(ZeroStage::Three))).unwrap();
        let mics_z3 =
            simulate_dp(&job(4, Strategy::Mics(MicsConfig::zero3_with_impl_opts(n)))).unwrap();
        let full = simulate_dp(&job(4, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        assert!(mics_z3.samples_per_sec > ds.samples_per_sec);
        assert!(full.samples_per_sec > mics_z3.samples_per_sec);
    }

    #[test]
    fn throughput_scales_with_cluster_size() {
        // Strong scaling: more nodes → more samples/sec (Fig. 6 shape).
        let t2 = simulate_dp(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8))))
            .unwrap()
            .samples_per_sec;
        let t8 = simulate_dp(&job(8, Strategy::Mics(MicsConfig::paper_defaults(8))))
            .unwrap()
            .samples_per_sec;
        assert!(t8 > 3.0 * t2, "16→64 GPUs gave only {t8}/{t2}");
    }

    #[test]
    fn near_linear_scaling_efficiency() {
        // §5.1: MiCS keeps high weak/strong scaling efficiency. Per-GPU
        // throughput at 64 GPUs should stay within 85% of 16 GPUs.
        let per_gpu = |nodes: usize| {
            let r =
                simulate_dp(&job(nodes, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
            r.samples_per_sec / (nodes * 8) as f64
        };
        let eff = per_gpu(8) / per_gpu(2);
        assert!(eff > 0.85, "scaling efficiency {eff}");
    }

    #[test]
    fn ddp_single_node_runs_and_reports() {
        // DDP with a tiny model (the fidelity model fits replicated).
        let mut j = job(1, Strategy::Ddp);
        j.workload = TransformerConfig::bert_1_5b().workload(8);
        let r = simulate_dp(&j).unwrap();
        assert!(r.samples_per_sec > 0.0);
        assert!(r.compute_fraction > 0.0 && r.compute_fraction <= 1.0);
    }

    #[test]
    fn deterministic() {
        let a = simulate_dp(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        let b = simulate_dp(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        assert_eq!(a.iter_time, b.iter_time);
    }

    #[test]
    fn sub_node_partition_groups_skip_hierarchical() {
        // p = 8 on one node: all gathers stay on NVLink, hierarchical
        // staging is never engaged.
        let r = simulate_dp(&job(1, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        assert!(!r.hierarchical_used);
        assert!(r.samples_per_sec > 0.0);
    }

    #[test]
    fn int8_collectives_cut_wire_volume_about_4x() {
        // ZeRO++-style claim: int8 weight gathers + gradient reduces shrink
        // the inter-node wire volume ≈ 4× vs fp16/fp32 words (slightly less
        // because of the per-block scale/zero metadata).
        use mics_compress::{CompressionConfig, QuantScheme};
        let base = simulate_dp(&job(4, Strategy::Mics(MicsConfig::paper_defaults(16)))).unwrap();
        let q = simulate_dp(&job(
            4,
            Strategy::Mics(MicsConfig::compressed(
                16,
                CompressionConfig::both(QuantScheme::int8()),
            )),
        ))
        .unwrap();
        // BERT ships fp16 words uncompressed, so the fp32-equivalent wire
        // volume is 2× the measured baseline; int8 must cut *that* ≈ 4×.
        let vs_fp16 = base.nic_bytes_per_node as f64 / q.nic_bytes_per_node as f64;
        let vs_fp32 = 2.0 * vs_fp16;
        assert!((1.6..2.0).contains(&vs_fp16), "wire-volume ratio vs fp16 {vs_fp16:.2}");
        assert!((3.2..4.0).contains(&vs_fp32), "wire-volume ratio vs fp32 {vs_fp32:.2}");
        // And the saved wire time beats the added quant/dequant memcpys at
        // 100 Gbps.
        assert!(
            q.samples_per_sec > base.samples_per_sec,
            "int8 {} !> fp16 {}",
            q.samples_per_sec,
            base.samples_per_sec
        );
    }

    #[test]
    fn intra_group_scope_skips_hop2_compression() {
        use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
        let mut intra = CompressionConfig::grads_only(QuantScheme::int8());
        intra.scope = CompressionScope::IntraGroupOnly;
        let everywhere = CompressionConfig::grads_only(QuantScheme::int8());
        let run = |c| simulate_dp(&job(4, Strategy::Mics(MicsConfig::compressed(8, c)))).unwrap();
        // Hop 2 crosses replication groups, so intra-group-only leaves its
        // wire volume uncompressed and moves strictly more NIC bytes.
        assert!(run(intra).nic_bytes_per_node > run(everywhere).nic_bytes_per_node);
    }

    #[test]
    fn compressed_zero3_closes_part_of_the_gap_to_mics() {
        use mics_compress::{CompressionConfig, QuantScheme};
        let ds = simulate_dp(&job(4, Strategy::Zero(ZeroStage::Three))).unwrap();
        let dsq = simulate_dp(&job(
            4,
            Strategy::ZeroCompressed(CompressionConfig::both(QuantScheme::int8())),
        ))
        .unwrap();
        let mics = simulate_dp(&job(4, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        assert!(dsq.samples_per_sec > ds.samples_per_sec);
        // Compression alone does not recover MiCS's scale advantage: the
        // latency term still grows with the communication scale.
        assert!(mics.samples_per_sec > dsq.samples_per_sec);
        assert!(dsq.label.contains("int8"));
    }

    #[test]
    fn p1_groups_still_synchronize_at_boundary() {
        // p = 1 (every device its own "group"): no gathers, but the 2-hop
        // boundary all-reduce across the 8-member replication groups must
        // appear as communication.
        let mut j = job(1, Strategy::Mics(MicsConfig::paper_defaults(1)));
        j.workload = TransformerConfig::bert_1_5b().workload(8);
        let r = simulate_dp(&j).unwrap();
        assert!(r.comm_fraction > 0.0);
    }
}
