//! The data-parallel executors: MiCS, DeepSpeed ZeRO-1/2/3 and DDP.
//!
//! Since the schedule-IR refactor this module is a thin pipeline: a
//! [`TrainingJob`] is turned into a [`ScheduleSpec`] (one pure emitter per
//! strategy family, parameterized by [`crate::config::DpPlan`]), lowered to
//! a [`StepProgram`] — `s` micro-steps of gathers, computes and gradient
//! synchronization plus the accumulation boundary — and replayed onto the
//! simulator by [`execute_on_sim`]. See [`crate::schedule`] for the op
//! grammar; the schedule semantics are unchanged:
//!
//! * **forward**: for sharded-parameter strategies, each layer's parameters
//!   are all-gathered within the partition group on the gather lane —
//!   hierarchically when enabled and the group spans nodes (§3.3) — with a
//!   prefetch-lookahead of `plan.prefetch_depth` layers (0 under the
//!   baseline's coarse synchronization, §4); the compute stream waits on the
//!   per-layer gather event;
//! * **backward** (reverse layer order): parameters are re-gathered, the
//!   layer recomputes (activation checkpointing) and back-propagates, then
//!   gradients synchronize on the reduce lane according to the schedule:
//!   MiCS reduce-scatters within the partition group (hop 1 of §3.4);
//!   DeepSpeed ZeRO-3 all-reduces over **all** devices every micro-step; DDP
//!   / ZeRO-1 / ZeRO-2 only synchronize while the *last* micro-step's
//!   backward runs;
//! * **boundary**: MiCS all-reduces the accumulated gradient shards across
//!   replication groups (hop 2); the optimizer updates its shard; ZeRO-1/2
//!   re-broadcast updated parameters with a cluster-wide all-gather.

use crate::memory::{check_memory, MemoryEstimate, OomError, BUCKET_BYTES};
use crate::ops::SimCluster;
use crate::report::RunReport;
use crate::schedule::{execute_on_sim, LayerSchedule, PipelineSpec, ScheduleSpec, StepProgram};
use crate::TrainingJob;
use mics_cluster::ClusterSpec;
use mics_model::WorkloadSpec;

/// A borrowed [`TrainingJob`]: the hot-path entry point for callers that
/// evaluate many strategies against one workload/cluster pair (the tuner,
/// the planner service). `Copy`, so a candidate loop costs no allocation —
/// the owned job used to be cloned per candidate just to satisfy the
/// signature.
#[derive(Debug, Clone, Copy)]
pub struct JobView<'a> {
    /// The model, lowered for a specific micro-batch size.
    pub workload: &'a WorkloadSpec,
    /// The cluster to run on.
    pub cluster: &'a ClusterSpec,
    /// The parallelization strategy.
    pub strategy: &'a crate::config::Strategy,
    /// Micro-steps per iteration (gradient accumulation depth).
    pub accum_steps: usize,
}

impl<'a> JobView<'a> {
    /// Global samples consumed per iteration
    /// (`devices × micro_batch × accum_steps`).
    pub fn samples_per_iteration(&self) -> usize {
        self.cluster.total_devices() * self.workload.micro_batch * self.accum_steps
    }
}

impl<'a> From<&'a TrainingJob> for JobView<'a> {
    fn from(job: &'a TrainingJob) -> Self {
        job.view()
    }
}

/// Simulate one iteration of a DP job (all strategies except Megatron).
pub fn simulate_dp(job: &TrainingJob) -> Result<RunReport, OomError> {
    simulate_dp_view(job.view())
}

/// [`simulate_dp`] over a borrowed job — no spec clones on the way in.
pub fn simulate_dp_view(job: JobView<'_>) -> Result<RunReport, OomError> {
    simulate_dp_inner(job, false).map(|(r, _)| r)
}

/// Like [`simulate_dp`], additionally returning a chrome-trace JSON
/// timeline of every stream (loadable in `chrome://tracing` / Perfetto).
pub fn simulate_dp_traced(job: &TrainingJob) -> Result<(RunReport, String), OomError> {
    simulate_dp_inner(job.view(), true)
}

/// Build the [`ScheduleSpec`] for a DP job: the strategy's plan plus the
/// workload's per-layer bytes/FLOPs, validated against the memory model
/// (which also decides whether hierarchical gathers are active).
fn dp_spec(job: JobView<'_>) -> Result<(ScheduleSpec, MemoryEstimate), OomError> {
    let n = job.cluster.total_devices();
    let k = job.cluster.devices_per_node();
    let plan = job.strategy.plan(n);
    let est = check_memory(job.workload, job.cluster, &plan, &job.strategy.label())?;
    let dtype = job.workload.param_dtype_bytes;
    let layers = job
        .workload
        .layers
        .iter()
        .map(|l| LayerSchedule {
            param_bytes: l.params * dtype,
            fwd_flops: l.fwd_flops,
            // Activation checkpointing: backward recomputes the forward.
            bwd_flops: l.recompute_flops + l.bwd_flops,
        })
        .collect();
    let spec = ScheduleSpec {
        n,
        k,
        p_params: plan.p_params,
        p_grads: plan.p_grads,
        p_opt: plan.p_opt,
        micro_sync: plan.micro_sync,
        accum_steps: job.accum_steps,
        hierarchical: est.hierarchical_buffers,
        coalesced: plan.coalesced,
        prefetch_depth: plan.prefetch_depth,
        decision_overhead: plan.decision_overhead,
        layers,
        bucket_bytes: BUCKET_BYTES,
        total_param_bytes: job.workload.total_params() * dtype,
        // Bandwidth-bound fp32 Adam update over this device's shard:
        // read/write master weights, two moments, gradient, fp16 param
        // ≈ 24 B/parameter.
        optimizer_bytes: job.workload.total_params() * 24 / plan.p_opt as u64,
        compression: plan.compression,
        elem_bytes: dtype,
    };
    Ok((spec, est))
}

/// Lower `job` to its [`StepProgram`] — the exact op sequence both the
/// simulator backend and the minidl interpreter execute. Fails with
/// [`OomError`] when the memory model rejects the job, like [`simulate_dp`].
pub fn dp_program(job: &TrainingJob) -> Result<StepProgram, OomError> {
    dp_spec(job.view()).map(|(spec, _)| spec.program())
}

/// Lower `job` to a DP×PP [`StepProgram`]: the job's cluster is one
/// pipeline stage's dp-world, replicated `pp` times, with the layer list
/// split contiguously over the stages and 1F1B boundary sends carrying
/// `act_bytes` per micro-batch. `pp = 1` is exactly [`dp_program`].
pub fn dp_pipeline_program(
    job: &TrainingJob,
    pp: usize,
    act_bytes: u64,
) -> Result<StepProgram, OomError> {
    let (spec, _) = dp_spec(job.view())?;
    Ok(PipelineSpec { inner: spec, pp, act_bytes }.program())
}

/// Simulate one iteration of the DP×PP 1F1B program end-to-end on the
/// event-driven backend — the *executable* pipeline comparator (unlike
/// [`crate::simulate_megatron`], which is closed-form analytic).
///
/// `job.cluster` describes one stage's dp-world; the simulated cluster is
/// that world replicated `pp` times on the same instance type, matching the
/// program's dp × pp geometry. Admission reuses `dp_spec`'s memory check on
/// the full layer list — conservative for `pp > 1`, where each stage holds
/// only its slice.
pub fn simulate_dp_pipeline(
    job: &TrainingJob,
    pp: usize,
    act_bytes: u64,
) -> Result<RunReport, OomError> {
    let (spec, est) = dp_spec(job.view())?;
    let prog = PipelineSpec { inner: spec.clone(), pp, act_bytes }.program();
    let world = spec.n * pp;
    let k = spec.k;
    let s = job.accum_steps;

    let full = ClusterSpec::new(job.cluster.instance.clone(), job.cluster.nodes * pp);
    let mut sc = SimCluster::new(full);
    let sustained = if job.workload.param_dtype_bytes == 2 {
        job.cluster.instance.sustained_fp16_flops()
    } else {
        job.cluster.instance.sustained_fp32_flops()
    };
    let exec = execute_on_sim(&prog, &mut sc, sustained);
    let (iter_time, compute_busy, comm_busy) = sc.run();
    let secs = iter_time.as_secs_f64();
    // Samples flow through the dp ranks only; each stage computes 1/pp of
    // the model, so per-GPU achieved FLOPs divide by pp.
    let samples = (spec.n * job.workload.micro_batch * s) as f64;
    Ok(RunReport {
        label: format!("{}×pp{pp}", job.strategy.label()),
        iter_time,
        samples_per_sec: samples / secs,
        achieved_flops_per_gpu: job.workload.total_flops() * s as f64 / pp as f64 / secs,
        memory: est,
        hierarchical_used: spec.hierarchical,
        compute_fraction: compute_busy.as_secs_f64() / (world as f64 * secs),
        comm_fraction: comm_busy.as_secs_f64() / (world as f64 * secs),
        nic_bytes_per_node: exec.nic_bytes_total / (world / k).max(1) as u64,
    })
}

fn simulate_dp_inner(job: JobView<'_>, trace: bool) -> Result<(RunReport, String), OomError> {
    let (spec, est) = dp_spec(job)?;
    let prog = spec.program();
    let n = spec.n;
    let k = spec.k;
    let s = job.accum_steps;

    let mut sc = SimCluster::new(job.cluster.clone());
    let samples = job.samples_per_iteration() as f64;
    if trace {
        sc.enable_tracing();
    }
    let sustained = if job.workload.param_dtype_bytes == 2 {
        job.cluster.instance.sustained_fp16_flops()
    } else {
        job.cluster.instance.sustained_fp32_flops()
    };
    let exec = execute_on_sim(&prog, &mut sc, sustained);

    let (iter_time, compute_busy, comm_busy, sim_trace) = sc.run_traced();
    let trace_json = sim_trace.to_json();
    let secs = iter_time.as_secs_f64();
    Ok((
        RunReport {
            label: job.strategy.label(),
            iter_time,
            samples_per_sec: samples / secs,
            achieved_flops_per_gpu: job.workload.total_flops() * s as f64 / secs,
            memory: est,
            hierarchical_used: spec.hierarchical,
            compute_fraction: compute_busy.as_secs_f64() / (n as f64 * secs),
            comm_fraction: comm_busy.as_secs_f64() / (n as f64 * secs),
            nic_bytes_per_node: exec.nic_bytes_total / (n / k).max(1) as u64,
        },
        trace_json,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MicsConfig, Strategy, ZeroStage};
    use mics_cluster::{ClusterSpec, InstanceType};
    use mics_model::TransformerConfig;

    fn job(nodes: usize, strategy: Strategy) -> TrainingJob {
        TrainingJob {
            workload: TransformerConfig::bert_10b().workload(8),
            cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes),
            strategy,
            accum_steps: 4,
        }
    }

    #[test]
    fn pipeline_sim_at_pp1_costs_exactly_the_flat_program() {
        // PipelineSpec at pp = 1 delegates to the flat emitter, so the
        // executable pipeline comparator must reproduce `simulate_dp`'s
        // makespan bit-for-bit.
        let j = job(2, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let flat = simulate_dp(&j).unwrap();
        let pipe = simulate_dp_pipeline(&j, 1, 1 << 20).unwrap();
        assert_eq!(pipe.iter_time, flat.iter_time);
        assert_eq!(pipe.samples_per_sec, flat.samples_per_sec);
        assert_eq!(pipe.nic_bytes_per_node, flat.nic_bytes_per_node);
    }

    #[test]
    fn pipeline_sim_runs_and_is_deterministic() {
        // The 128-layer Megatron-comparison variant: its lowered layer list
        // (embedding + 128 blocks + head) splits evenly over 2 stages.
        let mut j = job(2, Strategy::Mics(MicsConfig::paper_defaults(8)));
        j.workload = TransformerConfig::megatron_comparison().workload(8);
        let a = simulate_dp_pipeline(&j, 2, 1 << 24).unwrap();
        assert!(a.samples_per_sec > 0.0);
        assert_eq!(a.label, "MiCS(p=8)×pp2");
        assert_eq!(a, simulate_dp_pipeline(&j, 2, 1 << 24).unwrap());
        // The 1F1B ramp idles (pp − 1) slots: per-device utilization must
        // sit below the flat program's.
        let flat = simulate_dp(&j).unwrap();
        assert!(a.compute_fraction < flat.compute_fraction);
    }

    #[test]
    fn mics_beats_zero3_on_two_nodes() {
        // The headline: on 100 Gbps V100 clusters MiCS is >2× DeepSpeed
        // ZeRO-3 for BERT 10B (223% — §5.1.1).
        let mics = simulate_dp(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        let zero3 = simulate_dp(&job(2, Strategy::Zero(ZeroStage::Three))).unwrap();
        let speedup = mics.samples_per_sec / zero3.samples_per_sec;
        assert!(speedup > 1.5, "MiCS/ZeRO-3 speedup only {speedup:.2}×");
    }

    #[test]
    fn zero2_oom_reports_error() {
        let mut j = job(2, Strategy::Zero(ZeroStage::Two));
        j.workload = TransformerConfig::bert_15b().workload(4);
        let err = simulate_dp(&j).unwrap_err();
        assert!(err.required > err.available);
    }

    #[test]
    fn partition_group_size_monotonicity() {
        // Figure 11: smaller partition groups are faster (64 GPUs, BERT 10B).
        let mut prev = f64::INFINITY;
        for p in [8usize, 16, 32, 64] {
            let r = simulate_dp(&job(8, Strategy::Mics(MicsConfig::paper_defaults(p)))).unwrap();
            let thr = r.samples_per_sec;
            assert!(thr < prev, "p={p}: throughput {thr} !< {prev}");
            prev = thr;
        }
    }

    #[test]
    fn two_hop_beats_alternative_schedule() {
        // Figure 13: 2-hop on vs off, BERT 10B, p = 8.
        let on = simulate_dp(&job(8, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        let mut cfg = MicsConfig::paper_defaults(8);
        cfg.two_hop_sync = false;
        let off = simulate_dp(&job(8, Strategy::Mics(cfg))).unwrap();
        assert!(
            on.samples_per_sec > off.samples_per_sec * 1.05,
            "2-hop {} vs alternative {}",
            on.samples_per_sec,
            off.samples_per_sec
        );
    }

    #[test]
    fn hierarchical_allgather_helps_multi_node_groups() {
        // Figure 12b: BERT 15B (p = 16) with vs without hierarchical comm.
        let mk = |hier: bool| {
            let mut cfg = MicsConfig::paper_defaults(16);
            cfg.hierarchical_allgather = hier;
            let mut j = job(4, Strategy::Mics(cfg));
            j.workload = TransformerConfig::bert_15b().workload(8);
            simulate_dp(&j).unwrap()
        };
        let with = mk(true);
        let without = mk(false);
        assert!(with.hierarchical_used && !without.hierarchical_used);
        assert!(
            with.samples_per_sec > without.samples_per_sec * 1.1,
            "hierarchical {} vs flat {}",
            with.samples_per_sec,
            without.samples_per_sec
        );
    }

    #[test]
    fn impl_opts_alone_beat_deepspeed() {
        // Figure 14: MiCS(ZeRO-3) — partition over all devices but with §4
        // optimizations — must beat DeepSpeed ZeRO-3, and full MiCS must
        // beat both.
        let n = 32;
        let ds = simulate_dp(&job(4, Strategy::Zero(ZeroStage::Three))).unwrap();
        let mics_z3 =
            simulate_dp(&job(4, Strategy::Mics(MicsConfig::zero3_with_impl_opts(n)))).unwrap();
        let full = simulate_dp(&job(4, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        assert!(mics_z3.samples_per_sec > ds.samples_per_sec);
        assert!(full.samples_per_sec > mics_z3.samples_per_sec);
    }

    #[test]
    fn throughput_scales_with_cluster_size() {
        // Strong scaling: more nodes → more samples/sec (Fig. 6 shape).
        let t2 = simulate_dp(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8))))
            .unwrap()
            .samples_per_sec;
        let t8 = simulate_dp(&job(8, Strategy::Mics(MicsConfig::paper_defaults(8))))
            .unwrap()
            .samples_per_sec;
        assert!(t8 > 3.0 * t2, "16→64 GPUs gave only {t8}/{t2}");
    }

    #[test]
    fn near_linear_scaling_efficiency() {
        // §5.1: MiCS keeps high weak/strong scaling efficiency. Per-GPU
        // throughput at 64 GPUs should stay within 85% of 16 GPUs.
        let per_gpu = |nodes: usize| {
            let r =
                simulate_dp(&job(nodes, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
            r.samples_per_sec / (nodes * 8) as f64
        };
        let eff = per_gpu(8) / per_gpu(2);
        assert!(eff > 0.85, "scaling efficiency {eff}");
    }

    #[test]
    fn ddp_single_node_runs_and_reports() {
        // DDP with a tiny model (the fidelity model fits replicated).
        let mut j = job(1, Strategy::Ddp);
        j.workload = TransformerConfig::bert_1_5b().workload(8);
        let r = simulate_dp(&j).unwrap();
        assert!(r.samples_per_sec > 0.0);
        assert!(r.compute_fraction > 0.0 && r.compute_fraction <= 1.0);
    }

    #[test]
    fn deterministic() {
        let a = simulate_dp(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        let b = simulate_dp(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        assert_eq!(a.iter_time, b.iter_time);
    }

    #[test]
    fn sub_node_partition_groups_skip_hierarchical() {
        // p = 8 on one node: all gathers stay on NVLink, hierarchical
        // staging is never engaged.
        let r = simulate_dp(&job(1, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        assert!(!r.hierarchical_used);
        assert!(r.samples_per_sec > 0.0);
    }

    #[test]
    fn int8_collectives_cut_wire_volume_about_4x() {
        // ZeRO++-style claim: int8 weight gathers + gradient reduces shrink
        // the inter-node wire volume ≈ 4× vs fp16/fp32 words (slightly less
        // because of the per-block scale/zero metadata).
        use mics_compress::{CompressionConfig, QuantScheme};
        let base = simulate_dp(&job(4, Strategy::Mics(MicsConfig::paper_defaults(16)))).unwrap();
        let q = simulate_dp(&job(
            4,
            Strategy::Mics(MicsConfig::compressed(
                16,
                CompressionConfig::both(QuantScheme::int8()),
            )),
        ))
        .unwrap();
        // BERT ships fp16 words uncompressed, so the fp32-equivalent wire
        // volume is 2× the measured baseline; int8 must cut *that* ≈ 4×.
        let vs_fp16 = base.nic_bytes_per_node as f64 / q.nic_bytes_per_node as f64;
        let vs_fp32 = 2.0 * vs_fp16;
        assert!((1.6..2.0).contains(&vs_fp16), "wire-volume ratio vs fp16 {vs_fp16:.2}");
        assert!((3.2..4.0).contains(&vs_fp32), "wire-volume ratio vs fp32 {vs_fp32:.2}");
        // And the saved wire time beats the added quant/dequant memcpys at
        // 100 Gbps.
        assert!(
            q.samples_per_sec > base.samples_per_sec,
            "int8 {} !> fp16 {}",
            q.samples_per_sec,
            base.samples_per_sec
        );
    }

    #[test]
    fn intra_group_scope_skips_hop2_compression() {
        use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
        let mut intra = CompressionConfig::grads_only(QuantScheme::int8());
        intra.scope = CompressionScope::IntraGroupOnly;
        let everywhere = CompressionConfig::grads_only(QuantScheme::int8());
        let run = |c| simulate_dp(&job(4, Strategy::Mics(MicsConfig::compressed(8, c)))).unwrap();
        // Hop 2 crosses replication groups, so intra-group-only leaves its
        // wire volume uncompressed and moves strictly more NIC bytes.
        assert!(run(intra).nic_bytes_per_node > run(everywhere).nic_bytes_per_node);
    }

    #[test]
    fn compressed_zero3_closes_part_of_the_gap_to_mics() {
        use mics_compress::{CompressionConfig, QuantScheme};
        let ds = simulate_dp(&job(4, Strategy::Zero(ZeroStage::Three))).unwrap();
        let dsq = simulate_dp(&job(
            4,
            Strategy::ZeroCompressed(CompressionConfig::both(QuantScheme::int8())),
        ))
        .unwrap();
        let mics = simulate_dp(&job(4, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
        assert!(dsq.samples_per_sec > ds.samples_per_sec);
        // Compression alone does not recover MiCS's scale advantage: the
        // latency term still grows with the communication scale.
        assert!(mics.samples_per_sec > dsq.samples_per_sec);
        assert!(dsq.label.contains("int8"));
    }

    #[test]
    fn p1_groups_still_synchronize_at_boundary() {
        // p = 1 (every device its own "group"): no gathers, but the 2-hop
        // boundary all-reduce across the 8-member replication groups must
        // appear as communication.
        let mut j = job(1, Strategy::Mics(MicsConfig::paper_defaults(1)));
        j.workload = TransformerConfig::bert_1_5b().workload(8);
        let r = simulate_dp(&j).unwrap();
        assert!(r.comm_fraction > 0.0);
    }

    #[test]
    fn program_nic_accounting_matches_report() {
        // The IR-derived wire volume and the executor's accumulation are the
        // same number: nic_bytes_per_node is a pure function of the program.
        let j = job(4, Strategy::Mics(MicsConfig::paper_defaults(16)));
        let prog = dp_program(&j).unwrap();
        let sc = SimCluster::new(j.cluster.clone());
        let per_node =
            prog.total_nic_bytes(&sc.net) / (j.cluster.total_devices() / 8).max(1) as u64;
        let report = simulate_dp(&j).unwrap();
        assert_eq!(per_node, report.nic_bytes_per_node);
    }
}
