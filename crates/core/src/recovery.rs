//! Recovery from node loss — the fault-tolerance dividend of MiCS's
//! replication topology (extension beyond the paper).
//!
//! MiCS partitions model states over a partition group of `p` devices and
//! *replicates* them across the `n/p` partition groups (§3.2). That
//! replication is introduced for communication efficiency, but it also
//! changes what a node loss means:
//!
//! * **MiCS (`p_opt < n`)**: the dead node's shards still exist on its
//!   replication-group peers in other partition groups. Recovery is a
//!   provision-and-copy: spin up a replacement instance and pull each lost
//!   rank's shard P2P from an off-node peer, cost-modeled on the same
//!   simulated NIC resources training uses ([`recovery_time`]). No training
//!   state is lost beyond the interrupted iteration.
//! * **ZeRO-3 (`p_opt = n`)**: every shard exists exactly once, so a node
//!   loss destroys state that exists nowhere else. The whole cluster must
//!   reload the latest checkpoint and redo the work since it was written.
//!
//! [`simulate_with_failures`] walks a seeded [`FaultPlan`] crash timeline
//! and reports per-failure recovery time and goodput for either policy;
//! because the plan is seeded and the cost models are deterministic, the
//! same seed always yields the identical report.

use crate::memory::OomError;
use crate::TrainingJob;
use mics_cluster::{ClusterSpec, NodeId, Rank};
use mics_simnet::{FaultKind, FaultPlan, Op, Sim, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Knobs of the failure/recovery environment (cloud-side constants, not
/// strategy-dependent).
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Time to obtain and boot a replacement instance (spot/on-demand
    /// provisioning plus image boot and NCCL re-initialization).
    pub node_provision: SimTime,
    /// Per-node sustained read bandwidth from the checkpoint store
    /// (object storage through the host), bytes/s.
    pub checkpoint_read_bw: f64,
    /// Per-node sustained write bandwidth to the checkpoint store, bytes/s.
    pub checkpoint_write_bw: f64,
    /// How often a checkpoint-dependent policy writes one.
    pub checkpoint_interval: SimTime,
    /// Replication-protected policies still checkpoint (to survive losing a
    /// whole replication set), but this many times less often.
    pub peer_copy_ckpt_dilation: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            node_provision: SimTime::from_secs(90),
            checkpoint_read_bw: 1.0e9,
            checkpoint_write_bw: 0.8e9,
            checkpoint_interval: SimTime::from_secs(20 * 60),
            peer_copy_ckpt_dilation: 8,
        }
    }
}

/// How a strategy can restore the model states a dead node held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Lost shards survive on replication-group peers on other nodes; copy
    /// them P2P to the replacement node.
    PeerCopy {
        /// Number of full model-state replicas in the cluster (`n / p_opt`).
        replication: usize,
    },
    /// No off-node replica exists; the whole cluster reloads the latest
    /// checkpoint and redoes the work since it was written.
    CheckpointReload,
}

impl RecoveryPolicy {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::PeerCopy { .. } => "peer-copy",
            RecoveryPolicy::CheckpointReload => "checkpoint-reload",
        }
    }
}

/// Breakdown of restoring training after a single node loss.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryTime {
    /// Policy this breakdown was computed under.
    pub policy: RecoveryPolicy,
    /// Replacement-instance provisioning time (both policies pay it).
    pub provision: SimTime,
    /// Time to restore the lost model states: P2P shard copy (peer-copy)
    /// or parallel checkpoint read (checkpoint-reload).
    pub state_restore: SimTime,
    /// Expected redone work per failure: the interrupted iteration
    /// (peer-copy) or half a checkpoint interval of training
    /// (checkpoint-reload).
    pub lost_work: SimTime,
}

impl RecoveryTime {
    /// Total time from the failure until training is back to the point it
    /// had reached when the node died.
    pub fn total(&self) -> SimTime {
        self.provision + self.state_restore + self.lost_work
    }
}

/// Goodput accounting of a training run over a failure timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Strategy label (e.g. `"MiCS(p=8)"`).
    pub label: String,
    /// Recovery policy the strategy resolves to.
    pub policy: RecoveryPolicy,
    /// Failure-free iteration time.
    pub iter_time: SimTime,
    /// Recovery breakdown of one node loss.
    pub per_failure: SimTime,
    /// Node losses within the horizon.
    pub failures: usize,
    /// Total time spent provisioning + restoring state.
    pub downtime: SimTime,
    /// Total redone training time.
    pub lost_work: SimTime,
    /// Total time stalled writing periodic checkpoints.
    pub checkpoint_overhead: SimTime,
    /// Wall-clock window the timeline covers.
    pub horizon: SimTime,
    /// Fraction of the horizon spent making forward progress.
    pub goodput_fraction: f64,
    /// Failure-free throughput × goodput fraction.
    pub effective_samples_per_sec: f64,
    /// Fingerprint of the fault timeline the report was computed from
    /// (equal seeds ⇒ equal fingerprints ⇒ equal reports).
    pub fault_fingerprint: u64,
}

fn model_state_bytes(job: &TrainingJob) -> u64 {
    // Per replica: params + grads in the training dtype, plus fp32 master
    // weights and two Adam moments (12 B/param) — ZeRO's 16ψ for fp16.
    let dtype = job.workload.param_dtype_bytes;
    job.workload.total_params() * (2 * dtype + 12)
}

fn checkpoint_bytes(job: &TrainingJob) -> u64 {
    // Checkpoints persist params + optimizer states; gradients are not
    // checkpointed.
    let dtype = job.workload.param_dtype_bytes;
    job.workload.total_params() * (dtype + 12)
}

/// An off-node replication-group peer holding `lost`'s shard, if any.
/// Peers of rank `r` are the ranks `g·p + (r mod p)` of the other partition
/// groups; the donor load is spread over groups by the lost rank's local
/// index so one donor node does not serve every copy.
fn off_node_donor(job: &TrainingJob, lost: Rank) -> Option<Rank> {
    let n = job.cluster.total_devices();
    let p = job.strategy.plan(n).p_opt;
    let groups = n / p;
    let local = lost.0 % p;
    let own = lost.0 / p;
    let dead = job.cluster.node_of(lost);
    // Try every other group, starting at a local-index-dependent rotation
    // so the k concurrent copies spread over distinct donor nodes.
    (0..groups.saturating_sub(1))
        .map(|i| {
            let offset = 1 + (i + local) % (groups - 1);
            Rank(((own + offset) % groups) * p + local)
        })
        .find(|&peer| job.cluster.node_of(peer) != dead)
}

/// Resolve the recovery policy of a job: peer-copy when every rank of a
/// lost node has an off-node replica, checkpoint-reload otherwise.
pub fn policy_for(job: &TrainingJob) -> RecoveryPolicy {
    let n = job.cluster.total_devices();
    let p_opt = job.strategy.plan(n).p_opt;
    let all_have_donors =
        job.cluster.ranks_on_node(NodeId(0)).all(|r| off_node_donor(job, r).is_some());
    if p_opt < n && all_have_donors {
        RecoveryPolicy::PeerCopy { replication: n / p_opt }
    } else {
        RecoveryPolicy::CheckpointReload
    }
}

/// Cost of restoring training after losing one node (node 0 WLOG — the
/// topology is symmetric), under `job`'s resolved policy.
pub fn recovery_time(job: &TrainingJob, cfg: &RecoveryConfig, iter_time: SimTime) -> RecoveryTime {
    let policy = policy_for(job);
    match policy {
        RecoveryPolicy::PeerCopy { .. } => RecoveryTime {
            policy,
            provision: cfg.node_provision,
            state_restore: peer_copy_time(job),
            lost_work: iter_time,
        },
        RecoveryPolicy::CheckpointReload => {
            let per_node = checkpoint_bytes(job) as f64 / job.cluster.nodes as f64;
            let read = SimTime::from_secs_f64(per_node / cfg.checkpoint_read_bw);
            RecoveryTime {
                policy,
                provision: cfg.node_provision,
                state_restore: read,
                // Failures are uniform within a checkpoint interval, so half
                // of one is redone on average; the seeded timeline walk in
                // `simulate_with_failures` uses each failure's exact phase.
                lost_work: SimTime::from_nanos(cfg.checkpoint_interval.as_nanos() / 2),
            }
        }
    }
}

/// Simulate the P2P shard copies that rebuild a replacement for node 0 on
/// the cluster's own fabric: each lost rank's shard leaves its donor's NIC
/// and enters the replacement node's NIC, so the k concurrent pulls share
/// (and are bottlenecked by) the replacement's ingress bandwidth exactly as
/// real restore traffic would be.
fn peer_copy_time(job: &TrainingJob) -> SimTime {
    let n = job.cluster.total_devices();
    let p_opt = job.strategy.plan(n).p_opt;
    let shard = model_state_bytes(job) / p_opt as u64;
    let alpha = job.cluster.latencies().inter;
    let mut sim = Sim::new();
    let fabric = job.cluster.build_fabric(&mut sim);
    for lost in job.cluster.ranks_on_node(NodeId(0)) {
        let donor = off_node_donor(job, lost).expect("policy_for guarantees donors");
        let s = sim.add_stream(format!("restore[{}]", lost.0));
        sim.push(s, Op::transfer(fabric.nic_of(&job.cluster, donor), shard, alpha));
        sim.push(s, Op::transfer(fabric.nic[0], shard, alpha));
    }
    sim.run().expect("restore program cannot deadlock").makespan
}

/// Walk a seeded failure timeline and account goodput.
///
/// Crashes of `failures` that land inside `horizon` each cost one
/// [`recovery_time`] (provision + restore + redone work, with the
/// checkpoint-reload policy's redone work computed from the failure's exact
/// phase within the checkpoint cadence); checkpoint-dependent policies also
/// pay periodic write stalls. Everything is deterministic in the plan's
/// seed.
pub fn simulate_with_failures(
    job: &TrainingJob,
    cfg: &RecoveryConfig,
    failures: &FaultPlan,
    horizon: SimTime,
) -> Result<RecoveryReport, OomError> {
    let report = crate::simulate(job)?;
    let iter_time = report.iter_time;
    let rec = recovery_time(job, cfg, iter_time);

    let mut downtime = SimTime::ZERO;
    let mut lost_work = SimTime::ZERO;
    let mut count = 0usize;
    for (at, _node) in failures.crashes() {
        if at >= horizon {
            continue;
        }
        count += 1;
        downtime += rec.provision + rec.state_restore;
        lost_work += match rec.policy {
            RecoveryPolicy::PeerCopy { .. } => iter_time,
            RecoveryPolicy::CheckpointReload => {
                // Work since the last periodic checkpoint at this failure's
                // wall-clock phase.
                SimTime::from_nanos(at.as_nanos() % cfg.checkpoint_interval.as_nanos().max(1))
            }
        };
    }

    let interval = match rec.policy {
        RecoveryPolicy::PeerCopy { .. } => SimTime::from_nanos(
            cfg.checkpoint_interval.as_nanos() * cfg.peer_copy_ckpt_dilation.max(1) as u64,
        ),
        RecoveryPolicy::CheckpointReload => cfg.checkpoint_interval,
    };
    let write = SimTime::from_secs_f64(
        checkpoint_bytes(job) as f64 / job.cluster.nodes as f64 / cfg.checkpoint_write_bw,
    );
    let writes = horizon.as_nanos() / interval.as_nanos().max(1);
    let checkpoint_overhead = SimTime::from_nanos(write.as_nanos() * writes);

    let stalled = downtime + lost_work + checkpoint_overhead;
    let goodput_fraction = if stalled >= horizon {
        0.0
    } else {
        (horizon - stalled).as_secs_f64() / horizon.as_secs_f64()
    };
    Ok(RecoveryReport {
        label: report.label,
        policy: rec.policy,
        iter_time,
        per_failure: rec.total(),
        failures: count,
        downtime,
        lost_work,
        checkpoint_overhead,
        horizon,
        goodput_fraction,
        effective_samples_per_sec: report.samples_per_sec * goodput_fraction,
        fault_fingerprint: failures.fingerprint(),
    })
}

/// Convenience: the Poisson node-loss trace `simulate_with_failures`
/// expects, seeded and sized for `job`'s cluster. Failed nodes are assumed
/// replaced, so the process keeps its rate for the whole horizon.
pub fn poisson_failures(
    job: &TrainingJob,
    seed: u64,
    mean_between: SimTime,
    horizon: SimTime,
) -> FaultPlan {
    FaultPlan::new(seed).with_replaced_poisson_crashes(job.cluster.nodes, mean_between, horizon)
}

/// Convenience: the capacity-fluctuation trace [`simulate_elastic`] expects
/// — seeded spot preemptions paired with later capacity returns, sized for
/// `job`'s cluster.
pub fn spot_plan(
    job: &TrainingJob,
    seed: u64,
    mean_between: SimTime,
    mean_outage: SimTime,
    horizon: SimTime,
) -> FaultPlan {
    FaultPlan::new(seed).with_spot_trace(job.cluster.nodes, mean_between, mean_outage, horizon)
}

/// How a job responds to spot-capacity fluctuation (preemptions paired with
/// later capacity returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpotPolicy {
    /// Reshape the geometry at every capacity change: after a preemption the
    /// job shrinks onto the largest feasible surviving world and keeps
    /// training; when capacity returns it grows back. Each transition stalls
    /// for a state reshard plus the interrupted iteration (grow additionally
    /// pays instance provisioning).
    Elastic,
    /// The geometry is fixed at the full cluster: training stalls whenever
    /// any slot is away, and resuming once capacity is back costs a
    /// checkpoint reload plus the work since the last periodic write.
    Static,
}

impl SpotPolicy {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            SpotPolicy::Elastic => "elastic",
            SpotPolicy::Static => "static",
        }
    }
}

/// Goodput accounting of a run over a spot capacity trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticReport {
    /// Strategy label (e.g. `"MiCS(p=8)"`).
    pub label: String,
    /// Policy the walk was accounted under.
    pub policy: SpotPolicy,
    /// Preemptions within the horizon.
    pub preemptions: usize,
    /// Capacity returns the job re-admitted (elastic grows; for the static
    /// policy, outage ends).
    pub grows: usize,
    /// Geometry transitions executed (elastic only: shrinks + grows).
    pub reshapes: usize,
    /// Total stall across transitions: reshard traffic, interrupted
    /// iterations, and (on grow / static resume) provisioning and
    /// checkpoint reads.
    pub transition_overhead: SimTime,
    /// Total time at zero forward progress (transitions, capacity the job
    /// cannot fit on, static-policy outages).
    pub stalled: SimTime,
    /// Total time stalled writing periodic checkpoints.
    pub checkpoint_overhead: SimTime,
    /// Smallest node count the job actually trained on.
    pub min_nodes: usize,
    /// Wall-clock window the trace covers.
    pub horizon: SimTime,
    /// Forward progress relative to a failure-free full-cluster run:
    /// segments at a shrunken world count at that world's fraction of full
    /// throughput.
    pub goodput_fraction: f64,
    /// Failure-free full-cluster throughput × goodput fraction.
    pub effective_samples_per_sec: f64,
    /// Fingerprint of the capacity trace (equal seeds ⇒ equal reports).
    pub fault_fingerprint: u64,
}

/// `job` resized to `nodes` instances of the same type.
fn job_at(job: &TrainingJob, nodes: usize) -> TrainingJob {
    TrainingJob {
        workload: job.workload.clone(),
        cluster: ClusterSpec::new(job.cluster.instance.clone(), nodes),
        strategy: job.strategy.clone(),
        accum_steps: job.accum_steps,
    }
}

/// Can the strategy's geometry be emitted at `nodes` at all? (The MiCS
/// partition size must divide the device count; memory feasibility is
/// checked separately by `simulate`.)
fn geometry_fits(job: &TrainingJob, nodes: usize) -> bool {
    let devices = job.cluster.instance.gpus_per_node * nodes;
    let p = match &job.strategy {
        crate::Strategy::Mics(cfg) => cfg.partition_size,
        _ => 1,
    };
    devices >= p && devices.is_multiple_of(p)
}

/// Simulate the all-to-all shard movement of a reshape onto a `nodes`-wide
/// world: every node of the destination geometry ingests its share of the
/// model states through its own NIC, concurrently — the same fabric model
/// training and peer-copy recovery use.
fn reshard_time(job: &TrainingJob, nodes: usize) -> SimTime {
    let cl = ClusterSpec::new(job.cluster.instance.clone(), nodes);
    let per_node = model_state_bytes(job) / nodes.max(1) as u64;
    let alpha = cl.latencies().inter;
    let mut sim = Sim::new();
    let fabric = cl.build_fabric(&mut sim);
    for node in 0..nodes {
        let s = sim.add_stream(format!("reshard[{node}]"));
        sim.push(s, Op::transfer(fabric.nic[node], per_node, alpha));
    }
    sim.run().expect("reshard program cannot deadlock").makespan
}

/// Throughput (and iteration time) the elastic scheduler achieves with
/// `avail` nodes of capacity: the largest feasible world `≤ avail` that the
/// geometry and memory model admit, or `None` when even one node cannot
/// hold the job (progress stalls until capacity returns).
struct SpotRates {
    /// `avail nodes → (world used, samples/s, iter time)`.
    cache: HashMap<usize, Option<(usize, f64, SimTime)>>,
}

impl SpotRates {
    fn new() -> Self {
        SpotRates { cache: HashMap::new() }
    }

    fn at(&mut self, job: &TrainingJob, avail: usize) -> Option<(usize, f64, SimTime)> {
        if let Some(hit) = self.cache.get(&avail) {
            return *hit;
        }
        let mut resolved = None;
        for nodes in (1..=avail).rev() {
            if !geometry_fits(job, nodes) {
                continue;
            }
            if let Ok(r) = crate::simulate(&job_at(job, nodes)) {
                resolved = Some((nodes, r.samples_per_sec, r.iter_time));
                break;
            }
        }
        self.cache.insert(avail, resolved);
        resolved
    }
}

/// Walk a seeded spot capacity trace ([`FaultPlan::with_spot_trace`]) and
/// account goodput under `policy`.
///
/// The elastic policy reshapes at every capacity change; each transition is
/// a full stall of `reshard_time` (shard movement onto the destination
/// world's NICs) plus the interrupted iteration, and grows additionally pay
/// `node_provision` (the walker charges provisioning as part of the grow
/// stall — a deliberate, slightly pessimistic simplification that keeps the
/// timeline single-threaded). The static policy stalls whenever any slot is
/// away and pays a checkpoint reload (read + redone work since the last
/// periodic write) to resume. Replication-protected elastic runs checkpoint
/// at the dilated cadence; the static policy depends on checkpoints and
/// pays the base cadence. Everything is deterministic in the plan's seed.
pub fn simulate_elastic(
    job: &TrainingJob,
    cfg: &RecoveryConfig,
    trace: &FaultPlan,
    horizon: SimTime,
    policy: SpotPolicy,
) -> Result<ElasticReport, OomError> {
    let full = crate::simulate(job)?;
    let nodes = job.cluster.nodes;
    let mut rates = SpotRates::new();

    let mut away: BTreeSet<usize> = BTreeSet::new();
    let mut now = SimTime::ZERO;
    let mut idle_until = SimTime::ZERO;
    let mut progress_secs = 0.0f64;
    let mut stalled = SimTime::ZERO;
    let mut transition_overhead = SimTime::ZERO;
    let mut preemptions = 0usize;
    let mut grows = 0usize;
    let mut reshapes = 0usize;
    let mut min_nodes = nodes;
    // First preemption of the current static-policy outage — the phase the
    // checkpoint reload rewinds to on resume.
    let mut outage_began: Option<SimTime> = None;

    // Rate relative to the failure-free full cluster while `away` slots are
    // gone; also reports the world actually trained on.
    fn rel_rate(
        policy: SpotPolicy,
        rates: &mut SpotRates,
        job: &TrainingJob,
        full_sps: f64,
        nodes: usize,
        away: usize,
    ) -> (f64, usize) {
        match policy {
            SpotPolicy::Static => {
                if away == 0 {
                    (1.0, nodes)
                } else {
                    (0.0, nodes)
                }
            }
            SpotPolicy::Elastic => match rates.at(job, nodes - away) {
                Some((world, sps, _)) => (sps / full_sps, world),
                None => (0.0, nodes),
            },
        }
    }

    // Advance the timeline cursor to `to`: drain any transition stall
    // first, then make progress at `rate` for the remainder.
    let advance = |to: SimTime,
                   now: &mut SimTime,
                   idle_until: &mut SimTime,
                   (rate, world): (f64, usize),
                   progress_secs: &mut f64,
                   stalled: &mut SimTime,
                   min_nodes: &mut usize| {
        if *idle_until > *now {
            let idle_end = (*idle_until).min(to);
            *stalled += idle_end - *now;
            *now = idle_end;
        }
        if to > *now {
            let span = to - *now;
            if rate > 0.0 {
                *progress_secs += span.as_secs_f64() * rate;
                *min_nodes = (*min_nodes).min(world);
            } else {
                *stalled += span;
            }
            *now = to;
        }
    };

    for ev in trace.events() {
        if ev.at >= horizon {
            continue;
        }
        match ev.kind {
            FaultKind::Crash => {
                let r = rel_rate(policy, &mut rates, job, full.samples_per_sec, nodes, away.len());
                advance(
                    ev.at,
                    &mut now,
                    &mut idle_until,
                    r,
                    &mut progress_secs,
                    &mut stalled,
                    &mut min_nodes,
                );
                away.insert(ev.node);
                preemptions += 1;
                match policy {
                    SpotPolicy::Elastic => {
                        // Shrink onto the survivors: pay the interrupted
                        // iteration plus the reshard onto the new world.
                        let pre_iter = rates
                            .at(job, nodes - (away.len() - 1))
                            .map(|(_, _, it)| it)
                            .unwrap_or(full.iter_time);
                        let dest = rates.at(job, nodes - away.len());
                        let cost = match dest {
                            Some((world, _, _)) => pre_iter + reshard_time(job, world),
                            // Nothing fits on the survivors: no reshape to
                            // run, progress simply stalls until capacity
                            // returns.
                            None => SimTime::ZERO,
                        };
                        if cost > SimTime::ZERO {
                            reshapes += 1;
                            transition_overhead += cost;
                            idle_until = idle_until.max(now) + cost;
                        }
                    }
                    SpotPolicy::Static => {
                        outage_began.get_or_insert(ev.at);
                    }
                }
            }
            FaultKind::Return => {
                let r = rel_rate(policy, &mut rates, job, full.samples_per_sec, nodes, away.len());
                advance(
                    ev.at,
                    &mut now,
                    &mut idle_until,
                    r,
                    &mut progress_secs,
                    &mut stalled,
                    &mut min_nodes,
                );
                if !away.remove(&ev.node) {
                    continue;
                }
                grows += 1;
                match policy {
                    SpotPolicy::Elastic => {
                        let dest = rates.at(job, nodes - away.len());
                        if let Some((world, _, iter)) = dest {
                            let cost = cfg.node_provision + reshard_time(job, world) + iter;
                            reshapes += 1;
                            transition_overhead += cost;
                            idle_until = idle_until.max(now) + cost;
                        }
                    }
                    SpotPolicy::Static => {
                        if away.is_empty() {
                            // Whole cluster back: provision the rejoined
                            // instance, reload the checkpoint everywhere,
                            // and redo the work since the write preceding
                            // the outage.
                            let began = outage_began.take().unwrap_or(ev.at);
                            let per_node = checkpoint_bytes(job) as f64 / nodes as f64;
                            let read = SimTime::from_secs_f64(per_node / cfg.checkpoint_read_bw);
                            let redo = SimTime::from_nanos(
                                began.as_nanos() % cfg.checkpoint_interval.as_nanos().max(1),
                            );
                            let cost = cfg.node_provision + read + redo;
                            transition_overhead += cost;
                            idle_until = idle_until.max(now) + cost;
                        }
                    }
                }
            }
            FaultKind::NicDegrade { .. } | FaultKind::NicRestore => {}
        }
    }
    let r = rel_rate(policy, &mut rates, job, full.samples_per_sec, nodes, away.len());
    advance(
        horizon,
        &mut now,
        &mut idle_until,
        r,
        &mut progress_secs,
        &mut stalled,
        &mut min_nodes,
    );

    let interval = match policy {
        SpotPolicy::Elastic => SimTime::from_nanos(
            cfg.checkpoint_interval.as_nanos() * cfg.peer_copy_ckpt_dilation.max(1) as u64,
        ),
        SpotPolicy::Static => cfg.checkpoint_interval,
    };
    let write = SimTime::from_secs_f64(
        checkpoint_bytes(job) as f64 / job.cluster.nodes as f64 / cfg.checkpoint_write_bw,
    );
    let writes = horizon.as_nanos() / interval.as_nanos().max(1);
    let checkpoint_overhead = SimTime::from_nanos(write.as_nanos() * writes);

    let goodput_fraction =
        ((progress_secs - checkpoint_overhead.as_secs_f64()) / horizon.as_secs_f64()).max(0.0);
    Ok(ElasticReport {
        label: full.label,
        policy,
        preemptions,
        grows,
        reshapes,
        transition_overhead,
        stalled,
        checkpoint_overhead,
        min_nodes,
        horizon,
        goodput_fraction,
        effective_samples_per_sec: full.samples_per_sec * goodput_fraction,
        fault_fingerprint: trace.fingerprint(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MicsConfig, Strategy, ZeroStage};
    use mics_cluster::{ClusterSpec, InstanceType};
    use mics_model::TransformerConfig;

    fn job(nodes: usize, strategy: Strategy) -> TrainingJob {
        TrainingJob {
            workload: TransformerConfig::bert_10b().workload(8),
            cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes),
            strategy,
            accum_steps: 4,
        }
    }

    #[test]
    fn policies_follow_replication_topology() {
        let mics = job(8, Strategy::Mics(MicsConfig::paper_defaults(8)));
        assert_eq!(policy_for(&mics), RecoveryPolicy::PeerCopy { replication: 8 });
        let z3 = job(8, Strategy::Zero(ZeroStage::Three));
        assert_eq!(policy_for(&z3), RecoveryPolicy::CheckpointReload);
        // MiCS degenerates to ZeRO-3's policy when p = n (no replicas).
        let mics_pn = job(8, Strategy::Mics(MicsConfig::paper_defaults(64)));
        assert_eq!(policy_for(&mics_pn), RecoveryPolicy::CheckpointReload);
        // DDP replicates everything: peer copy with n replicas.
        let ddp = job(8, Strategy::Ddp);
        assert_eq!(policy_for(&ddp), RecoveryPolicy::PeerCopy { replication: 64 });
        // Single node: replicas die with the node, regardless of p.
        let single = job(1, Strategy::Mics(MicsConfig::paper_defaults(1)));
        assert_eq!(policy_for(&single), RecoveryPolicy::CheckpointReload);
    }

    #[test]
    fn donors_are_off_node_replication_peers() {
        let j = job(8, Strategy::Mics(MicsConfig::paper_defaults(8)));
        for lost in j.cluster.ranks_on_node(NodeId(0)) {
            let donor = off_node_donor(&j, lost).unwrap();
            assert_ne!(j.cluster.node_of(donor), NodeId(0));
            assert_eq!(donor.0 % 8, lost.0 % 8, "donor must hold the same shard");
        }
    }

    #[test]
    fn mics_recovers_strictly_faster_than_zero3() {
        // The acceptance bar: BERT 10B on 64 GPUs — restoring a lost node
        // from replication-group peers beats a cluster-wide checkpoint
        // reload plus redone work.
        let cfg = RecoveryConfig::default();
        let iter = SimTime::from_secs(2);
        let mics =
            recovery_time(&job(8, Strategy::Mics(MicsConfig::paper_defaults(8))), &cfg, iter);
        let z3 = recovery_time(&job(8, Strategy::Zero(ZeroStage::Three)), &cfg, iter);
        assert!(
            mics.total() < z3.total(),
            "MiCS {:?} not faster than ZeRO-3 {:?}",
            mics.total(),
            z3.total()
        );
        // The structural reason: MiCS redoes one iteration, ZeRO-3 redoes
        // half a checkpoint interval.
        assert!(mics.lost_work < z3.lost_work);
    }

    #[test]
    fn peer_copy_is_ingress_bound() {
        // k ranks × (16ψ/p) bytes through one 12.5 GB/s NIC: 8 × 20 GB at
        // 12.5 GB/s ≈ 12.8 s. Provisioning dominates; the copy must land in
        // the right decade and scale down with p.
        let cfg = RecoveryConfig::default();
        let iter = SimTime::from_secs(2);
        let p8 = recovery_time(&job(8, Strategy::Mics(MicsConfig::paper_defaults(8))), &cfg, iter);
        let p16 =
            recovery_time(&job(8, Strategy::Mics(MicsConfig::paper_defaults(16))), &cfg, iter);
        assert!(p8.state_restore > SimTime::from_secs(10));
        assert!(p8.state_restore < SimTime::from_secs(20));
        assert!(
            p16.state_restore < p8.state_restore,
            "larger partition groups leave smaller per-rank shards to copy"
        );
    }

    #[test]
    fn failure_timeline_is_deterministic() {
        let j = job(2, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let cfg = RecoveryConfig::default();
        let horizon = SimTime::from_secs(6 * 3600);
        let run = || {
            let plan = poisson_failures(&j, 77, SimTime::from_secs(3600), horizon);
            simulate_with_failures(&j, &cfg, &plan, horizon).unwrap()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.failures > 0, "6 h horizon at 1 h MTBF should fail at least once");
        let other = {
            let plan = poisson_failures(&j, 78, SimTime::from_secs(3600), horizon);
            simulate_with_failures(&j, &cfg, &plan, horizon).unwrap()
        };
        assert_ne!(a.fault_fingerprint, other.fault_fingerprint);
    }

    #[test]
    fn elastic_beats_static_on_spot_capacity() {
        // The elastic dividend: a MiCS job that keeps training on the
        // surviving capacity out-earns one that stalls until every slot
        // comes back — on the same seeded spot trace.
        let j = job(4, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let cfg = RecoveryConfig::default();
        let horizon = SimTime::from_secs(24 * 3600);
        let plan =
            spot_plan(&j, 11, SimTime::from_secs(2 * 3600), SimTime::from_secs(1800), horizon);
        let el = simulate_elastic(&j, &cfg, &plan, horizon, SpotPolicy::Elastic).unwrap();
        let st = simulate_elastic(&j, &cfg, &plan, horizon, SpotPolicy::Static).unwrap();
        assert!(el.preemptions > 0, "24 h at 2 h MTBF should preempt");
        assert_eq!(el.preemptions, st.preemptions, "same trace, same preemptions");
        assert!(
            el.goodput_fraction > st.goodput_fraction,
            "elastic {} should beat static {}",
            el.goodput_fraction,
            st.goodput_fraction
        );
        // Elastic actually shrank: it trained below the full node count and
        // executed reshapes in both directions.
        assert!(el.min_nodes < 4, "elastic should have trained on survivors");
        assert_eq!(st.min_nodes, 4, "static never changes geometry");
        assert!(el.reshapes >= el.grows + el.preemptions.min(el.grows));
        assert_eq!(st.reshapes, 0);
    }

    #[test]
    fn elastic_spot_walk_is_deterministic() {
        let j = job(2, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let cfg = RecoveryConfig::default();
        let horizon = SimTime::from_secs(12 * 3600);
        let run = |seed| {
            let plan =
                spot_plan(&j, seed, SimTime::from_secs(3600), SimTime::from_secs(600), horizon);
            simulate_elastic(&j, &cfg, &plan, horizon, SpotPolicy::Elastic).unwrap()
        };
        let a = run(5);
        assert_eq!(a, run(5));
        assert_ne!(a.fault_fingerprint, run(6).fault_fingerprint);
    }

    #[test]
    fn elastic_goodput_degrades_with_spot_churn() {
        let j = job(4, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let cfg = RecoveryConfig::default();
        let horizon = SimTime::from_secs(24 * 3600);
        let good = |mtbf_secs: u64| {
            let plan =
                spot_plan(&j, 11, SimTime::from_secs(mtbf_secs), SimTime::from_secs(1800), horizon);
            simulate_elastic(&j, &cfg, &plan, horizon, SpotPolicy::Elastic)
                .unwrap()
                .goodput_fraction
        };
        let rare = good(12 * 3600);
        let churny = good(3600);
        assert!(rare > churny, "{rare} vs {churny}");
    }

    #[test]
    fn quiet_trace_gives_near_full_goodput_and_no_reshapes() {
        let j = job(2, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let cfg = RecoveryConfig::default();
        let horizon = SimTime::from_secs(3600);
        let plan = FaultPlan::new(1); // no events
        for policy in [SpotPolicy::Elastic, SpotPolicy::Static] {
            let r = simulate_elastic(&j, &cfg, &plan, horizon, policy).unwrap();
            assert_eq!(r.preemptions, 0);
            assert_eq!(r.reshapes, 0);
            assert_eq!(r.min_nodes, 2);
            assert!(r.goodput_fraction > 0.9, "{policy:?}: {}", r.goodput_fraction);
            assert!(r.goodput_fraction <= 1.0);
        }
    }

    #[test]
    fn goodput_degrades_with_failure_rate_and_mics_holds_more() {
        let mics = job(2, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let z3 = job(2, Strategy::Zero(ZeroStage::Three));
        let cfg = RecoveryConfig::default();
        let horizon = SimTime::from_secs(24 * 3600);
        let good = |j: &TrainingJob, mtbf_secs: u64| {
            let plan = poisson_failures(j, 7, SimTime::from_secs(mtbf_secs), horizon);
            simulate_with_failures(j, &cfg, &plan, horizon).unwrap().goodput_fraction
        };
        let mics_rare = good(&mics, 12 * 3600);
        let mics_often = good(&mics, 3600);
        assert!(mics_rare > mics_often, "{mics_rare} vs {mics_often}");
        // Same seeded timeline: MiCS keeps more goodput than ZeRO-3.
        let z3_often = good(&z3, 3600);
        assert!(mics_often > z3_often, "{mics_often} vs {z3_often}");
    }
}
