//! Recovery from node loss — the fault-tolerance dividend of MiCS's
//! replication topology (extension beyond the paper).
//!
//! MiCS partitions model states over a partition group of `p` devices and
//! *replicates* them across the `n/p` partition groups (§3.2). That
//! replication is introduced for communication efficiency, but it also
//! changes what a node loss means:
//!
//! * **MiCS (`p_opt < n`)**: the dead node's shards still exist on its
//!   replication-group peers in other partition groups. Recovery is a
//!   provision-and-copy: spin up a replacement instance and pull each lost
//!   rank's shard P2P from an off-node peer, cost-modeled on the same
//!   simulated NIC resources training uses ([`recovery_time`]). No training
//!   state is lost beyond the interrupted iteration.
//! * **ZeRO-3 (`p_opt = n`)**: every shard exists exactly once, so a node
//!   loss destroys state that exists nowhere else. The whole cluster must
//!   reload the latest checkpoint and redo the work since it was written.
//!
//! [`simulate_with_failures`] walks a seeded [`FaultPlan`] crash timeline
//! and reports per-failure recovery time and goodput for either policy;
//! because the plan is seeded and the cost models are deterministic, the
//! same seed always yields the identical report.

use crate::memory::OomError;
use crate::TrainingJob;
use mics_cluster::{NodeId, Rank};
use mics_simnet::{FaultPlan, Op, Sim, SimTime};

/// Knobs of the failure/recovery environment (cloud-side constants, not
/// strategy-dependent).
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Time to obtain and boot a replacement instance (spot/on-demand
    /// provisioning plus image boot and NCCL re-initialization).
    pub node_provision: SimTime,
    /// Per-node sustained read bandwidth from the checkpoint store
    /// (object storage through the host), bytes/s.
    pub checkpoint_read_bw: f64,
    /// Per-node sustained write bandwidth to the checkpoint store, bytes/s.
    pub checkpoint_write_bw: f64,
    /// How often a checkpoint-dependent policy writes one.
    pub checkpoint_interval: SimTime,
    /// Replication-protected policies still checkpoint (to survive losing a
    /// whole replication set), but this many times less often.
    pub peer_copy_ckpt_dilation: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            node_provision: SimTime::from_secs(90),
            checkpoint_read_bw: 1.0e9,
            checkpoint_write_bw: 0.8e9,
            checkpoint_interval: SimTime::from_secs(20 * 60),
            peer_copy_ckpt_dilation: 8,
        }
    }
}

/// How a strategy can restore the model states a dead node held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Lost shards survive on replication-group peers on other nodes; copy
    /// them P2P to the replacement node.
    PeerCopy {
        /// Number of full model-state replicas in the cluster (`n / p_opt`).
        replication: usize,
    },
    /// No off-node replica exists; the whole cluster reloads the latest
    /// checkpoint and redoes the work since it was written.
    CheckpointReload,
}

impl RecoveryPolicy {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::PeerCopy { .. } => "peer-copy",
            RecoveryPolicy::CheckpointReload => "checkpoint-reload",
        }
    }
}

/// Breakdown of restoring training after a single node loss.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryTime {
    /// Policy this breakdown was computed under.
    pub policy: RecoveryPolicy,
    /// Replacement-instance provisioning time (both policies pay it).
    pub provision: SimTime,
    /// Time to restore the lost model states: P2P shard copy (peer-copy)
    /// or parallel checkpoint read (checkpoint-reload).
    pub state_restore: SimTime,
    /// Expected redone work per failure: the interrupted iteration
    /// (peer-copy) or half a checkpoint interval of training
    /// (checkpoint-reload).
    pub lost_work: SimTime,
}

impl RecoveryTime {
    /// Total time from the failure until training is back to the point it
    /// had reached when the node died.
    pub fn total(&self) -> SimTime {
        self.provision + self.state_restore + self.lost_work
    }
}

/// Goodput accounting of a training run over a failure timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Strategy label (e.g. `"MiCS(p=8)"`).
    pub label: String,
    /// Recovery policy the strategy resolves to.
    pub policy: RecoveryPolicy,
    /// Failure-free iteration time.
    pub iter_time: SimTime,
    /// Recovery breakdown of one node loss.
    pub per_failure: SimTime,
    /// Node losses within the horizon.
    pub failures: usize,
    /// Total time spent provisioning + restoring state.
    pub downtime: SimTime,
    /// Total redone training time.
    pub lost_work: SimTime,
    /// Total time stalled writing periodic checkpoints.
    pub checkpoint_overhead: SimTime,
    /// Wall-clock window the timeline covers.
    pub horizon: SimTime,
    /// Fraction of the horizon spent making forward progress.
    pub goodput_fraction: f64,
    /// Failure-free throughput × goodput fraction.
    pub effective_samples_per_sec: f64,
    /// Fingerprint of the fault timeline the report was computed from
    /// (equal seeds ⇒ equal fingerprints ⇒ equal reports).
    pub fault_fingerprint: u64,
}

fn model_state_bytes(job: &TrainingJob) -> u64 {
    // Per replica: params + grads in the training dtype, plus fp32 master
    // weights and two Adam moments (12 B/param) — ZeRO's 16ψ for fp16.
    let dtype = job.workload.param_dtype_bytes;
    job.workload.total_params() * (2 * dtype + 12)
}

fn checkpoint_bytes(job: &TrainingJob) -> u64 {
    // Checkpoints persist params + optimizer states; gradients are not
    // checkpointed.
    let dtype = job.workload.param_dtype_bytes;
    job.workload.total_params() * (dtype + 12)
}

/// An off-node replication-group peer holding `lost`'s shard, if any.
/// Peers of rank `r` are the ranks `g·p + (r mod p)` of the other partition
/// groups; the donor load is spread over groups by the lost rank's local
/// index so one donor node does not serve every copy.
fn off_node_donor(job: &TrainingJob, lost: Rank) -> Option<Rank> {
    let n = job.cluster.total_devices();
    let p = job.strategy.plan(n).p_opt;
    let groups = n / p;
    let local = lost.0 % p;
    let own = lost.0 / p;
    let dead = job.cluster.node_of(lost);
    // Try every other group, starting at a local-index-dependent rotation
    // so the k concurrent copies spread over distinct donor nodes.
    (0..groups.saturating_sub(1))
        .map(|i| {
            let offset = 1 + (i + local) % (groups - 1);
            Rank(((own + offset) % groups) * p + local)
        })
        .find(|&peer| job.cluster.node_of(peer) != dead)
}

/// Resolve the recovery policy of a job: peer-copy when every rank of a
/// lost node has an off-node replica, checkpoint-reload otherwise.
pub fn policy_for(job: &TrainingJob) -> RecoveryPolicy {
    let n = job.cluster.total_devices();
    let p_opt = job.strategy.plan(n).p_opt;
    let all_have_donors =
        job.cluster.ranks_on_node(NodeId(0)).all(|r| off_node_donor(job, r).is_some());
    if p_opt < n && all_have_donors {
        RecoveryPolicy::PeerCopy { replication: n / p_opt }
    } else {
        RecoveryPolicy::CheckpointReload
    }
}

/// Cost of restoring training after losing one node (node 0 WLOG — the
/// topology is symmetric), under `job`'s resolved policy.
pub fn recovery_time(job: &TrainingJob, cfg: &RecoveryConfig, iter_time: SimTime) -> RecoveryTime {
    let policy = policy_for(job);
    match policy {
        RecoveryPolicy::PeerCopy { .. } => RecoveryTime {
            policy,
            provision: cfg.node_provision,
            state_restore: peer_copy_time(job),
            lost_work: iter_time,
        },
        RecoveryPolicy::CheckpointReload => {
            let per_node = checkpoint_bytes(job) as f64 / job.cluster.nodes as f64;
            let read = SimTime::from_secs_f64(per_node / cfg.checkpoint_read_bw);
            RecoveryTime {
                policy,
                provision: cfg.node_provision,
                state_restore: read,
                // Failures are uniform within a checkpoint interval, so half
                // of one is redone on average; the seeded timeline walk in
                // `simulate_with_failures` uses each failure's exact phase.
                lost_work: SimTime::from_nanos(cfg.checkpoint_interval.as_nanos() / 2),
            }
        }
    }
}

/// Simulate the P2P shard copies that rebuild a replacement for node 0 on
/// the cluster's own fabric: each lost rank's shard leaves its donor's NIC
/// and enters the replacement node's NIC, so the k concurrent pulls share
/// (and are bottlenecked by) the replacement's ingress bandwidth exactly as
/// real restore traffic would be.
fn peer_copy_time(job: &TrainingJob) -> SimTime {
    let n = job.cluster.total_devices();
    let p_opt = job.strategy.plan(n).p_opt;
    let shard = model_state_bytes(job) / p_opt as u64;
    let alpha = job.cluster.latencies().inter;
    let mut sim = Sim::new();
    let fabric = job.cluster.build_fabric(&mut sim);
    for lost in job.cluster.ranks_on_node(NodeId(0)) {
        let donor = off_node_donor(job, lost).expect("policy_for guarantees donors");
        let s = sim.add_stream(format!("restore[{}]", lost.0));
        sim.push(s, Op::transfer(fabric.nic_of(&job.cluster, donor), shard, alpha));
        sim.push(s, Op::transfer(fabric.nic[0], shard, alpha));
    }
    sim.run().expect("restore program cannot deadlock").makespan
}

/// Walk a seeded failure timeline and account goodput.
///
/// Crashes of `failures` that land inside `horizon` each cost one
/// [`recovery_time`] (provision + restore + redone work, with the
/// checkpoint-reload policy's redone work computed from the failure's exact
/// phase within the checkpoint cadence); checkpoint-dependent policies also
/// pay periodic write stalls. Everything is deterministic in the plan's
/// seed.
pub fn simulate_with_failures(
    job: &TrainingJob,
    cfg: &RecoveryConfig,
    failures: &FaultPlan,
    horizon: SimTime,
) -> Result<RecoveryReport, OomError> {
    let report = crate::simulate(job)?;
    let iter_time = report.iter_time;
    let rec = recovery_time(job, cfg, iter_time);

    let mut downtime = SimTime::ZERO;
    let mut lost_work = SimTime::ZERO;
    let mut count = 0usize;
    for (at, _node) in failures.crashes() {
        if at >= horizon {
            continue;
        }
        count += 1;
        downtime += rec.provision + rec.state_restore;
        lost_work += match rec.policy {
            RecoveryPolicy::PeerCopy { .. } => iter_time,
            RecoveryPolicy::CheckpointReload => {
                // Work since the last periodic checkpoint at this failure's
                // wall-clock phase.
                SimTime::from_nanos(at.as_nanos() % cfg.checkpoint_interval.as_nanos().max(1))
            }
        };
    }

    let interval = match rec.policy {
        RecoveryPolicy::PeerCopy { .. } => SimTime::from_nanos(
            cfg.checkpoint_interval.as_nanos() * cfg.peer_copy_ckpt_dilation.max(1) as u64,
        ),
        RecoveryPolicy::CheckpointReload => cfg.checkpoint_interval,
    };
    let write = SimTime::from_secs_f64(
        checkpoint_bytes(job) as f64 / job.cluster.nodes as f64 / cfg.checkpoint_write_bw,
    );
    let writes = horizon.as_nanos() / interval.as_nanos().max(1);
    let checkpoint_overhead = SimTime::from_nanos(write.as_nanos() * writes);

    let stalled = downtime + lost_work + checkpoint_overhead;
    let goodput_fraction = if stalled >= horizon {
        0.0
    } else {
        (horizon - stalled).as_secs_f64() / horizon.as_secs_f64()
    };
    Ok(RecoveryReport {
        label: report.label,
        policy: rec.policy,
        iter_time,
        per_failure: rec.total(),
        failures: count,
        downtime,
        lost_work,
        checkpoint_overhead,
        horizon,
        goodput_fraction,
        effective_samples_per_sec: report.samples_per_sec * goodput_fraction,
        fault_fingerprint: failures.fingerprint(),
    })
}

/// Convenience: the Poisson node-loss trace `simulate_with_failures`
/// expects, seeded and sized for `job`'s cluster. Failed nodes are assumed
/// replaced, so the process keeps its rate for the whole horizon.
pub fn poisson_failures(
    job: &TrainingJob,
    seed: u64,
    mean_between: SimTime,
    horizon: SimTime,
) -> FaultPlan {
    FaultPlan::new(seed).with_replaced_poisson_crashes(job.cluster.nodes, mean_between, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MicsConfig, Strategy, ZeroStage};
    use mics_cluster::{ClusterSpec, InstanceType};
    use mics_model::TransformerConfig;

    fn job(nodes: usize, strategy: Strategy) -> TrainingJob {
        TrainingJob {
            workload: TransformerConfig::bert_10b().workload(8),
            cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes),
            strategy,
            accum_steps: 4,
        }
    }

    #[test]
    fn policies_follow_replication_topology() {
        let mics = job(8, Strategy::Mics(MicsConfig::paper_defaults(8)));
        assert_eq!(policy_for(&mics), RecoveryPolicy::PeerCopy { replication: 8 });
        let z3 = job(8, Strategy::Zero(ZeroStage::Three));
        assert_eq!(policy_for(&z3), RecoveryPolicy::CheckpointReload);
        // MiCS degenerates to ZeRO-3's policy when p = n (no replicas).
        let mics_pn = job(8, Strategy::Mics(MicsConfig::paper_defaults(64)));
        assert_eq!(policy_for(&mics_pn), RecoveryPolicy::CheckpointReload);
        // DDP replicates everything: peer copy with n replicas.
        let ddp = job(8, Strategy::Ddp);
        assert_eq!(policy_for(&ddp), RecoveryPolicy::PeerCopy { replication: 64 });
        // Single node: replicas die with the node, regardless of p.
        let single = job(1, Strategy::Mics(MicsConfig::paper_defaults(1)));
        assert_eq!(policy_for(&single), RecoveryPolicy::CheckpointReload);
    }

    #[test]
    fn donors_are_off_node_replication_peers() {
        let j = job(8, Strategy::Mics(MicsConfig::paper_defaults(8)));
        for lost in j.cluster.ranks_on_node(NodeId(0)) {
            let donor = off_node_donor(&j, lost).unwrap();
            assert_ne!(j.cluster.node_of(donor), NodeId(0));
            assert_eq!(donor.0 % 8, lost.0 % 8, "donor must hold the same shard");
        }
    }

    #[test]
    fn mics_recovers_strictly_faster_than_zero3() {
        // The acceptance bar: BERT 10B on 64 GPUs — restoring a lost node
        // from replication-group peers beats a cluster-wide checkpoint
        // reload plus redone work.
        let cfg = RecoveryConfig::default();
        let iter = SimTime::from_secs(2);
        let mics =
            recovery_time(&job(8, Strategy::Mics(MicsConfig::paper_defaults(8))), &cfg, iter);
        let z3 = recovery_time(&job(8, Strategy::Zero(ZeroStage::Three)), &cfg, iter);
        assert!(
            mics.total() < z3.total(),
            "MiCS {:?} not faster than ZeRO-3 {:?}",
            mics.total(),
            z3.total()
        );
        // The structural reason: MiCS redoes one iteration, ZeRO-3 redoes
        // half a checkpoint interval.
        assert!(mics.lost_work < z3.lost_work);
    }

    #[test]
    fn peer_copy_is_ingress_bound() {
        // k ranks × (16ψ/p) bytes through one 12.5 GB/s NIC: 8 × 20 GB at
        // 12.5 GB/s ≈ 12.8 s. Provisioning dominates; the copy must land in
        // the right decade and scale down with p.
        let cfg = RecoveryConfig::default();
        let iter = SimTime::from_secs(2);
        let p8 = recovery_time(&job(8, Strategy::Mics(MicsConfig::paper_defaults(8))), &cfg, iter);
        let p16 =
            recovery_time(&job(8, Strategy::Mics(MicsConfig::paper_defaults(16))), &cfg, iter);
        assert!(p8.state_restore > SimTime::from_secs(10));
        assert!(p8.state_restore < SimTime::from_secs(20));
        assert!(
            p16.state_restore < p8.state_restore,
            "larger partition groups leave smaller per-rank shards to copy"
        );
    }

    #[test]
    fn failure_timeline_is_deterministic() {
        let j = job(2, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let cfg = RecoveryConfig::default();
        let horizon = SimTime::from_secs(6 * 3600);
        let run = || {
            let plan = poisson_failures(&j, 77, SimTime::from_secs(3600), horizon);
            simulate_with_failures(&j, &cfg, &plan, horizon).unwrap()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.failures > 0, "6 h horizon at 1 h MTBF should fail at least once");
        let other = {
            let plan = poisson_failures(&j, 78, SimTime::from_secs(3600), horizon);
            simulate_with_failures(&j, &cfg, &plan, horizon).unwrap()
        };
        assert_ne!(a.fault_fingerprint, other.fault_fingerprint);
    }

    #[test]
    fn goodput_degrades_with_failure_rate_and_mics_holds_more() {
        let mics = job(2, Strategy::Mics(MicsConfig::paper_defaults(8)));
        let z3 = job(2, Strategy::Zero(ZeroStage::Three));
        let cfg = RecoveryConfig::default();
        let horizon = SimTime::from_secs(24 * 3600);
        let good = |j: &TrainingJob, mtbf_secs: u64| {
            let plan = poisson_failures(j, 7, SimTime::from_secs(mtbf_secs), horizon);
            simulate_with_failures(j, &cfg, &plan, horizon).unwrap().goodput_fraction
        };
        let mics_rare = good(&mics, 12 * 3600);
        let mics_often = good(&mics, 3600);
        assert!(mics_rare > mics_often, "{mics_rare} vs {mics_often}");
        // Same seeded timeline: MiCS keeps more goodput than ZeRO-3.
        let z3_often = good(&z3, 3600);
        assert!(mics_often > z3_often, "{mics_often} vs {z3_often}");
    }
}
