//! The per-device memory model: decides which jobs fit (and reproduces the
//! paper's "×" OOM marks and the forced hierarchical-all-gather disable for
//! BERT 20B on 16 GPUs, §5.1.1).
//!
//! Accounting follows the mixed-precision Adam convention of §3.2 (16 bytes
//! of model state per parameter before sharding) plus:
//!
//! * **communication buffers** sized in fixed *buckets* (DeepSpeed-style
//!   `allgather_bucket_size` ≈ 5×10⁸ elements ⇒ 1 GiB at fp16): two gather
//!   buckets (double buffering), two gradient buckets, and — when the
//!   hierarchical all-gather is active — four extra staging buckets for the
//!   stage-1 output and the batched intra-node calls;
//! * **activations**: full checkpoint footprint plus the peak transient;
//! * a **fragmentation factor** on the transient pools: dynamic allocators
//!   waste ≈ 60% (the §4 failure mode modelled faithfully in
//!   `mics_tensor::DynamicAllocator`); MiCS's pre-allocated arenas waste
//!   ≈ 10%;
//! * a fixed **runtime reserve** (CUDA context, NCCL, framework) of
//!   3.5 GiB.

use crate::config::DpPlan;
use crate::json::{Json, ToJson};
use mics_cluster::ClusterSpec;
use mics_model::WorkloadSpec;
use std::fmt;

/// Fixed communication bucket: 5×10⁸ elements × 2 bytes (fp16).
pub const BUCKET_BYTES: u64 = 1 << 30;
/// Bytes the CUDA/NCCL/framework runtime keeps for itself per device.
pub const RUNTIME_RESERVED: u64 = 7 * (1 << 29); // 3.5 GiB
/// Transient-pool overhead of a dynamic (fragmenting) allocator.
pub const FRAG_DYNAMIC: f64 = 1.6;
/// Transient-pool overhead of MiCS's pre-allocated arenas.
pub const FRAG_ARENA: f64 = 1.1;

/// Why a job cannot run.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// Bytes the job needs per device.
    pub required: u64,
    /// Usable bytes per device (capacity minus runtime reserve).
    pub available: u64,
    /// Strategy label, for error messages.
    pub strategy: String,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: out of memory — needs {:.2} GiB per device, {:.2} GiB usable",
            self.strategy,
            self.required as f64 / (1u64 << 30) as f64,
            self.available as f64 / (1u64 << 30) as f64
        )
    }
}

impl std::error::Error for OomError {}

impl ToJson for OomError {
    fn to_json(&self) -> Json {
        Json::obj([
            ("required", Json::Num(self.required as f64)),
            ("available", Json::Num(self.available as f64)),
            ("strategy", Json::from(self.strategy.as_str())),
        ])
    }
}

impl OomError {
    /// Decode the [`ToJson`] encoding (`None` on shape mismatch).
    pub fn from_json(doc: &Json) -> Option<Self> {
        Some(OomError {
            required: doc.get("required")?.as_num()? as u64,
            available: doc.get("available")?.as_num()? as u64,
            strategy: doc.get("strategy")?.as_str()?.to_string(),
        })
    }
}

/// Itemized per-device memory estimate for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Parameter bytes resident per device (after sharding).
    pub params: u64,
    /// Gradient bytes resident per device.
    pub grads: u64,
    /// Optimizer-state bytes resident per device.
    pub optimizer: u64,
    /// Activation bytes (checkpoints or live activations + peak transient).
    pub activations: u64,
    /// Communication/working buffers after the fragmentation factor.
    pub transient: u64,
    /// Whether the hierarchical-all-gather staging buckets are included.
    pub hierarchical_buffers: bool,
}

impl MemoryEstimate {
    /// Total bytes per device.
    pub fn total(&self) -> u64 {
        self.params + self.grads + self.optimizer + self.activations + self.transient
    }

    /// Compute the estimate for `workload` under `plan`.
    pub fn for_plan(workload: &WorkloadSpec, plan: &DpPlan, hierarchical_active: bool) -> Self {
        let p_total = workload.total_params();
        let dtype = workload.param_dtype_bytes;
        let params = p_total * dtype / plan.p_params as u64;
        let grads = p_total * dtype / plan.p_grads as u64;
        let optimizer = p_total * 12 / plan.p_opt as u64;

        let activations = workload.checkpoint_bytes() + workload.peak_working_bytes();

        let gathers = if plan.p_params > 1 { 2 * BUCKET_BYTES } else { 0 };
        let hier = if hierarchical_active { 4 * BUCKET_BYTES } else { 0 };
        let grad_buckets = 2 * BUCKET_BYTES.min(p_total * dtype); // tiny models need less
        let frag = if plan.arena_memory { FRAG_ARENA } else { FRAG_DYNAMIC };
        let transient = ((gathers + hier + grad_buckets) as f64 * frag) as u64;

        MemoryEstimate {
            params,
            grads,
            optimizer,
            activations,
            transient,
            hierarchical_buffers: hierarchical_active,
        }
    }

    /// Decode the [`ToJson`] encoding (`None` on shape mismatch).
    pub fn from_json(doc: &Json) -> Option<Self> {
        Some(MemoryEstimate {
            params: doc.get("params")?.as_num()? as u64,
            grads: doc.get("grads")?.as_num()? as u64,
            optimizer: doc.get("optimizer")?.as_num()? as u64,
            activations: doc.get("activations")?.as_num()? as u64,
            transient: doc.get("transient")?.as_num()? as u64,
            hierarchical_buffers: doc.get("hierarchical_buffers")? == &Json::Bool(true),
        })
    }
}

impl ToJson for MemoryEstimate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("params", Json::Num(self.params as f64)),
            ("grads", Json::Num(self.grads as f64)),
            ("optimizer", Json::Num(self.optimizer as f64)),
            ("activations", Json::Num(self.activations as f64)),
            ("transient", Json::Num(self.transient as f64)),
            ("hierarchical_buffers", Json::Bool(self.hierarchical_buffers)),
        ])
    }
}

/// Usable bytes per device on this cluster.
pub fn usable_bytes(cluster: &ClusterSpec) -> u64 {
    cluster.instance.gpu_mem_bytes.saturating_sub(RUNTIME_RESERVED)
}

/// Decide whether the job fits; when MiCS's hierarchical all-gather is
/// requested but only fits without its staging buffers, return the
/// downgraded estimate with `hierarchical_buffers == false` (the paper's
/// BERT 20B @ 16 GPUs situation).
pub fn check_memory(
    workload: &WorkloadSpec,
    cluster: &ClusterSpec,
    plan: &DpPlan,
    label: &str,
) -> Result<MemoryEstimate, OomError> {
    let usable = usable_bytes(cluster);
    let wants_hier = plan.hierarchical
        && plan.p_params > cluster.devices_per_node()
        && plan.p_params.is_multiple_of(cluster.devices_per_node());
    let est = MemoryEstimate::for_plan(workload, plan, wants_hier);
    if est.total() <= usable {
        return Ok(est);
    }
    if wants_hier {
        let fallback = MemoryEstimate::for_plan(workload, plan, false);
        if fallback.total() <= usable {
            return Ok(fallback);
        }
    }
    Err(OomError { required: est.total(), available: usable, strategy: label.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MicsConfig, Strategy, ZeroStage};
    use mics_cluster::InstanceType;
    use mics_model::{TransformerConfig, WideResNetConfig};

    fn v100_cluster(nodes: usize) -> ClusterSpec {
        ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes)
    }

    #[test]
    fn paper_oom_matrix_zero2() {
        // §5.1.1: "In most of the setups, ZeRO-2 has an out-of-memory
        // problem" — with micro-batch 4 it OOMs for BERT 10B on 16/32 GPUs
        // and every larger model everywhere.
        let z2 = |nodes: usize, w: &mics_model::WorkloadSpec| {
            let cluster = v100_cluster(nodes);
            let plan = Strategy::Zero(ZeroStage::Two).plan(cluster.total_devices());
            check_memory(w, &cluster, &plan, "ZeRO-2").is_ok()
        };
        let b10 = TransformerConfig::bert_10b().workload(4);
        assert!(!z2(2, &b10), "10B @ 16 GPUs must OOM");
        assert!(z2(8, &b10), "10B @ 64 GPUs must fit");
        assert!(z2(16, &b10), "10B @ 128 GPUs must fit");
        for cfg in [TransformerConfig::bert_15b(), TransformerConfig::bert_20b()] {
            let w = cfg.workload(4);
            for nodes in [2, 4, 8, 16] {
                assert!(!z2(nodes, &w), "{} @ {} nodes must OOM", cfg.name, nodes);
            }
        }
    }

    #[test]
    fn paper_partition_group_minimums() {
        // §5.1.1: smallest partition groups that fit with micro-batch 8 —
        // 1 node for 10B, 2 nodes for 15B/20B, 8 nodes for 50B.
        let fits = |cfg: &TransformerConfig, nodes_in_group: usize| {
            let cluster = v100_cluster(16);
            let p = nodes_in_group * 8;
            let plan = Strategy::Mics(MicsConfig::paper_defaults(p)).plan(cluster.total_devices());
            check_memory(&cfg.workload(8), &cluster, &plan, "MiCS").is_ok()
        };
        assert!(fits(&TransformerConfig::bert_10b(), 1));
        assert!(fits(&TransformerConfig::bert_15b(), 2));
        assert!(!fits(&TransformerConfig::bert_15b(), 1), "15B on one node must OOM");
        assert!(fits(&TransformerConfig::bert_20b(), 2));
        assert!(!fits(&TransformerConfig::bert_20b(), 1), "20B on one node must OOM");
        assert!(fits(&TransformerConfig::bert_50b(), 8));
        assert!(!fits(&TransformerConfig::bert_50b(), 4), "50B on 4 nodes must OOM");
    }

    #[test]
    fn bert20b_on_two_nodes_drops_hierarchical_buffers() {
        // §5.1.1: "we have to disable hierarchical communication on 16 GPUs
        // due to the memory constraint" (BERT 20B, p = 16).
        let cluster = v100_cluster(2);
        let plan = Strategy::Mics(MicsConfig::paper_defaults(16)).plan(16);
        let est = check_memory(&TransformerConfig::bert_20b().workload(8), &cluster, &plan, "MiCS")
            .expect("must fit after dropping hierarchical buffers");
        assert!(!est.hierarchical_buffers);
        // BERT 15B at the same group size keeps them (Fig. 12b runs it).
        let est = check_memory(&TransformerConfig::bert_15b().workload(8), &cluster, &plan, "MiCS")
            .expect("15B must fit");
        assert!(est.hierarchical_buffers);
    }

    #[test]
    fn zero3_fits_everything_in_the_paper() {
        for (cfg, nodes) in [
            (TransformerConfig::bert_10b(), 2usize),
            (TransformerConfig::bert_15b(), 2),
            (TransformerConfig::bert_20b(), 2),
            (TransformerConfig::bert_50b(), 8),
        ] {
            let cluster = v100_cluster(nodes);
            let plan = Strategy::Zero(ZeroStage::Three).plan(cluster.total_devices());
            assert!(
                check_memory(&cfg.workload(8), &cluster, &plan, "ZeRO-3").is_ok(),
                "{} @ {} nodes",
                cfg.name,
                nodes
            );
        }
    }

    #[test]
    fn wideresnet_zero2_never_fits_but_mics_and_zero3_do() {
        // §5.1.4: WideResNet 3B "is not runnable under ZeRO-2".
        let w = WideResNetConfig::wrn_3b().workload(8);
        for nodes in [2usize, 4, 8, 16] {
            let cluster = v100_cluster(nodes);
            let n = cluster.total_devices();
            let z2 = Strategy::Zero(ZeroStage::Two).plan(n);
            assert!(check_memory(&w, &cluster, &z2, "ZeRO-2").is_err(), "{nodes} nodes");
            let z3 = Strategy::Zero(ZeroStage::Three).plan(n);
            assert!(check_memory(&w, &cluster, &z3, "ZeRO-3").is_ok());
            let mics = Strategy::Mics(MicsConfig::paper_defaults(8)).plan(n);
            assert!(check_memory(&w, &cluster, &mics, "MiCS").is_ok());
        }
    }

    #[test]
    fn arena_allocator_saves_memory_vs_dynamic() {
        let w = TransformerConfig::bert_10b().workload(8);
        let mics = Strategy::Mics(MicsConfig::paper_defaults(8)).plan(64);
        let mut dyn_cfg = MicsConfig::paper_defaults(8);
        dyn_cfg.arena_memory = false;
        let dynamic = Strategy::Mics(dyn_cfg).plan(64);
        let a = MemoryEstimate::for_plan(&w, &mics, false);
        let b = MemoryEstimate::for_plan(&w, &dynamic, false);
        assert!(a.transient < b.transient);
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn estimate_totals_add_up() {
        let w = TransformerConfig::bert_10b().workload(8);
        let plan = Strategy::Mics(MicsConfig::paper_defaults(8)).plan(64);
        let est = MemoryEstimate::for_plan(&w, &plan, false);
        assert_eq!(
            est.total(),
            est.params + est.grads + est.optimizer + est.activations + est.transient
        );
        // 10B over p=8: 160 GB / 8 = 20 GB of model states.
        let states = est.params + est.grads + est.optimizer;
        let expect = w.total_params() * 16 / 8;
        assert_eq!(states, expect);
    }

    #[test]
    fn a100_fits_more() {
        // BERT 15B on a single p4d node (40 GB GPUs) fits; it does not on
        // a p3dn node (32 GB).
        let w = TransformerConfig::bert_15b().workload(8);
        let a100 = ClusterSpec::new(InstanceType::p4d_24xlarge(), 2);
        let plan = Strategy::Mics(MicsConfig::paper_defaults(8)).plan(16);
        assert!(check_memory(&w, &a100, &plan, "MiCS").is_ok());
        let v100 = v100_cluster(2);
        assert!(check_memory(&w, &v100, &plan, "MiCS").is_err());
    }
}
