//! Results of a simulated training run.

use crate::memory::MemoryEstimate;
use mics_simnet::SimTime;

/// What one simulated iteration of a [`crate::TrainingJob`] produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy label (e.g. `"MiCS(p=16)"`).
    pub label: String,
    /// Wall-clock time of one full iteration (s micro-steps + boundary).
    pub iter_time: SimTime,
    /// System throughput: samples (sequences/images) per second across the
    /// cluster — the paper's primary metric.
    pub samples_per_sec: f64,
    /// Model FLOP/s actually achieved per GPU, from the workload's own
    /// FLOPs accounting (`total_flops × s / iter_time`).
    pub achieved_flops_per_gpu: f64,
    /// The per-device memory estimate the run was admitted under.
    pub memory: MemoryEstimate,
    /// Whether the hierarchical all-gather was active (it is automatically
    /// disabled when its staging buffers do not fit, §5.1.1).
    pub hierarchical_used: bool,
    /// Fraction of the iteration each device's compute stream was busy.
    pub compute_fraction: f64,
    /// Fraction of the iteration each device's communication lanes were
    /// busy (can exceed 1.0 in aggregate when lanes overlap; normalized per
    /// device here).
    pub comm_fraction: f64,
    /// Inter-node wire volume per node for one iteration — the quantity
    /// hierarchical communication (§3.3) and quantized collectives shrink.
    pub nic_bytes_per_node: u64,
}

impl RunReport {
    /// Throughput in samples/sec normalized per device.
    pub fn samples_per_sec_per_gpu(&self, devices: usize) -> f64 {
        self.samples_per_sec / devices as f64
    }

    /// Achieved TFLOPS per GPU.
    pub fn tflops_per_gpu(&self) -> f64 {
        self.achieved_flops_per_gpu / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryEstimate;

    #[test]
    fn helpers() {
        let r = RunReport {
            label: "x".into(),
            iter_time: SimTime::from_secs(1),
            samples_per_sec: 64.0,
            achieved_flops_per_gpu: 50e12,
            memory: MemoryEstimate {
                params: 0,
                grads: 0,
                optimizer: 0,
                activations: 0,
                transient: 0,
                hierarchical_buffers: false,
            },
            hierarchical_used: false,
            compute_fraction: 0.5,
            comm_fraction: 0.4,
            nic_bytes_per_node: 0,
        };
        assert_eq!(r.samples_per_sec_per_gpu(16), 4.0);
        assert_eq!(r.tflops_per_gpu(), 50.0);
    }
}
