//! Results of a simulated training run.

use crate::json::{Json, ToJson};
use crate::memory::MemoryEstimate;
use mics_simnet::SimTime;

/// What one simulated iteration of a [`crate::TrainingJob`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Strategy label (e.g. `"MiCS(p=16)"`).
    pub label: String,
    /// Wall-clock time of one full iteration (s micro-steps + boundary).
    pub iter_time: SimTime,
    /// System throughput: samples (sequences/images) per second across the
    /// cluster — the paper's primary metric.
    pub samples_per_sec: f64,
    /// Model FLOP/s actually achieved per GPU, from the workload's own
    /// FLOPs accounting (`total_flops × s / iter_time`).
    pub achieved_flops_per_gpu: f64,
    /// The per-device memory estimate the run was admitted under.
    pub memory: MemoryEstimate,
    /// Whether the hierarchical all-gather was active (it is automatically
    /// disabled when its staging buffers do not fit, §5.1.1).
    pub hierarchical_used: bool,
    /// Fraction of the iteration each device's compute stream was busy.
    pub compute_fraction: f64,
    /// Fraction of the iteration each device's communication lanes were
    /// busy (can exceed 1.0 in aggregate when lanes overlap; normalized per
    /// device here).
    pub comm_fraction: f64,
    /// Inter-node wire volume per node for one iteration — the quantity
    /// hierarchical communication (§3.3) and quantized collectives shrink.
    pub nic_bytes_per_node: u64,
}

impl RunReport {
    /// Throughput in samples/sec normalized per device.
    pub fn samples_per_sec_per_gpu(&self, devices: usize) -> f64 {
        self.samples_per_sec / devices as f64
    }

    /// Achieved TFLOPS per GPU.
    pub fn tflops_per_gpu(&self) -> f64 {
        self.achieved_flops_per_gpu / 1e12
    }

    /// Decode the [`ToJson`] encoding (`None` on shape mismatch). Together
    /// with [`ToJson::to_json`] this is a lossless round trip: `iter_time`
    /// travels as exact integer nanoseconds and every float as its shortest
    /// re-parsable decimal form, so a report that crosses the planner wire
    /// compares equal to the in-process original.
    pub fn from_json(doc: &Json) -> Option<Self> {
        Some(RunReport {
            label: doc.get("label")?.as_str()?.to_string(),
            iter_time: SimTime::from_nanos(doc.get("iter_time_ns")?.as_num()? as u64),
            samples_per_sec: doc.get("samples_per_sec")?.as_num()?,
            achieved_flops_per_gpu: doc.get("achieved_flops_per_gpu")?.as_num()?,
            memory: MemoryEstimate::from_json(doc.get("memory")?)?,
            hierarchical_used: doc.get("hierarchical_used")? == &Json::Bool(true),
            compute_fraction: doc.get("compute_fraction")?.as_num()?,
            comm_fraction: doc.get("comm_fraction")?.as_num()?,
            nic_bytes_per_node: doc.get("nic_bytes_per_node")?.as_num()? as u64,
        })
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label.as_str())),
            ("iter_time_ns", Json::Num(self.iter_time.as_nanos() as f64)),
            ("samples_per_sec", Json::Num(self.samples_per_sec)),
            ("achieved_flops_per_gpu", Json::Num(self.achieved_flops_per_gpu)),
            ("memory", self.memory.to_json()),
            ("hierarchical_used", Json::Bool(self.hierarchical_used)),
            ("compute_fraction", Json::Num(self.compute_fraction)),
            ("comm_fraction", Json::Num(self.comm_fraction)),
            ("nic_bytes_per_node", Json::Num(self.nic_bytes_per_node as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryEstimate;

    #[test]
    fn helpers() {
        let r = RunReport {
            label: "x".into(),
            iter_time: SimTime::from_secs(1),
            samples_per_sec: 64.0,
            achieved_flops_per_gpu: 50e12,
            memory: MemoryEstimate {
                params: 0,
                grads: 0,
                optimizer: 0,
                activations: 0,
                transient: 0,
                hierarchical_buffers: false,
            },
            hierarchical_used: false,
            compute_fraction: 0.5,
            comm_fraction: 0.4,
            nic_bytes_per_node: 0,
        };
        assert_eq!(r.samples_per_sec_per_gpu(16), 4.0);
        assert_eq!(r.tflops_per_gpu(), 50.0);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = RunReport {
            label: "MiCS(p=8)".into(),
            iter_time: SimTime::from_nanos(1_234_567_891),
            samples_per_sec: 123.456789012345,
            achieved_flops_per_gpu: 5.0123e13,
            memory: MemoryEstimate {
                params: 1_250_000_000,
                grads: 1_250_000_000,
                optimizer: 7_500_000_000,
                activations: 3_000_000_001,
                transient: 2_147_483_649,
                hierarchical_buffers: true,
            },
            hierarchical_used: true,
            compute_fraction: 0.61234567,
            comm_fraction: 0.3,
            nic_bytes_per_node: 9_876_543_210,
        };
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        // And the encoding itself is stable through a parse → emit cycle.
        let wire = r.to_json().emit();
        assert_eq!(crate::json::Json::parse(&wire).unwrap().emit(), wire);
    }
}
