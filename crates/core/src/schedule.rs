//! The schedule IR: one typed lowering of the MiCS training step, consumed
//! by both the simulator and the real dataplane.
//!
//! MiCS's contributions (§3.3 hierarchical gather, §3.4 2-hop sync, §4
//! prefetch/overlap) are all *schedule* properties. This module makes the
//! schedule a first-class value: a [`StepProgram`] — a flat list of
//! [`ScheduleOp`]s with explicit op-to-op dependencies and per-op wire
//! annotations ([`WireOp`]) — emitted once per strategy by [`emit_step`]
//! from a [`ScheduleSpec`], then consumed by two backends:
//!
//! * [`execute_on_sim`] replays the program onto a [`SimCluster`] — the
//!   analytic cost backend behind [`crate::simulate`]. The replay is
//!   push-for-push identical to the historical inline lowering in
//!   `dp.rs`, so every simulated number is bit-identical to what that
//!   lowering produced.
//! * the `mics-minidl` interpreter walks the same program and drives the
//!   real `mics-dataplane` communicators, making the fidelity claim
//!   structural: the dataplane executes the *same program* the simulator
//!   costs.
//!
//! Prefetch depth is not baked into emission: [`emit_step`] produces
//! gathers with no lookahead constraint and [`apply_prefetch`] is a
//! schedule *transform* that adds the backpressure dependencies, so tuner
//! passes can re-run it at different depths without re-emitting.

use crate::config::MicroSync;
use crate::ops::{Lane, SimCluster};
use mics_cluster::{nodes_spanned, Rank};
use mics_collectives::dispatch::{WireCollective, WireKind};
use mics_collectives::NetParams;
use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
use mics_simnet::{EventId, SimTime};

/// Index of an op inside [`StepProgram::ops`]; dependencies are expressed
/// as these indices.
pub type OpId = usize;

/// Which half of the micro-step a gather or compute belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Forward propagation (ascending layer order).
    Forward,
    /// Backward propagation (descending layer order, with recompute).
    Backward,
}

/// A rank group, by construction rather than by member list (§3.2's
/// partition/replication group structure, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupRef {
    /// Partition group `g`: the `p` consecutive ranks `g·p .. (g+1)·p`.
    Partition(usize),
    /// Every rank in the cluster.
    All,
    /// Replication group `local`: the `n/p` ranks `{g·p + local}` (stride
    /// `p`).
    Replication(usize),
}

impl GroupRef {
    /// Materialize the member ranks (ascending) on a cluster of `n` devices
    /// with partition size `p`.
    pub fn members(&self, n: usize, p: usize) -> Vec<Rank> {
        match *self {
            GroupRef::Partition(g) => (g * p..(g + 1) * p).map(Rank).collect(),
            GroupRef::All => (0..n).map(Rank).collect(),
            GroupRef::Replication(local) => (0..n / p).map(|g| Rank(g * p + local)).collect(),
        }
    }

    /// This rank's index within the group's member list, or `None` if it
    /// does not participate.
    pub fn member_index(&self, rank: Rank, n: usize, p: usize) -> Option<usize> {
        match *self {
            GroupRef::Partition(g) => {
                (g * p <= rank.0 && rank.0 < (g + 1) * p).then(|| rank.0 - g * p)
            }
            GroupRef::All => (rank.0 < n).then_some(rank.0),
            GroupRef::Replication(local) => (rank.0 % p == local).then(|| rank.0 / p),
        }
    }

    /// Whether `rank` participates in this group.
    pub fn contains(&self, rank: Rank, n: usize, p: usize) -> bool {
        self.member_index(rank, n, p).is_some()
    }
}

/// Which buffer a gradient reduction consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradSource {
    /// The current micro-step's freshly computed gradient (per-micro-step
    /// synchronization: MiCS hop 1, ZeRO-3's global all-reduce).
    MicroGrad,
    /// The locally accumulated gradient (boundary synchronization: DDP and
    /// ZeRO-1/2's bucketed reduction over the whole iteration).
    Accum,
}

/// The wire-level annotation of a communication op: who talks, on which
/// lane, what algorithm moves how many bytes, and under which codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireOp {
    /// Participating ranks.
    pub group: GroupRef,
    /// The communication stream the op occupies.
    pub lane: Lane,
    /// Algorithm + payload for the α–β cost dispatch
    /// ([`WireCollective::cost`]).
    pub wire: WireCollective,
    /// Quantized-wire scheme for the real dataplane (`None` = exact wire).
    /// The wire-byte model of the same codec lives in `wire.codec`.
    pub scheme: Option<QuantScheme>,
    /// Whether the op pays the plan's host-side decision overhead before
    /// launching (the 2-hop boundary all-reduce does not: its schedule is
    /// fully precomputed, §3.4/§4).
    pub overhead: bool,
}

/// One operation of the step program.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// The global synchronization barrier the "alternative schedule" pays
    /// at every micro-step boundary (§2.3/§3.4): both the compute stream
    /// and the gather lane wait for the previous micro-step's last
    /// gradient reduction.
    MicroBarrier,
    /// All-gather one layer's parameter shards within a partition group.
    GatherShards {
        /// Layer being materialized.
        layer: usize,
        /// Forward or backward re-gather.
        pass: Pass,
        /// Wire annotation.
        wire: WireOp,
    },
    /// One layer's compute: forward, or recompute + backward.
    Compute {
        /// Layer index.
        layer: usize,
        /// Which pass.
        pass: Pass,
        /// FLOPs of the kernel (0 for layers with no compute).
        flops: f64,
    },
    /// Fold the current micro-step's gradient into the local accumulation
    /// buffer — no wire traffic (DDP/ZeRO-1/2 between boundaries, and the
    /// degenerate single-member groups of the sharded schedules).
    AccumGrads {
        /// Gradient bucket index.
        bucket: usize,
    },
    /// Reduce-scatter one gradient bucket (MiCS hop 1 within the partition
    /// group; ZeRO-2 over the cluster at the boundary).
    ReduceScatterGrads {
        /// Gradient bucket index.
        bucket: usize,
        /// Which gradient buffer is reduced.
        source: GradSource,
        /// Wire annotation.
        wire: WireOp,
    },
    /// All-reduce one gradient bucket (ZeRO-3's per-micro-step global
    /// all-reduce; DDP/ZeRO-1's boundary all-reduce).
    AllReduceGrads {
        /// Gradient bucket index.
        bucket: usize,
        /// Which gradient buffer is reduced.
        source: GradSource,
        /// Wire annotation.
        wire: WireOp,
    },
    /// MiCS hop 2 (§3.4): all-reduce one bucket's accumulated gradient
    /// shard across a replication group at the accumulation boundary.
    CrossGroupAllReduce {
        /// Gradient bucket index.
        bucket: usize,
        /// Local rank within the partition group whose shards this op
        /// reduces (one op per `local` in `0..p`).
        local: usize,
        /// Wire annotation.
        wire: WireOp,
    },
    /// The optimizer step: a bandwidth-bound fp32 Adam update over each
    /// device's shard, gated on the last gradient reduction.
    OptimizerUpdate {
        /// Bytes read+written per device (≈ 24 B/parameter over the shard).
        bytes: u64,
        /// Record a completion event (needed when a parameter refresh
        /// follows).
        record: bool,
    },
    /// ZeRO-1/2's boundary parameter refresh: a cluster-wide all-gather of
    /// the updated replicas.
    ParamRefresh {
        /// Wire annotation.
        wire: WireOp,
    },
}

/// One scheduled operation: kind + position + explicit dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOp {
    /// Micro-step this op belongs to (boundary/optimizer ops carry the
    /// last micro-step's index).
    pub micro: usize,
    /// What the op does.
    pub kind: OpKind,
    /// Ops that must complete (for the participating rank) before this op
    /// may run. The wait kind follows from this op's kind: compute ops
    /// wait on their compute stream, wire ops on their lane.
    pub deps: Vec<OpId>,
}

/// A fully lowered training step: the single schedule both backends
/// consume.
#[derive(Debug, Clone, PartialEq)]
pub struct StepProgram {
    /// Total devices.
    pub n: usize,
    /// Devices per node.
    pub k: usize,
    /// Partition group size (`p_params`).
    pub p: usize,
    /// Number of model layers.
    pub num_layers: usize,
    /// Micro-steps per iteration.
    pub accum_steps: usize,
    /// Host-side think time charged by ops with `overhead = true`.
    pub decision_overhead: SimTime,
    /// The ops, in emission (and execution) order.
    pub ops: Vec<ScheduleOp>,
}

/// Per-layer workload numbers the emitter consumes.
#[derive(Debug, Clone, Copy)]
pub struct LayerSchedule {
    /// Parameter bytes of the layer (at the wire dtype).
    pub param_bytes: u64,
    /// Forward FLOPs.
    pub fwd_flops: f64,
    /// Backward FLOPs including activation recompute.
    pub bwd_flops: f64,
}

/// Everything [`emit_step`] needs to lower one strategy's iteration.
#[derive(Debug, Clone)]
pub struct ScheduleSpec {
    /// Total devices.
    pub n: usize,
    /// Devices per node.
    pub k: usize,
    /// Partition group size for parameters.
    pub p_params: usize,
    /// Shard count for gradients (ZeRO-2 reduces by scatter when > 1).
    pub p_grads: usize,
    /// Shard count for optimizer states.
    pub p_opt: usize,
    /// Per-micro-step gradient handling.
    pub micro_sync: MicroSync,
    /// Micro-steps per iteration.
    pub accum_steps: usize,
    /// Use the §3.3 hierarchical all-gather when the partition group spans
    /// nodes (callers pass the memory-validated decision).
    pub hierarchical: bool,
    /// Batch the hierarchical stage-3 calls through the coalesced API.
    pub coalesced: bool,
    /// Gather-lane lookahead in layers, applied by [`apply_prefetch`].
    pub prefetch_depth: usize,
    /// Host-side think time before each scheduled collective.
    pub decision_overhead: SimTime,
    /// The layers, in forward order.
    pub layers: Vec<LayerSchedule>,
    /// Gradient-bucket fusion threshold (DeepSpeed's `reduce_bucket_size`).
    pub bucket_bytes: u64,
    /// Total parameter bytes (for the ZeRO-1/2 refresh gather).
    pub total_param_bytes: u64,
    /// Optimizer bytes read+written per device (already divided by
    /// `p_opt`).
    pub optimizer_bytes: u64,
    /// Quantized-collective configuration (`None` = full-precision wire).
    pub compression: Option<CompressionConfig>,
    /// Uncompressed element width in bytes (the wire dtype).
    pub elem_bytes: u64,
}

impl ScheduleSpec {
    /// Emit and apply the spec's own prefetch depth: the program both
    /// backends should run.
    pub fn program(&self) -> StepProgram {
        let mut prog = emit_step(self);
        apply_prefetch(&mut prog, self.prefetch_depth);
        prog
    }
}

/// Gradient buckets: consecutive layers in backward order fused until the
/// bucket reaches `bucket_bytes` (zero-parameter layers are skipped).
/// Returns `(layer indices in backward order, fused bytes)` per bucket.
fn bucketize(layers: &[LayerSchedule], bucket_bytes: u64) -> Vec<(Vec<usize>, u64)> {
    let mut out: Vec<(Vec<usize>, u64)> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut bytes = 0u64;
    for idx in 0..layers.len() {
        let l = layers.len() - 1 - idx;
        let b = layers[l].param_bytes;
        if b == 0 {
            continue;
        }
        if !cur.is_empty() && bytes + b > bucket_bytes {
            out.push((std::mem::take(&mut cur), bytes));
            bytes = 0;
        }
        cur.push(l);
        bytes += b;
    }
    if !cur.is_empty() {
        out.push((cur, bytes));
    }
    out
}

/// Lower one iteration of `spec` to a [`StepProgram`].
///
/// The emission order is the contract both backends rely on: forward
/// gathers (layer-ascending, group-ascending), forward computes, backward
/// gathers (layer-descending), backward computes, then per-bucket gradient
/// synchronization, and after the last micro-step the optimizer update and
/// the ZeRO-1/2 parameter refresh. Prefetch dependencies are *not* added
/// here — see [`apply_prefetch`].
///
/// # Panics
/// Panics if `p_params` does not divide `n` or any dimension is zero.
pub fn emit_step(spec: &ScheduleSpec) -> StepProgram {
    let (n, k, p) = (spec.n, spec.k, spec.p_params);
    assert!(n >= 1 && k >= 1 && p >= 1 && n.is_multiple_of(p), "invalid geometry n={n} p={p}");
    let num_layers = spec.layers.len();
    let s = spec.accum_steps;
    let groups = n / p;

    // Codec resolution, mirroring the scope rules of the quantized
    // collectives: gathers and hop-1 reductions stay inside the partition
    // group; collectives that leave it compress only under
    // [`CompressionScope::Everywhere`].
    let cost_model = |c: &CompressionConfig| {
        let mut cm = c.scheme.cost_model();
        cm.elem_bytes = spec.elem_bytes;
        cm
    };
    let weight_codec = spec.compression.filter(|c| c.weights).map(|c| (c.scheme, cost_model(&c)));
    let grad_codec = |beyond_group: bool| {
        spec.compression
            .filter(|c| c.grads)
            .filter(|c| !beyond_group || c.scope == CompressionScope::Everywhere)
            .map(|c| (c.scheme, cost_model(&c)))
    };

    let hier = spec.hierarchical && p > k;
    let gather_wire = |layer: usize, g: usize| WireOp {
        group: GroupRef::Partition(g),
        lane: Lane::Gather,
        wire: WireCollective {
            kind: WireKind::AllGather { hierarchical: hier, coalesced: spec.coalesced },
            participants: p,
            devices_per_node: k,
            bytes: spec.layers[layer].param_bytes,
            codec: weight_codec.map(|(_, cm)| cm),
        },
        scheme: weight_codec.map(|(sch, _)| sch),
        overhead: true,
    };

    let buckets = bucketize(&spec.layers, spec.bucket_bytes);
    // Per-bucket synchronization op template: `(kind, source, wire)` or
    // `None` when the group is trivial and the bucket folds locally.
    enum SyncKind {
        Rs,
        Ar,
    }
    let bucket_sync = |bytes: u64| -> Option<(SyncKind, GradSource, WireOp)> {
        let mk = |kind, source, wk, participants, codec: Option<(QuantScheme, _)>| {
            (
                kind,
                source,
                WireOp {
                    group: if matches!(spec.micro_sync, MicroSync::PartitionReduceScatter) {
                        GroupRef::Partition(0) // placeholder; rewritten per group below
                    } else {
                        GroupRef::All
                    },
                    lane: Lane::Reduce,
                    wire: WireCollective {
                        kind: wk,
                        participants,
                        devices_per_node: k,
                        bytes,
                        codec: codec.map(|(_, cm)| cm),
                    },
                    scheme: codec.map(|(sch, _)| sch),
                    overhead: true,
                },
            )
        };
        match spec.micro_sync {
            MicroSync::PartitionReduceScatter => (p > 1).then(|| {
                mk(
                    SyncKind::Rs,
                    GradSource::MicroGrad,
                    WireKind::ReduceScatter,
                    p,
                    grad_codec(false),
                )
            }),
            // The global all-reduce leaves the partition group unless the
            // group *is* the cluster (ZeRO-3 / MiCS with p = n).
            MicroSync::GlobalAllReduce => (n > 1).then(|| {
                mk(
                    SyncKind::Ar,
                    GradSource::MicroGrad,
                    WireKind::AllReduce { stride: 1 },
                    n,
                    grad_codec(p < n),
                )
            }),
            MicroSync::LocalAccumulate => (n > 1).then(|| {
                // The boundary reduction leaves the (trivial) partition
                // group, so only `Everywhere`-scoped compression applies.
                if spec.p_grads > 1 {
                    // ZeRO-2: reduce-scatter over the whole cluster.
                    mk(
                        SyncKind::Rs,
                        GradSource::Accum,
                        WireKind::ReduceScatter,
                        n,
                        grad_codec(true),
                    )
                } else {
                    // DDP / ZeRO-1: bucketed all-reduce over the cluster.
                    mk(
                        SyncKind::Ar,
                        GradSource::Accum,
                        WireKind::AllReduce { stride: 1 },
                        n,
                        grad_codec(true),
                    )
                }
            }),
        }
    };

    let mut ops: Vec<ScheduleOp> = Vec::new();
    // Previous synchronization's reduction ops per layer (the
    // write-after-read hazard on the gradient buffer, §3.4) and per rank
    // cover (for the optimizer's gate).
    let mut war: Vec<Vec<OpId>> = vec![Vec::new(); num_layers];
    let mut last_reduce: Vec<OpId> = Vec::new();
    let mut barrier: Option<OpId> = None;

    for micro in 0..s {
        // ---------- forward ----------
        if spec.micro_sync == MicroSync::GlobalAllReduce {
            if let Some(b) = barrier {
                ops.push(ScheduleOp { micro, kind: OpKind::MicroBarrier, deps: vec![b] });
            }
        }
        let mut fwd_gathers: Vec<Vec<OpId>> = vec![Vec::new(); num_layers];
        for (l, layer) in spec.layers.iter().enumerate() {
            if p == 1 || layer.param_bytes == 0 {
                continue;
            }
            for g in 0..groups {
                fwd_gathers[l].push(ops.len());
                ops.push(ScheduleOp {
                    micro,
                    kind: OpKind::GatherShards {
                        layer: l,
                        pass: Pass::Forward,
                        wire: gather_wire(l, g),
                    },
                    deps: Vec::new(),
                });
            }
        }
        let mut fwd_computes: Vec<OpId> = Vec::with_capacity(num_layers);
        for (l, layer) in spec.layers.iter().enumerate() {
            fwd_computes.push(ops.len());
            ops.push(ScheduleOp {
                micro,
                kind: OpKind::Compute { layer: l, pass: Pass::Forward, flops: layer.fwd_flops },
                deps: fwd_gathers[l].clone(),
            });
        }

        // ---------- backward (reverse layer order) ----------
        let mut bwd_gathers: Vec<Vec<OpId>> = vec![Vec::new(); num_layers];
        for idx in 0..num_layers {
            let l = num_layers - 1 - idx;
            if p == 1 || spec.layers[l].param_bytes == 0 {
                continue;
            }
            for g in 0..groups {
                bwd_gathers[l].push(ops.len());
                ops.push(ScheduleOp {
                    micro,
                    kind: OpKind::GatherShards {
                        layer: l,
                        pass: Pass::Backward,
                        wire: gather_wire(l, g),
                    },
                    deps: Vec::new(),
                });
            }
        }
        let mut bwd_computes: Vec<OpId> = vec![0; num_layers];
        for idx in 0..num_layers {
            let l = num_layers - 1 - idx;
            let mut deps = bwd_gathers[l].clone();
            // Gradient-buffer write-after-read hazard against the previous
            // micro-step's reduction of this layer.
            deps.extend(war[l].iter().copied());
            bwd_computes[l] = ops.len();
            ops.push(ScheduleOp {
                micro,
                kind: OpKind::Compute {
                    layer: l,
                    pass: Pass::Backward,
                    flops: spec.layers[l].bwd_flops,
                },
                deps,
            });
        }

        // ---------- per-micro-step gradient synchronization ----------
        let sync_this_micro = match spec.micro_sync {
            MicroSync::LocalAccumulate => micro == s - 1,
            _ => true,
        };
        let boundary = micro == s - 1;
        for (bi, (bucket_layers, bucket_bytes)) in buckets.iter().enumerate() {
            // A bucket is ready when its last-computed layer (the lowest
            // index — backward runs in decreasing layer order) finishes.
            let ready = bwd_computes[*bucket_layers.last().unwrap()];
            if spec.micro_sync == MicroSync::LocalAccumulate {
                // Local fold every micro-step; the wire only carries the
                // accumulated buffer at the boundary.
                ops.push(ScheduleOp {
                    micro,
                    kind: OpKind::AccumGrads { bucket: bi },
                    deps: vec![ready],
                });
            }
            if !sync_this_micro {
                continue;
            }
            let mut hop1_emitted = false;
            if let Some((kind, source, wire_tpl)) = bucket_sync(*bucket_bytes) {
                let group_list: Vec<GroupRef> =
                    if spec.micro_sync == MicroSync::PartitionReduceScatter {
                        (0..groups).map(GroupRef::Partition).collect()
                    } else {
                        vec![GroupRef::All]
                    };
                let mut batch: Vec<OpId> = Vec::with_capacity(group_list.len());
                for group in group_list {
                    let wire = WireOp { group, ..wire_tpl };
                    batch.push(ops.len());
                    ops.push(ScheduleOp {
                        micro,
                        kind: match kind {
                            SyncKind::Rs => OpKind::ReduceScatterGrads { bucket: bi, source, wire },
                            SyncKind::Ar => OpKind::AllReduceGrads { bucket: bi, source, wire },
                        },
                        deps: vec![ready],
                    });
                }
                for &l in bucket_layers {
                    war[l] = batch.clone();
                }
                last_reduce = batch.clone();
                if spec.micro_sync == MicroSync::GlobalAllReduce {
                    // The final bucket's reduction is the last to finish
                    // and forms the next micro-step's barrier.
                    barrier = batch.last().copied();
                }
                hop1_emitted = true;
            } else if spec.micro_sync != MicroSync::LocalAccumulate {
                // Trivial synchronization group (p = 1 hop 1, n = 1 global
                // all-reduce): the micro-gradient folds locally.
                ops.push(ScheduleOp {
                    micro,
                    kind: OpKind::AccumGrads { bucket: bi },
                    deps: vec![ready],
                });
            }
            // 2-hop second hop (§3.4): at the accumulation boundary,
            // all-reduce this bucket's accumulated gradient shard across
            // the replication group — bucketed so it overlaps with the
            // remaining backward compute, just like hop 1.
            if boundary && spec.micro_sync == MicroSync::PartitionReduceScatter && n > p {
                let shard_bytes = bucket_bytes / p as u64;
                if shard_bytes > 0 {
                    // Hop 2 crosses replication groups — beyond the
                    // partition group, so intra-group-only compression
                    // keeps it at full precision.
                    let codec = grad_codec(true);
                    let mut ids: Vec<OpId> = Vec::with_capacity(p);
                    for local in 0..p {
                        let deps = if hop1_emitted { Vec::new() } else { vec![ready] };
                        ids.push(ops.len());
                        ops.push(ScheduleOp {
                            micro,
                            kind: OpKind::CrossGroupAllReduce {
                                bucket: bi,
                                local,
                                wire: WireOp {
                                    group: GroupRef::Replication(local),
                                    lane: Lane::Reduce,
                                    wire: WireCollective {
                                        kind: WireKind::AllReduce { stride: p },
                                        participants: n / p,
                                        devices_per_node: k,
                                        bytes: shard_bytes,
                                        codec: codec.map(|(_, cm)| cm),
                                    },
                                    scheme: codec.map(|(sch, _)| sch),
                                    overhead: false,
                                },
                            },
                            deps,
                        });
                    }
                    last_reduce = ids;
                }
            }
        }
    }

    // ---------- optimizer step + ZeRO-1/2 parameter refresh ----------
    let record = spec.p_opt > 1 && spec.p_params == 1;
    let opt_id = ops.len();
    ops.push(ScheduleOp {
        micro: s - 1,
        kind: OpKind::OptimizerUpdate { bytes: spec.optimizer_bytes, record },
        deps: last_reduce,
    });
    if record && n > 1 {
        ops.push(ScheduleOp {
            micro: s - 1,
            kind: OpKind::ParamRefresh {
                wire: WireOp {
                    group: GroupRef::All,
                    lane: Lane::Gather,
                    wire: WireCollective {
                        kind: WireKind::AllGather { hierarchical: false, coalesced: false },
                        participants: n,
                        devices_per_node: k,
                        bytes: spec.total_param_bytes,
                        codec: None,
                    },
                    scheme: None,
                    overhead: true,
                },
            },
            deps: vec![opt_id],
        });
    }

    StepProgram {
        n,
        k,
        p,
        num_layers,
        accum_steps: s,
        decision_overhead: spec.decision_overhead,
        ops,
    }
}

/// Add prefetch-backpressure dependencies to every gather: the gather for
/// layer `l` may start once layer `l - depth - 1` (forward) or its mirror
/// (backward) has computed in the same micro-step. This is the §4 overlap
/// window as a schedule transform — call it once per program.
pub fn apply_prefetch(prog: &mut StepProgram, depth: usize) {
    let nl = prog.num_layers;
    // (micro, pass, layer) → compute op.
    let slot = |micro: usize, pass: Pass, layer: usize| {
        micro * 2 * nl + if pass == Pass::Forward { layer } else { nl + layer }
    };
    let mut computes: Vec<OpId> = vec![usize::MAX; prog.accum_steps * 2 * nl];
    for (i, op) in prog.ops.iter().enumerate() {
        if let OpKind::Compute { layer, pass, .. } = op.kind {
            computes[slot(op.micro, pass, layer)] = i;
        }
    }
    for i in 0..prog.ops.len() {
        let (micro, layer, pass) = match prog.ops[i].kind {
            OpKind::GatherShards { layer, pass, .. } => (prog.ops[i].micro, layer, pass),
            _ => continue,
        };
        let dep_layer = match pass {
            Pass::Forward => {
                if layer > depth {
                    layer - depth - 1
                } else {
                    continue;
                }
            }
            Pass::Backward => {
                let idx = nl - 1 - layer;
                if idx > depth {
                    nl - 1 - (idx - depth - 1)
                } else {
                    continue;
                }
            }
        };
        let dep = computes[slot(micro, pass, dep_layer)];
        debug_assert_ne!(dep, usize::MAX, "compute op missing for prefetch dep");
        prog.ops[i].deps.push(dep);
    }
}

impl StepProgram {
    /// The wire annotation of an op, if it is a communication op.
    pub fn wire_of(&self, id: OpId) -> Option<&WireOp> {
        match &self.ops[id].kind {
            OpKind::GatherShards { wire, .. }
            | OpKind::ReduceScatterGrads { wire, .. }
            | OpKind::AllReduceGrads { wire, .. }
            | OpKind::CrossGroupAllReduce { wire, .. }
            | OpKind::ParamRefresh { wire } => Some(wire),
            _ => None,
        }
    }

    /// Op ids of every communication op, in program order.
    pub fn wire_ops(&self) -> Vec<OpId> {
        (0..self.ops.len()).filter(|&i| self.wire_of(i).is_some()).collect()
    }

    /// Cluster-wide NIC wire volume of one iteration derived from the IR:
    /// each op contributes its per-node NIC bytes × the nodes its group
    /// touches. This is what the report's `nic_bytes_per_node` divides.
    pub fn total_nic_bytes(&self, net: &NetParams) -> u64 {
        self.wire_ops()
            .iter()
            .map(|&i| {
                let w = self.wire_of(i).unwrap();
                w.wire.cost(net).nic_bytes()
                    * nodes_spanned(&w.group.members(self.n, self.p), self.k)
            })
            .sum()
    }

    /// A stable, human-diffable rendering of the program, used by the
    /// golden-schedule snapshot tests to pin the emitters' output.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "schedule n={} k={} p={} layers={} accum={} overhead_us={}",
            self.n,
            self.k,
            self.p,
            self.num_layers,
            self.accum_steps,
            self.decision_overhead.as_secs_f64() * 1e6,
        );
        let group = |g: &GroupRef| match g {
            GroupRef::Partition(i) => format!("part{i}"),
            GroupRef::All => "all".into(),
            GroupRef::Replication(i) => format!("repl{i}"),
        };
        let wire = |w: &WireOp| {
            let alg = match w.wire.kind {
                WireKind::AllGather { hierarchical: true, .. } => "ag-hier",
                WireKind::AllGather { hierarchical: false, .. } => "ag",
                WireKind::ReduceScatter => "rs",
                WireKind::AllReduce { .. } => "ar",
                WireKind::P2p { .. } => "p2p",
            };
            let codec = match w.scheme {
                Some(s) => format!("+{}", s.label()),
                None => String::new(),
            };
            format!("{} {} {}B{}", group(&w.group), alg, w.wire.bytes, codec)
        };
        for (i, op) in self.ops.iter().enumerate() {
            let body = match &op.kind {
                OpKind::MicroBarrier => "barrier".to_string(),
                OpKind::GatherShards { layer, pass, wire: w } => {
                    let p = if *pass == Pass::Forward { "fwd" } else { "bwd" };
                    format!("gather.{p} l{layer} {}", wire(w))
                }
                OpKind::Compute { layer, pass, flops } => {
                    let p = if *pass == Pass::Forward { "fwd" } else { "bwd" };
                    format!("compute.{p} l{layer} {flops:.3e}fl")
                }
                OpKind::AccumGrads { bucket } => format!("accum b{bucket}"),
                OpKind::ReduceScatterGrads { bucket, source, wire: w } => {
                    format!("reduce-scatter b{bucket} {source:?} {}", wire(w))
                }
                OpKind::AllReduceGrads { bucket, source, wire: w } => {
                    format!("all-reduce b{bucket} {source:?} {}", wire(w))
                }
                OpKind::CrossGroupAllReduce { bucket, local, wire: w } => {
                    format!("hop2 b{bucket} local{local} {}", wire(w))
                }
                OpKind::OptimizerUpdate { bytes, record } => {
                    format!("optimizer {bytes}B record={record}")
                }
                OpKind::ParamRefresh { wire: w } => format!("param-refresh {}", wire(w)),
            };
            let _ = writeln!(out, "[{i:03}] u{} {body} deps={:?}", op.micro, op.deps);
        }
        out
    }
}

/// What pushing a program onto the simulator produced.
#[derive(Debug, Clone)]
pub struct SimExecution {
    /// Cluster-wide NIC wire bytes accumulated over every emitted
    /// collective (per-node bytes × nodes spanned).
    pub nic_bytes_total: u64,
    /// Op ids of the wire collectives in the order they were costed.
    pub wire_ops: Vec<OpId>,
}

/// The simulator backend: replay `prog` push-for-push onto `sc`.
///
/// The replay reproduces the historical inline lowering exactly — same
/// per-stream op sequences, same event-allocation order — so a program
/// emitted from a strategy produces bit-identical simulation results to
/// the pre-IR code. Call [`SimCluster::run`]/[`SimCluster::run_traced`]
/// afterwards.
pub fn execute_on_sim(
    prog: &StepProgram,
    sc: &mut SimCluster,
    sustained_flops: f64,
) -> SimExecution {
    let (n, k, p) = (prog.n, prog.k, prog.p);
    let nl = prog.num_layers;
    let memcpy_bw = sc.spec.instance.memcpy_bw;
    // Per-op completion events, parallel to `prog.ops` (wire ops: one per
    // member; optimizer: one per rank when recorded).
    let mut op_events: Vec<Option<Vec<EventId>>> = vec![None; prog.ops.len()];
    // Compute-done event tables of the current (micro, pass) segment,
    // pre-allocated rank-major like the historical lowering so gathers can
    // reference compute events that have not been pushed yet.
    let mut fwd_tbl: Vec<Vec<EventId>> = Vec::new();
    let mut bwd_tbl: Vec<Vec<EventId>> = Vec::new();
    let mut segment: Option<(usize, Pass)> = None;
    let mut nic_total: u64 = 0;
    let mut wire_log: Vec<OpId> = Vec::new();

    // Resolve `dep` to the completion event `rank` must wait on, or `None`
    // when the rank does not participate in the dep op.
    let resolve = |ops: &[ScheduleOp],
                   op_events: &[Option<Vec<EventId>>],
                   fwd_tbl: &[Vec<EventId>],
                   bwd_tbl: &[Vec<EventId>],
                   dep: OpId,
                   rank: Rank|
     -> Option<EventId> {
        match &ops[dep].kind {
            OpKind::Compute { layer, pass, .. } => {
                let tbl = if *pass == Pass::Forward { fwd_tbl } else { bwd_tbl };
                Some(tbl[rank.0][*layer])
            }
            OpKind::GatherShards { wire, .. }
            | OpKind::ReduceScatterGrads { wire, .. }
            | OpKind::AllReduceGrads { wire, .. }
            | OpKind::CrossGroupAllReduce { wire, .. }
            | OpKind::ParamRefresh { wire } => wire
                .group
                .member_index(rank, n, p)
                .map(|ix| op_events[dep].as_ref().expect("dep op not yet executed")[ix]),
            OpKind::OptimizerUpdate { .. } => op_events[dep].as_ref().map(|v| v[rank.0]),
            OpKind::MicroBarrier | OpKind::AccumGrads { .. } => None,
        }
    };

    for (i, op) in prog.ops.iter().enumerate() {
        // A new (micro, pass) segment pre-allocates its compute-done event
        // table before any of the segment's ops push work.
        if let OpKind::GatherShards { pass, .. } | OpKind::Compute { pass, .. } = op.kind {
            if segment != Some((op.micro, pass)) {
                let tbl = if pass == Pass::Forward { &mut fwd_tbl } else { &mut bwd_tbl };
                *tbl = (0..n).map(|_| (0..nl).map(|_| sc.new_event()).collect()).collect();
                segment = Some((op.micro, pass));
            }
        }
        match &op.kind {
            OpKind::MicroBarrier => {
                for r in 0..n {
                    for &d in &op.deps {
                        if let Some(e) =
                            resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, Rank(r))
                        {
                            sc.compute_wait(Rank(r), e);
                            sc.lane_wait(Lane::Gather, Rank(r), e);
                        }
                    }
                }
            }
            OpKind::Compute { layer, pass, flops } => {
                let tbl = if *pass == Pass::Forward { &fwd_tbl } else { &bwd_tbl };
                for (r, row) in tbl.iter().enumerate() {
                    for &d in &op.deps {
                        if let Some(e) =
                            resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, Rank(r))
                        {
                            sc.compute_wait(Rank(r), e);
                        }
                    }
                    sc.compute_kernel(Rank(r), *flops, sustained_flops);
                    sc.compute_record_into(Rank(r), row[*layer]);
                }
            }
            OpKind::AccumGrads { .. } => {} // local fold: no simulated work
            OpKind::GatherShards { wire, .. }
            | OpKind::ReduceScatterGrads { wire, .. }
            | OpKind::AllReduceGrads { wire, .. }
            | OpKind::CrossGroupAllReduce { wire, .. }
            | OpKind::ParamRefresh { wire } => {
                let members = wire.group.members(n, p);
                for &d in &op.deps {
                    for &m in &members {
                        if let Some(e) = resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, m) {
                            sc.lane_wait(wire.lane, m, e);
                        }
                    }
                }
                let cost = wire.wire.cost(&sc.net);
                nic_total += cost.nic_bytes() * nodes_spanned(&members, k);
                let overhead = if wire.overhead { prog.decision_overhead } else { SimTime::ZERO };
                let evs = sc.collective(&members, wire.lane, &cost, overhead);
                op_events[i] = Some(evs);
                wire_log.push(i);
            }
            OpKind::OptimizerUpdate { bytes, record } => {
                let opt_time = SimTime::from_secs_f64(*bytes as f64 / memcpy_bw);
                let mut evs = Vec::with_capacity(if *record { n } else { 0 });
                for r in 0..n {
                    for &d in &op.deps {
                        if let Some(e) =
                            resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, Rank(r))
                        {
                            sc.compute_wait(Rank(r), e);
                        }
                    }
                    sc.compute_for(Rank(r), opt_time);
                    if *record {
                        evs.push(sc.compute_record(Rank(r)));
                    }
                }
                if *record {
                    op_events[i] = Some(evs);
                }
            }
        }
    }
    SimExecution { nic_bytes_total: nic_total, wire_ops: wire_log }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize, p: usize, micro_sync: MicroSync, s: usize) -> ScheduleSpec {
        let layers = vec![
            LayerSchedule { param_bytes: 4096, fwd_flops: 1e9, bwd_flops: 2e9 },
            LayerSchedule { param_bytes: 0, fwd_flops: 5e8, bwd_flops: 1e9 },
            LayerSchedule { param_bytes: 8192, fwd_flops: 1e9, bwd_flops: 2e9 },
        ];
        ScheduleSpec {
            n,
            k: 2,
            p_params: p,
            p_grads: p,
            p_opt: p,
            micro_sync,
            accum_steps: s,
            hierarchical: false,
            coalesced: false,
            prefetch_depth: 1,
            decision_overhead: SimTime::from_micros(15),
            layers,
            bucket_bytes: 1 << 30,
            total_param_bytes: 4096 + 8192,
            optimizer_bytes: (4096 + 8192) * 6 / p as u64,
            compression: None,
            elem_bytes: 4,
        }
    }

    #[test]
    fn group_membership_math() {
        let (n, p) = (8, 2);
        assert_eq!(GroupRef::Partition(1).members(n, p), vec![Rank(2), Rank(3)]);
        assert_eq!(GroupRef::Partition(1).member_index(Rank(3), n, p), Some(1));
        assert_eq!(GroupRef::Partition(1).member_index(Rank(4), n, p), None);
        assert_eq!(
            GroupRef::Replication(1).members(n, p),
            vec![Rank(1), Rank(3), Rank(5), Rank(7)]
        );
        assert_eq!(GroupRef::Replication(1).member_index(Rank(5), n, p), Some(2));
        assert_eq!(GroupRef::Replication(0).member_index(Rank(5), n, p), None);
        assert_eq!(GroupRef::All.members(n, p).len(), 8);
        assert_eq!(GroupRef::All.member_index(Rank(6), n, p), Some(6));
    }

    #[test]
    fn two_hop_program_shape() {
        // 2 micro-steps, n=4, p=2: hop 1 every micro, hop 2 at the boundary.
        let prog = spec(4, 2, MicroSync::PartitionReduceScatter, 2).program();
        let hop1 =
            prog.ops.iter().filter(|o| matches!(o.kind, OpKind::ReduceScatterGrads { .. })).count();
        let hop2 = prog
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::CrossGroupAllReduce { .. }))
            .count();
        // 1 bucket × 2 partition groups × 2 micros; hop 2: 1 bucket × p=2.
        assert_eq!(hop1, 4);
        assert_eq!(hop2, 2);
        // Hop 2 pays no decision overhead; hop 1 does.
        for op in &prog.ops {
            if let OpKind::CrossGroupAllReduce { wire, .. } = &op.kind {
                assert!(!wire.overhead);
            }
            if let OpKind::ReduceScatterGrads { wire, .. } = &op.kind {
                assert!(wire.overhead);
            }
        }
    }

    #[test]
    fn zero3_program_has_barriers_between_micros() {
        let prog = spec(4, 4, MicroSync::GlobalAllReduce, 3).program();
        let barriers = prog.ops.iter().filter(|o| matches!(o.kind, OpKind::MicroBarrier)).count();
        // No barrier before the first micro-step.
        assert_eq!(barriers, 2);
        // Every barrier waits on the previous micro's last all-reduce.
        for (i, op) in prog.ops.iter().enumerate() {
            if matches!(op.kind, OpKind::MicroBarrier) {
                assert_eq!(op.deps.len(), 1);
                let d = op.deps[0];
                assert!(d < i);
                assert!(matches!(prog.ops[d].kind, OpKind::AllReduceGrads { .. }));
                assert_eq!(prog.ops[d].micro + 1, op.micro);
            }
        }
    }

    #[test]
    fn ddp_program_accumulates_then_reduces_once() {
        let prog = spec(4, 1, MicroSync::LocalAccumulate, 3).program();
        let accums =
            prog.ops.iter().filter(|o| matches!(o.kind, OpKind::AccumGrads { .. })).count();
        let ars = prog
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::AllReduceGrads { source: GradSource::Accum, .. }))
            .count();
        assert_eq!(accums, 3); // one per micro-step (single bucket)
        assert_eq!(ars, 1); // boundary only
        assert!(prog.ops.iter().all(|o| !matches!(o.kind, OpKind::GatherShards { .. })));
    }

    #[test]
    fn prefetch_is_a_transform() {
        let mut bare = emit_step(&spec(4, 2, MicroSync::PartitionReduceScatter, 1));
        for op in &bare.ops {
            if matches!(op.kind, OpKind::GatherShards { .. }) {
                assert!(op.deps.is_empty());
            }
        }
        apply_prefetch(&mut bare, 0);
        // depth 0: the gather for layer 2 (fwd) waits on layer 1's compute;
        // layer 0's gather (first with params) stays unconstrained.
        for (i, op) in bare.ops.iter().enumerate() {
            if let OpKind::GatherShards { layer, pass: Pass::Forward, .. } = op.kind {
                if layer == 0 {
                    assert!(op.deps.is_empty(), "op {i}");
                } else {
                    assert_eq!(op.deps.len(), 1, "op {i}");
                    assert!(matches!(
                        bare.ops[op.deps[0]].kind,
                        OpKind::Compute { layer: dl, pass: Pass::Forward, .. } if dl == layer - 1
                    ));
                }
            }
        }
    }

    #[test]
    fn optimizer_waits_on_final_reduction() {
        let prog = spec(4, 2, MicroSync::PartitionReduceScatter, 2).program();
        let opt = prog
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::OptimizerUpdate { .. }))
            .expect("program must end with the optimizer");
        // n > p: the final reducers are the p hop-2 ops.
        assert_eq!(opt.deps.len(), 2);
        for &d in &opt.deps {
            assert!(matches!(prog.ops[d].kind, OpKind::CrossGroupAllReduce { .. }));
        }
    }

    #[test]
    fn zero1_emits_param_refresh_after_optimizer() {
        let mut sp = spec(4, 1, MicroSync::LocalAccumulate, 2);
        sp.p_opt = 4; // ZeRO-1: optimizer sharded, params replicated
        let prog = sp.program();
        let last = prog.ops.last().unwrap();
        let OpKind::ParamRefresh { wire } = &last.kind else {
            panic!("ZeRO-1 must end with a parameter refresh");
        };
        assert_eq!(wire.group, GroupRef::All);
        assert_eq!(last.deps.len(), 1);
        assert!(matches!(
            prog.ops[last.deps[0]].kind,
            OpKind::OptimizerUpdate { record: true, .. }
        ));
    }

    #[test]
    fn dump_is_stable_and_complete() {
        let prog = spec(4, 2, MicroSync::PartitionReduceScatter, 1).program();
        let d = prog.dump();
        assert!(d.starts_with("schedule n=4 k=2 p=2 layers=3 accum=1"));
        assert_eq!(d.lines().count(), 1 + prog.ops.len());
        assert_eq!(d, prog.dump(), "dump must be deterministic");
        assert!(d.contains("hop2"));
        assert!(d.contains("reduce-scatter"));
    }

    #[test]
    fn executor_nic_accounting_matches_program_derivation() {
        use mics_cluster::{ClusterSpec, InstanceType};
        let sp = ScheduleSpec { k: 8, ..spec(16, 8, MicroSync::PartitionReduceScatter, 2) };
        let prog = sp.program();
        let mut sc = SimCluster::new(ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2));
        let exec = execute_on_sim(&prog, &mut sc, 1e12);
        assert_eq!(exec.nic_bytes_total, prog.total_nic_bytes(&sc.net));
        assert_eq!(exec.wire_ops, prog.wire_ops());
        let (makespan, _, _) = sc.run();
        assert!(makespan > SimTime::ZERO);
    }
}
