//! The schedule IR: one typed lowering of the MiCS training step, consumed
//! by both the simulator and the real dataplane.
//!
//! MiCS's contributions (§3.3 hierarchical gather, §3.4 2-hop sync, §4
//! prefetch/overlap) are all *schedule* properties. This module makes the
//! schedule a first-class value: a [`StepProgram`] — a flat list of
//! [`ScheduleOp`]s with explicit op-to-op dependencies and per-op wire
//! annotations ([`WireOp`]) — emitted once per strategy by [`emit_step`]
//! from a [`ScheduleSpec`], then consumed by two backends:
//!
//! * [`execute_on_sim`] replays the program onto a [`SimCluster`] — the
//!   analytic cost backend behind [`crate::simulate`]. The replay is
//!   push-for-push identical to the historical inline lowering in
//!   `dp.rs`, so every simulated number is bit-identical to what that
//!   lowering produced.
//! * the `mics-minidl` interpreter walks the same program and drives the
//!   real `mics-dataplane` communicators, making the fidelity claim
//!   structural: the dataplane executes the *same program* the simulator
//!   costs.
//!
//! Prefetch depth is not baked into emission: [`emit_step`] produces
//! gathers with no lookahead constraint and [`apply_prefetch`] is a
//! schedule *transform* that adds the backpressure dependencies, so tuner
//! passes can re-run it at different depths without re-emitting.

use crate::config::MicroSync;
use crate::ops::{Lane, SimCluster};
use mics_cluster::{nodes_spanned, Rank};
use mics_collectives::dispatch::{WireCollective, WireKind};
use mics_collectives::NetParams;
use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
use mics_simnet::{EventId, SimTime};

/// Index of an op inside [`StepProgram::ops`]; dependencies are expressed
/// as these indices.
pub type OpId = usize;

/// Which half of the micro-step a gather or compute belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Forward propagation (ascending layer order).
    Forward,
    /// Backward propagation (descending layer order, with recompute).
    Backward,
}

/// The execution geometry a program is emitted for: `dp` data-parallel
/// ranks per pipeline stage × `pp` stages, with partition groups of `p`
/// ranks inside each stage's dp-world. The world is `dp·pp`, laid out
/// stage-major: rank = `stage·dp + d`. A geometry is an explicit, mutable
/// value — the elastic `reshape` path re-emits the same spec at a new
/// geometry instead of baking the world in at emit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Data-parallel ranks per pipeline stage.
    pub dp: usize,
    /// Pipeline stages (1 = no pipeline dimension).
    pub pp: usize,
    /// Partition group size within one stage's dp-world (`p_params`).
    pub p: usize,
    /// Devices per node.
    pub k: usize,
}

impl Geometry {
    /// The classic MiCS geometry: a flat dp-world with no pipeline stages.
    pub fn flat(n: usize, k: usize, p: usize) -> Geometry {
        Geometry { dp: n, pp: 1, p, k }
    }

    /// Total devices (`dp · pp`).
    pub fn world(&self) -> usize {
        self.dp * self.pp
    }

    /// The pipeline stage a rank belongs to.
    pub fn stage_of(&self, rank: Rank) -> usize {
        rank.0 / self.dp
    }

    /// A rank's index within its stage's dp-world.
    pub fn dp_index(&self, rank: Rank) -> usize {
        rank.0 % self.dp
    }

    /// The global rank at `(stage, d)`.
    pub fn rank(&self, stage: usize, d: usize) -> Rank {
        Rank(stage * self.dp + d)
    }

    /// Partition groups per stage.
    pub fn groups(&self) -> usize {
        self.dp / self.p
    }

    /// The stage owning `layer` when `num_layers` split contiguously over
    /// the `pp` stages (stage 0 for flat geometries).
    pub fn stage_of_layer(&self, layer: usize, num_layers: usize) -> usize {
        if self.pp == 1 {
            0
        } else {
            layer / (num_layers / self.pp)
        }
    }

    /// Whether the geometry is well-formed (`p` divides `dp`, nothing zero).
    pub fn validate(&self) {
        assert!(
            self.dp >= 1 && self.pp >= 1 && self.p >= 1 && self.k >= 1,
            "invalid geometry {self:?}"
        );
        assert!(self.dp.is_multiple_of(self.p), "p={} must divide dp={}", self.p, self.dp);
    }
}

/// A rank group, by construction rather than by member list (§3.2's
/// partition/replication group structure, Figure 2), scoped to one
/// pipeline stage of a [`Geometry`] (stage 0 is the whole cluster for
/// flat geometries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupRef {
    /// Partition group `g` of `stage`: the `p` ranks with dp-indices
    /// `g·p .. (g+1)·p`.
    Partition {
        /// Pipeline stage the group lives in.
        stage: usize,
        /// Partition group index within the stage.
        g: usize,
    },
    /// Every rank of one pipeline stage (the whole cluster at `pp = 1`).
    All {
        /// Pipeline stage the group lives in.
        stage: usize,
    },
    /// Replication group `local` of `stage`: the `dp/p` ranks with
    /// dp-index `g·p + local` (stride `p`).
    Replication {
        /// Pipeline stage the group lives in.
        stage: usize,
        /// Local index within the partition group whose shard replicas
        /// this group connects.
        local: usize,
    },
    /// The two ranks exchanging one micro-batch's boundary tensor between
    /// adjacent pipeline stages (the 1F1B p2p channel).
    Pair {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
    },
}

impl GroupRef {
    /// Materialize the member ranks on `geo` — ascending for the
    /// stage-scoped groups, `[from, to]` for pairs.
    pub fn members(&self, geo: &Geometry) -> Vec<Rank> {
        match *self {
            GroupRef::Partition { stage, g } => {
                (g * geo.p..(g + 1) * geo.p).map(|d| geo.rank(stage, d)).collect()
            }
            GroupRef::All { stage } => (0..geo.dp).map(|d| geo.rank(stage, d)).collect(),
            GroupRef::Replication { stage, local } => {
                (0..geo.dp / geo.p).map(|g| geo.rank(stage, g * geo.p + local)).collect()
            }
            GroupRef::Pair { from, to } => vec![from, to],
        }
    }

    /// This rank's index within the group's member list, or `None` if it
    /// does not participate.
    pub fn member_index(&self, rank: Rank, geo: &Geometry) -> Option<usize> {
        let (s, d) = (geo.stage_of(rank), geo.dp_index(rank));
        match *self {
            GroupRef::Partition { stage, g } => {
                (s == stage && g * geo.p <= d && d < (g + 1) * geo.p).then(|| d - g * geo.p)
            }
            GroupRef::All { stage } => (s == stage && rank.0 < geo.world()).then_some(d),
            GroupRef::Replication { stage, local } => {
                (s == stage && d % geo.p == local).then(|| d / geo.p)
            }
            GroupRef::Pair { from, to } => {
                (rank == from).then_some(0).or((rank == to).then_some(1))
            }
        }
    }

    /// Whether `rank` participates in this group.
    pub fn contains(&self, rank: Rank, geo: &Geometry) -> bool {
        self.member_index(rank, geo).is_some()
    }
}

/// Which buffer a gradient reduction consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradSource {
    /// The current micro-step's freshly computed gradient (per-micro-step
    /// synchronization: MiCS hop 1, ZeRO-3's global all-reduce).
    MicroGrad,
    /// The locally accumulated gradient (boundary synchronization: DDP and
    /// ZeRO-1/2's bucketed reduction over the whole iteration).
    Accum,
}

/// The wire-level annotation of a communication op: who talks, on which
/// lane, what algorithm moves how many bytes, and under which codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireOp {
    /// Participating ranks.
    pub group: GroupRef,
    /// The communication stream the op occupies.
    pub lane: Lane,
    /// Algorithm + payload for the α–β cost dispatch
    /// ([`WireCollective::cost`]).
    pub wire: WireCollective,
    /// Quantized-wire scheme for the real dataplane (`None` = exact wire).
    /// The wire-byte model of the same codec lives in `wire.codec`.
    pub scheme: Option<QuantScheme>,
    /// Whether the op pays the plan's host-side decision overhead before
    /// launching (the 2-hop boundary all-reduce does not: its schedule is
    /// fully precomputed, §3.4/§4).
    pub overhead: bool,
}

/// One operation of the step program.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// The global synchronization barrier the "alternative schedule" pays
    /// at every micro-step boundary (§2.3/§3.4): both the compute stream
    /// and the gather lane wait for the previous micro-step's last
    /// gradient reduction.
    MicroBarrier,
    /// All-gather one layer's parameter shards within a partition group.
    GatherShards {
        /// Layer being materialized.
        layer: usize,
        /// Forward or backward re-gather.
        pass: Pass,
        /// Wire annotation.
        wire: WireOp,
    },
    /// One layer's compute: forward, or recompute + backward.
    Compute {
        /// Layer index.
        layer: usize,
        /// Which pass.
        pass: Pass,
        /// FLOPs of the kernel (0 for layers with no compute).
        flops: f64,
    },
    /// Fold the current micro-step's gradient into the local accumulation
    /// buffer — no wire traffic (DDP/ZeRO-1/2 between boundaries, and the
    /// degenerate single-member groups of the sharded schedules).
    AccumGrads {
        /// Gradient bucket index.
        bucket: usize,
    },
    /// Reduce-scatter one gradient bucket (MiCS hop 1 within the partition
    /// group; ZeRO-2 over the cluster at the boundary).
    ReduceScatterGrads {
        /// Gradient bucket index.
        bucket: usize,
        /// Which gradient buffer is reduced.
        source: GradSource,
        /// Wire annotation.
        wire: WireOp,
    },
    /// All-reduce one gradient bucket (ZeRO-3's per-micro-step global
    /// all-reduce; DDP/ZeRO-1's boundary all-reduce).
    AllReduceGrads {
        /// Gradient bucket index.
        bucket: usize,
        /// Which gradient buffer is reduced.
        source: GradSource,
        /// Wire annotation.
        wire: WireOp,
    },
    /// MiCS hop 2 (§3.4): all-reduce one bucket's accumulated gradient
    /// shard across a replication group at the accumulation boundary.
    CrossGroupAllReduce {
        /// Gradient bucket index.
        bucket: usize,
        /// Local rank within the partition group whose shards this op
        /// reduces (one op per `local` in `0..p`).
        local: usize,
        /// Wire annotation.
        wire: WireOp,
    },
    /// The optimizer step: a bandwidth-bound fp32 Adam update over each
    /// device's shard, gated on the last gradient reduction.
    OptimizerUpdate {
        /// Bytes read+written per device (≈ 24 B/parameter over the shard).
        bytes: u64,
        /// Record a completion event (needed when a parameter refresh
        /// follows).
        record: bool,
    },
    /// ZeRO-1/2's boundary parameter refresh: a cluster-wide all-gather of
    /// the updated replicas.
    ParamRefresh {
        /// Wire annotation.
        wire: WireOp,
    },
    /// 1F1B: ship one micro-batch's boundary tensor (forward activation or
    /// backward gradient) to the adjacent pipeline stage. The wire group is
    /// the [`GroupRef::Pair`] of the two ranks; the send carries the
    /// payload bytes and is issued asynchronously by the real backend.
    StageSend {
        /// The receiving stage.
        peer_stage: usize,
        /// Forward (activation) or backward (gradient) boundary tensor.
        pass: Pass,
        /// Wire annotation ([`WireKind::P2p`]).
        wire: WireOp,
    },
    /// 1F1B: block until the matching [`OpKind::StageSend`] from the
    /// adjacent stage lands. Carries zero wire bytes — the send pays for
    /// the transfer; the recv is the dependency edge's landing point.
    StageRecv {
        /// The sending stage.
        peer_stage: usize,
        /// Forward (activation) or backward (gradient) boundary tensor.
        pass: Pass,
        /// Wire annotation ([`WireKind::P2p`], zero bytes).
        wire: WireOp,
    },
}

/// One scheduled operation: kind + position + explicit dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOp {
    /// Micro-step this op belongs to (boundary/optimizer ops carry the
    /// last micro-step's index).
    pub micro: usize,
    /// What the op does.
    pub kind: OpKind,
    /// Ops that must complete (for the participating rank) before this op
    /// may run. The wait kind follows from this op's kind: compute ops
    /// wait on their compute stream, wire ops on their lane.
    pub deps: Vec<OpId>,
}

/// A fully lowered training step: the single schedule both backends
/// consume, parameterized by the geometry it was emitted for.
#[derive(Debug, Clone, PartialEq)]
pub struct StepProgram {
    /// The dp × pp × p geometry the program targets.
    pub geo: Geometry,
    /// Number of model layers.
    pub num_layers: usize,
    /// Micro-steps per iteration.
    pub accum_steps: usize,
    /// Host-side think time charged by ops with `overhead = true`.
    pub decision_overhead: SimTime,
    /// The ops, in emission (and execution) order.
    pub ops: Vec<ScheduleOp>,
}

impl StepProgram {
    /// Total devices (`dp · pp`).
    pub fn n(&self) -> usize {
        self.geo.world()
    }

    /// Devices per node.
    pub fn k(&self) -> usize {
        self.geo.k
    }

    /// Partition group size (`p_params`) within one stage's dp-world.
    pub fn p(&self) -> usize {
        self.geo.p
    }
}

/// Per-layer workload numbers the emitter consumes.
#[derive(Debug, Clone, Copy)]
pub struct LayerSchedule {
    /// Parameter bytes of the layer (at the wire dtype).
    pub param_bytes: u64,
    /// Forward FLOPs.
    pub fwd_flops: f64,
    /// Backward FLOPs including activation recompute.
    pub bwd_flops: f64,
}

/// Everything [`emit_step`] needs to lower one strategy's iteration.
#[derive(Debug, Clone)]
pub struct ScheduleSpec {
    /// Total devices.
    pub n: usize,
    /// Devices per node.
    pub k: usize,
    /// Partition group size for parameters.
    pub p_params: usize,
    /// Shard count for gradients (ZeRO-2 reduces by scatter when > 1).
    pub p_grads: usize,
    /// Shard count for optimizer states.
    pub p_opt: usize,
    /// Per-micro-step gradient handling.
    pub micro_sync: MicroSync,
    /// Micro-steps per iteration.
    pub accum_steps: usize,
    /// Use the §3.3 hierarchical all-gather when the partition group spans
    /// nodes (callers pass the memory-validated decision).
    pub hierarchical: bool,
    /// Batch the hierarchical stage-3 calls through the coalesced API.
    pub coalesced: bool,
    /// Gather-lane lookahead in layers, applied by [`apply_prefetch`].
    pub prefetch_depth: usize,
    /// Host-side think time before each scheduled collective.
    pub decision_overhead: SimTime,
    /// The layers, in forward order.
    pub layers: Vec<LayerSchedule>,
    /// Gradient-bucket fusion threshold (DeepSpeed's `reduce_bucket_size`).
    pub bucket_bytes: u64,
    /// Total parameter bytes (for the ZeRO-1/2 refresh gather).
    pub total_param_bytes: u64,
    /// Optimizer bytes read+written per device (already divided by
    /// `p_opt`).
    pub optimizer_bytes: u64,
    /// Quantized-collective configuration (`None` = full-precision wire).
    pub compression: Option<CompressionConfig>,
    /// Uncompressed element width in bytes (the wire dtype).
    pub elem_bytes: u64,
}

impl ScheduleSpec {
    /// Emit and apply the spec's own prefetch depth: the program both
    /// backends should run.
    pub fn program(&self) -> StepProgram {
        let mut prog = emit_step(self);
        apply_prefetch(&mut prog, self.prefetch_depth);
        prog
    }
}

/// Gradient buckets: consecutive layers in backward order fused until the
/// bucket reaches `bucket_bytes` (zero-parameter layers are skipped).
/// Returns `(layer indices in backward order, fused bytes)` per bucket.
fn bucketize(layers: &[LayerSchedule], bucket_bytes: u64) -> Vec<(Vec<usize>, u64)> {
    let mut out: Vec<(Vec<usize>, u64)> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut bytes = 0u64;
    for idx in 0..layers.len() {
        let l = layers.len() - 1 - idx;
        let b = layers[l].param_bytes;
        if b == 0 {
            continue;
        }
        if !cur.is_empty() && bytes + b > bucket_bytes {
            out.push((std::mem::take(&mut cur), bytes));
            bytes = 0;
        }
        cur.push(l);
        bytes += b;
    }
    if !cur.is_empty() {
        out.push((cur, bytes));
    }
    out
}

/// Lower one iteration of `spec` to a [`StepProgram`].
///
/// The emission order is the contract both backends rely on: forward
/// gathers (layer-ascending, group-ascending), forward computes, backward
/// gathers (layer-descending), backward computes, then per-bucket gradient
/// synchronization, and after the last micro-step the optimizer update and
/// the ZeRO-1/2 parameter refresh. Prefetch dependencies are *not* added
/// here — see [`apply_prefetch`].
///
/// # Panics
/// Panics if `p_params` does not divide `n` or any dimension is zero.
pub fn emit_step(spec: &ScheduleSpec) -> StepProgram {
    let (n, k, p) = (spec.n, spec.k, spec.p_params);
    assert!(n >= 1 && k >= 1 && p >= 1 && n.is_multiple_of(p), "invalid geometry n={n} p={p}");
    let num_layers = spec.layers.len();
    let s = spec.accum_steps;
    let groups = n / p;

    // Codec resolution, mirroring the scope rules of the quantized
    // collectives: gathers and hop-1 reductions stay inside the partition
    // group; collectives that leave it compress only under
    // [`CompressionScope::Everywhere`].
    let cost_model = |c: &CompressionConfig| {
        let mut cm = c.scheme.cost_model();
        cm.elem_bytes = spec.elem_bytes;
        cm
    };
    let weight_codec = spec.compression.filter(|c| c.weights).map(|c| (c.scheme, cost_model(&c)));
    let grad_codec = |beyond_group: bool| {
        spec.compression
            .filter(|c| c.grads)
            .filter(|c| !beyond_group || c.scope == CompressionScope::Everywhere)
            .map(|c| (c.scheme, cost_model(&c)))
    };

    let hier = spec.hierarchical && p > k;
    let gather_wire = |layer: usize, g: usize| WireOp {
        group: GroupRef::Partition { stage: 0, g },
        lane: Lane::Gather,
        wire: WireCollective {
            kind: WireKind::AllGather { hierarchical: hier, coalesced: spec.coalesced },
            participants: p,
            devices_per_node: k,
            bytes: spec.layers[layer].param_bytes,
            codec: weight_codec.map(|(_, cm)| cm),
        },
        scheme: weight_codec.map(|(sch, _)| sch),
        overhead: true,
    };

    let buckets = bucketize(&spec.layers, spec.bucket_bytes);
    // Per-bucket synchronization op template: `(kind, source, wire)` or
    // `None` when the group is trivial and the bucket folds locally.
    enum SyncKind {
        Rs,
        Ar,
    }
    let bucket_sync = |bytes: u64| -> Option<(SyncKind, GradSource, WireOp)> {
        let mk = |kind, source, wk, participants, codec: Option<(QuantScheme, _)>| {
            (
                kind,
                source,
                WireOp {
                    group: if matches!(spec.micro_sync, MicroSync::PartitionReduceScatter) {
                        // Placeholder; rewritten per group below.
                        GroupRef::Partition { stage: 0, g: 0 }
                    } else {
                        GroupRef::All { stage: 0 }
                    },
                    lane: Lane::Reduce,
                    wire: WireCollective {
                        kind: wk,
                        participants,
                        devices_per_node: k,
                        bytes,
                        codec: codec.map(|(_, cm)| cm),
                    },
                    scheme: codec.map(|(sch, _)| sch),
                    overhead: true,
                },
            )
        };
        match spec.micro_sync {
            MicroSync::PartitionReduceScatter => (p > 1).then(|| {
                mk(
                    SyncKind::Rs,
                    GradSource::MicroGrad,
                    WireKind::ReduceScatter,
                    p,
                    grad_codec(false),
                )
            }),
            // The global all-reduce leaves the partition group unless the
            // group *is* the cluster (ZeRO-3 / MiCS with p = n).
            MicroSync::GlobalAllReduce => (n > 1).then(|| {
                mk(
                    SyncKind::Ar,
                    GradSource::MicroGrad,
                    WireKind::AllReduce { stride: 1 },
                    n,
                    grad_codec(p < n),
                )
            }),
            MicroSync::LocalAccumulate => (n > 1).then(|| {
                // The boundary reduction leaves the (trivial) partition
                // group, so only `Everywhere`-scoped compression applies.
                if spec.p_grads > 1 {
                    // ZeRO-2: reduce-scatter over the whole cluster.
                    mk(
                        SyncKind::Rs,
                        GradSource::Accum,
                        WireKind::ReduceScatter,
                        n,
                        grad_codec(true),
                    )
                } else {
                    // DDP / ZeRO-1: bucketed all-reduce over the cluster.
                    mk(
                        SyncKind::Ar,
                        GradSource::Accum,
                        WireKind::AllReduce { stride: 1 },
                        n,
                        grad_codec(true),
                    )
                }
            }),
        }
    };

    let mut ops: Vec<ScheduleOp> = Vec::new();
    // Previous synchronization's reduction ops per layer (the
    // write-after-read hazard on the gradient buffer, §3.4) and per rank
    // cover (for the optimizer's gate).
    let mut war: Vec<Vec<OpId>> = vec![Vec::new(); num_layers];
    let mut last_reduce: Vec<OpId> = Vec::new();
    let mut barrier: Option<OpId> = None;

    for micro in 0..s {
        // ---------- forward ----------
        if spec.micro_sync == MicroSync::GlobalAllReduce {
            if let Some(b) = barrier {
                ops.push(ScheduleOp { micro, kind: OpKind::MicroBarrier, deps: vec![b] });
            }
        }
        let mut fwd_gathers: Vec<Vec<OpId>> = vec![Vec::new(); num_layers];
        for (l, layer) in spec.layers.iter().enumerate() {
            if p == 1 || layer.param_bytes == 0 {
                continue;
            }
            for g in 0..groups {
                fwd_gathers[l].push(ops.len());
                ops.push(ScheduleOp {
                    micro,
                    kind: OpKind::GatherShards {
                        layer: l,
                        pass: Pass::Forward,
                        wire: gather_wire(l, g),
                    },
                    deps: Vec::new(),
                });
            }
        }
        let mut fwd_computes: Vec<OpId> = Vec::with_capacity(num_layers);
        for (l, layer) in spec.layers.iter().enumerate() {
            fwd_computes.push(ops.len());
            ops.push(ScheduleOp {
                micro,
                kind: OpKind::Compute { layer: l, pass: Pass::Forward, flops: layer.fwd_flops },
                deps: fwd_gathers[l].clone(),
            });
        }

        // ---------- backward (reverse layer order) ----------
        let mut bwd_gathers: Vec<Vec<OpId>> = vec![Vec::new(); num_layers];
        for idx in 0..num_layers {
            let l = num_layers - 1 - idx;
            if p == 1 || spec.layers[l].param_bytes == 0 {
                continue;
            }
            for g in 0..groups {
                bwd_gathers[l].push(ops.len());
                ops.push(ScheduleOp {
                    micro,
                    kind: OpKind::GatherShards {
                        layer: l,
                        pass: Pass::Backward,
                        wire: gather_wire(l, g),
                    },
                    deps: Vec::new(),
                });
            }
        }
        let mut bwd_computes: Vec<OpId> = vec![0; num_layers];
        for idx in 0..num_layers {
            let l = num_layers - 1 - idx;
            let mut deps = bwd_gathers[l].clone();
            // Gradient-buffer write-after-read hazard against the previous
            // micro-step's reduction of this layer.
            deps.extend(war[l].iter().copied());
            bwd_computes[l] = ops.len();
            ops.push(ScheduleOp {
                micro,
                kind: OpKind::Compute {
                    layer: l,
                    pass: Pass::Backward,
                    flops: spec.layers[l].bwd_flops,
                },
                deps,
            });
        }

        // ---------- per-micro-step gradient synchronization ----------
        let sync_this_micro = match spec.micro_sync {
            MicroSync::LocalAccumulate => micro == s - 1,
            _ => true,
        };
        let boundary = micro == s - 1;
        for (bi, (bucket_layers, bucket_bytes)) in buckets.iter().enumerate() {
            // A bucket is ready when its last-computed layer (the lowest
            // index — backward runs in decreasing layer order) finishes.
            let ready = bwd_computes[*bucket_layers.last().unwrap()];
            if spec.micro_sync == MicroSync::LocalAccumulate {
                // Local fold every micro-step; the wire only carries the
                // accumulated buffer at the boundary.
                ops.push(ScheduleOp {
                    micro,
                    kind: OpKind::AccumGrads { bucket: bi },
                    deps: vec![ready],
                });
            }
            if !sync_this_micro {
                continue;
            }
            let mut hop1_emitted = false;
            if let Some((kind, source, wire_tpl)) = bucket_sync(*bucket_bytes) {
                let group_list: Vec<GroupRef> =
                    if spec.micro_sync == MicroSync::PartitionReduceScatter {
                        (0..groups).map(|g| GroupRef::Partition { stage: 0, g }).collect()
                    } else {
                        vec![GroupRef::All { stage: 0 }]
                    };
                let mut batch: Vec<OpId> = Vec::with_capacity(group_list.len());
                for group in group_list {
                    let wire = WireOp { group, ..wire_tpl };
                    batch.push(ops.len());
                    ops.push(ScheduleOp {
                        micro,
                        kind: match kind {
                            SyncKind::Rs => OpKind::ReduceScatterGrads { bucket: bi, source, wire },
                            SyncKind::Ar => OpKind::AllReduceGrads { bucket: bi, source, wire },
                        },
                        deps: vec![ready],
                    });
                }
                for &l in bucket_layers {
                    war[l] = batch.clone();
                }
                last_reduce = batch.clone();
                if spec.micro_sync == MicroSync::GlobalAllReduce {
                    // The final bucket's reduction is the last to finish
                    // and forms the next micro-step's barrier.
                    barrier = batch.last().copied();
                }
                hop1_emitted = true;
            } else if spec.micro_sync != MicroSync::LocalAccumulate {
                // Trivial synchronization group (p = 1 hop 1, n = 1 global
                // all-reduce): the micro-gradient folds locally.
                ops.push(ScheduleOp {
                    micro,
                    kind: OpKind::AccumGrads { bucket: bi },
                    deps: vec![ready],
                });
            }
            // 2-hop second hop (§3.4): at the accumulation boundary,
            // all-reduce this bucket's accumulated gradient shard across
            // the replication group — bucketed so it overlaps with the
            // remaining backward compute, just like hop 1.
            if boundary && spec.micro_sync == MicroSync::PartitionReduceScatter && n > p {
                let shard_bytes = bucket_bytes / p as u64;
                if shard_bytes > 0 {
                    // Hop 2 crosses replication groups — beyond the
                    // partition group, so intra-group-only compression
                    // keeps it at full precision.
                    let codec = grad_codec(true);
                    let mut ids: Vec<OpId> = Vec::with_capacity(p);
                    for local in 0..p {
                        let deps = if hop1_emitted { Vec::new() } else { vec![ready] };
                        ids.push(ops.len());
                        ops.push(ScheduleOp {
                            micro,
                            kind: OpKind::CrossGroupAllReduce {
                                bucket: bi,
                                local,
                                wire: WireOp {
                                    group: GroupRef::Replication { stage: 0, local },
                                    lane: Lane::Reduce,
                                    wire: WireCollective {
                                        kind: WireKind::AllReduce { stride: p },
                                        participants: n / p,
                                        devices_per_node: k,
                                        bytes: shard_bytes,
                                        codec: codec.map(|(_, cm)| cm),
                                    },
                                    scheme: codec.map(|(sch, _)| sch),
                                    overhead: false,
                                },
                            },
                            deps,
                        });
                    }
                    last_reduce = ids;
                }
            }
        }
    }

    // ---------- optimizer step + ZeRO-1/2 parameter refresh ----------
    let record = spec.p_opt > 1 && spec.p_params == 1;
    let opt_id = ops.len();
    ops.push(ScheduleOp {
        micro: s - 1,
        kind: OpKind::OptimizerUpdate { bytes: spec.optimizer_bytes, record },
        deps: last_reduce,
    });
    if record && n > 1 {
        ops.push(ScheduleOp {
            micro: s - 1,
            kind: OpKind::ParamRefresh {
                wire: WireOp {
                    group: GroupRef::All { stage: 0 },
                    lane: Lane::Gather,
                    wire: WireCollective {
                        kind: WireKind::AllGather { hierarchical: false, coalesced: false },
                        participants: n,
                        devices_per_node: k,
                        bytes: spec.total_param_bytes,
                        codec: None,
                    },
                    scheme: None,
                    overhead: true,
                },
            },
            deps: vec![opt_id],
        });
    }

    StepProgram {
        geo: Geometry::flat(n, k, p),
        num_layers,
        accum_steps: s,
        decision_overhead: spec.decision_overhead,
        ops,
    }
}

/// A pipeline wrapper around any existing strategy: `inner` describes ONE
/// stage's dp-world (`inner.n` ranks, partition groups of `inner.p_params`)
/// over the FULL layer list; the wrapper splits the layers contiguously
/// over `pp` stages and emits a 1F1B (one-forward-one-backward) schedule
/// with explicit cross-stage [`OpKind::StageSend`]/[`OpKind::StageRecv`]
/// dependency edges. At `pp = 1` it delegates to the flat emitter, so the
/// program (and its dump) is bit-identical to the non-pipelined one.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// The per-stage strategy template; `inner.n` is the dp-world of one
    /// stage, `inner.layers` the full model.
    pub inner: ScheduleSpec,
    /// Pipeline stages.
    pub pp: usize,
    /// Bytes of the boundary activation tensor per micro-batch (the
    /// backward boundary gradient has the same shape).
    pub act_bytes: u64,
}

impl PipelineSpec {
    /// The geometry the emitted program targets.
    pub fn geometry(&self) -> Geometry {
        Geometry { dp: self.inner.n, pp: self.pp, p: self.inner.p_params, k: self.inner.k }
    }

    /// Lower to a [`StepProgram`]. `pp = 1` is exactly the flat program
    /// (including prefetch edges); `pp ≥ 2` emits the 1F1B schedule.
    pub fn program(&self) -> StepProgram {
        if self.pp == 1 {
            self.inner.program()
        } else {
            emit_pipeline(self)
        }
    }
}

/// The elastic `reshape(old, new)` transition at the IR level: assert that
/// `spec` matches the `old` geometry, then re-emit the same strategy and
/// model for `new`. State continuity is the checkpoint layer's job (the
/// resharding path in `mics-minidl`); this function covers the program
/// side — the schedule is a *function of the geometry*, not a baked-in
/// world, so growing or shrinking is a re-emission.
pub fn reshape(spec: &ScheduleSpec, old: &Geometry, new: &Geometry) -> StepProgram {
    assert_eq!(
        (old.dp * old.pp, old.p),
        (spec.n, spec.p_params),
        "spec was not emitted for the old geometry"
    );
    assert_eq!(old.pp, 1, "pipeline reshape is not supported; reshape the per-stage spec");
    new.validate();
    spec.retarget(new.world(), new.k, new.p).program()
}

impl ScheduleSpec {
    /// The same strategy and model at a new flat dp-world: `n` ranks in
    /// nodes of `k`, partition groups of `p`. A state dimension follows the
    /// new `p` iff it was sharded over the whole old partition group
    /// (`== p_params` — at the degenerate `p_params = 1` every dimension
    /// counts as sharded, so growing out of a one-rank group re-shards);
    /// dimensions replicated by choice stay replicated. Shard-proportional
    /// quantities (the per-device optimizer traffic) rescale with the
    /// shard count.
    pub fn retarget(&self, n: usize, k: usize, p: usize) -> ScheduleSpec {
        let follows = |dim: usize| if dim == self.p_params { p } else { 1 };
        let mut s = self.clone();
        s.n = n;
        s.k = k;
        s.p_params = p;
        s.p_grads = follows(self.p_grads);
        let new_p_opt = follows(self.p_opt);
        s.optimizer_bytes = self.optimizer_bytes * self.p_opt as u64 / new_p_opt as u64;
        s.p_opt = new_p_opt;
        s
    }
}

/// The wire annotation of one 1F1B boundary hop: a 2-rank p2p on the lane
/// matching its direction (activations ride the gather lane, gradients the
/// reduce lane, so boundary traffic contends with the stage's own
/// collectives exactly as it would on a real NIC).
fn pair_wire(geo: &Geometry, from: Rank, to: Rank, pass: Pass, bytes: u64) -> WireOp {
    WireOp {
        group: GroupRef::Pair { from, to },
        lane: if pass == Pass::Forward { Lane::Gather } else { Lane::Reduce },
        wire: WireCollective {
            kind: WireKind::P2p { inter_node: from.0 / geo.k != to.0 / geo.k },
            participants: 2,
            devices_per_node: geo.k,
            bytes,
            codec: None,
        },
        scheme: None,
        overhead: false,
    }
}

/// Mutable emission state of the 1F1B lowering.
struct PipeEmit<'a> {
    spec: &'a PipelineSpec,
    geo: Geometry,
    ops: Vec<ScheduleOp>,
    /// Per `(stage, micro)`: the forward activation sends (one per dp
    /// index), once emitted.
    sent_act: Vec<Vec<Option<Vec<OpId>>>>,
    /// Per `(stage, micro)`: the backward gradient sends.
    sent_grad: Vec<Vec<Option<Vec<OpId>>>>,
    /// Write-after-read hazard per global layer (§3.4), as in the flat
    /// emitter.
    war: Vec<Vec<OpId>>,
    /// Per stage: the ops the optimizer must gate on.
    last_reduce: Vec<Vec<OpId>>,
    /// Per stage: gradient buckets over the stage's layer slice (global
    /// layer indices).
    buckets: Vec<Vec<(Vec<usize>, u64)>>,
}

impl PipeEmit<'_> {
    fn layers_per_stage(&self) -> usize {
        self.spec.inner.layers.len() / self.spec.pp
    }

    fn gather_wire(&self, layer: usize, stage: usize, g: usize, hier: bool) -> WireOp {
        let inner = &self.spec.inner;
        WireOp {
            group: GroupRef::Partition { stage, g },
            lane: Lane::Gather,
            wire: WireCollective {
                kind: WireKind::AllGather { hierarchical: hier, coalesced: inner.coalesced },
                participants: self.geo.p,
                devices_per_node: self.geo.k,
                bytes: inner.layers[layer].param_bytes,
                codec: None,
            },
            scheme: None,
            overhead: true,
        }
    }

    /// One stage's forward action for micro-batch `j`: recv the activation
    /// from the previous stage, gather + compute the stage's layers, send
    /// the activation onward.
    fn forward(&mut self, s: usize, j: usize) {
        let geo = self.geo;
        let (dp, p, per) = (geo.dp, geo.p, self.layers_per_stage());
        let (lo, hi) = (s * per, (s + 1) * per);
        let hier = self.spec.inner.hierarchical && p > geo.k;
        let mut recv_ids: Vec<OpId> = Vec::new();
        if s > 0 {
            let sends = self.sent_act[s - 1][j].clone().expect("1F1B dep not yet emitted");
            for (d, &send) in sends.iter().enumerate().take(dp) {
                recv_ids.push(self.ops.len());
                self.ops.push(ScheduleOp {
                    micro: j,
                    kind: OpKind::StageRecv {
                        peer_stage: s - 1,
                        pass: Pass::Forward,
                        wire: pair_wire(&geo, geo.rank(s - 1, d), geo.rank(s, d), Pass::Forward, 0),
                    },
                    deps: vec![send],
                });
            }
        }
        let mut gathers: Vec<Vec<OpId>> = vec![Vec::new(); per];
        for l in lo..hi {
            if p == 1 || self.spec.inner.layers[l].param_bytes == 0 {
                continue;
            }
            for g in 0..geo.groups() {
                gathers[l - lo].push(self.ops.len());
                self.ops.push(ScheduleOp {
                    micro: j,
                    kind: OpKind::GatherShards {
                        layer: l,
                        pass: Pass::Forward,
                        wire: self.gather_wire(l, s, g, hier),
                    },
                    deps: Vec::new(),
                });
            }
        }
        let mut last = 0;
        for l in lo..hi {
            let mut deps = gathers[l - lo].clone();
            if l == lo {
                deps.extend(recv_ids.iter().copied());
            }
            last = self.ops.len();
            self.ops.push(ScheduleOp {
                micro: j,
                kind: OpKind::Compute {
                    layer: l,
                    pass: Pass::Forward,
                    flops: self.spec.inner.layers[l].fwd_flops,
                },
                deps,
            });
        }
        if s < self.spec.pp - 1 {
            let mut ids = Vec::with_capacity(dp);
            for d in 0..dp {
                ids.push(self.ops.len());
                self.ops.push(ScheduleOp {
                    micro: j,
                    kind: OpKind::StageSend {
                        peer_stage: s + 1,
                        pass: Pass::Forward,
                        wire: pair_wire(
                            &geo,
                            geo.rank(s, d),
                            geo.rank(s + 1, d),
                            Pass::Forward,
                            self.spec.act_bytes,
                        ),
                    },
                    deps: vec![last],
                });
            }
            self.sent_act[s][j] = Some(ids);
        }
    }

    /// One stage's backward action for micro-batch `i`: recv the boundary
    /// gradient, re-gather + backprop the stage's layers (descending), send
    /// the gradient to the previous stage, then the stage-scoped gradient
    /// synchronization — the same hop-1/hop-2 structure the flat emitter
    /// produces, with every group scoped to this stage.
    fn backward(&mut self, s: usize, i: usize) {
        let geo = self.geo;
        let inner = &self.spec.inner;
        let pp = self.spec.pp;
        let (dp, p, per) = (geo.dp, geo.p, self.layers_per_stage());
        let (lo, hi) = (s * per, (s + 1) * per);
        let m = inner.accum_steps;
        let hier = inner.hierarchical && p > geo.k;
        let mut recv_ids: Vec<OpId> = Vec::new();
        if s < pp - 1 {
            let sends = self.sent_grad[s + 1][i].clone().expect("1F1B dep not yet emitted");
            for (d, &send) in sends.iter().enumerate().take(dp) {
                recv_ids.push(self.ops.len());
                self.ops.push(ScheduleOp {
                    micro: i,
                    kind: OpKind::StageRecv {
                        peer_stage: s + 1,
                        pass: Pass::Backward,
                        wire: pair_wire(
                            &geo,
                            geo.rank(s + 1, d),
                            geo.rank(s, d),
                            Pass::Backward,
                            0,
                        ),
                    },
                    deps: vec![send],
                });
            }
        }
        let mut gathers: Vec<Vec<OpId>> = vec![Vec::new(); per];
        for idx in 0..per {
            let l = hi - 1 - idx;
            if p == 1 || inner.layers[l].param_bytes == 0 {
                continue;
            }
            for g in 0..geo.groups() {
                gathers[l - lo].push(self.ops.len());
                self.ops.push(ScheduleOp {
                    micro: i,
                    kind: OpKind::GatherShards {
                        layer: l,
                        pass: Pass::Backward,
                        wire: self.gather_wire(l, s, g, hier),
                    },
                    deps: Vec::new(),
                });
            }
        }
        let mut bwd_compute_of: Vec<OpId> = vec![0; per];
        for idx in 0..per {
            let l = hi - 1 - idx;
            let mut deps = gathers[l - lo].clone();
            deps.extend(self.war[l].iter().copied());
            if l == hi - 1 {
                deps.extend(recv_ids.iter().copied());
            }
            bwd_compute_of[l - lo] = self.ops.len();
            self.ops.push(ScheduleOp {
                micro: i,
                kind: OpKind::Compute {
                    layer: l,
                    pass: Pass::Backward,
                    flops: inner.layers[l].bwd_flops,
                },
                deps,
            });
        }
        if s > 0 {
            let last_bwd = bwd_compute_of[0];
            let mut ids = Vec::with_capacity(dp);
            for d in 0..dp {
                ids.push(self.ops.len());
                self.ops.push(ScheduleOp {
                    micro: i,
                    kind: OpKind::StageSend {
                        peer_stage: s - 1,
                        pass: Pass::Backward,
                        wire: pair_wire(
                            &geo,
                            geo.rank(s, d),
                            geo.rank(s - 1, d),
                            Pass::Backward,
                            self.spec.act_bytes,
                        ),
                    },
                    deps: vec![last_bwd],
                });
            }
            self.sent_grad[s][i] = Some(ids);
        }

        // ---- stage-scoped gradient synchronization ----
        let boundary = i == m - 1;
        let sync_this_micro = match inner.micro_sync {
            MicroSync::LocalAccumulate => boundary,
            _ => true,
        };
        let buckets = self.buckets[s].clone();
        for (bi, (bucket_layers, bucket_bytes)) in buckets.iter().enumerate() {
            let ready = bwd_compute_of[bucket_layers.last().unwrap() - lo];
            if inner.micro_sync == MicroSync::LocalAccumulate {
                self.ops.push(ScheduleOp {
                    micro: i,
                    kind: OpKind::AccumGrads { bucket: bi },
                    deps: vec![ready],
                });
            }
            if !sync_this_micro {
                continue;
            }
            let grad_wire = |group, kind, participants, bytes| WireOp {
                group,
                lane: Lane::Reduce,
                wire: WireCollective {
                    kind,
                    participants,
                    devices_per_node: geo.k,
                    bytes,
                    codec: None,
                },
                scheme: None,
                overhead: true,
            };
            let mut hop1_emitted = false;
            match inner.micro_sync {
                MicroSync::PartitionReduceScatter if p > 1 => {
                    let mut batch = Vec::with_capacity(geo.groups());
                    for g in 0..geo.groups() {
                        batch.push(self.ops.len());
                        self.ops.push(ScheduleOp {
                            micro: i,
                            kind: OpKind::ReduceScatterGrads {
                                bucket: bi,
                                source: GradSource::MicroGrad,
                                wire: grad_wire(
                                    GroupRef::Partition { stage: s, g },
                                    WireKind::ReduceScatter,
                                    p,
                                    *bucket_bytes,
                                ),
                            },
                            deps: vec![ready],
                        });
                    }
                    for &l in bucket_layers {
                        self.war[l] = batch.clone();
                    }
                    self.last_reduce[s] = batch;
                    hop1_emitted = true;
                }
                MicroSync::GlobalAllReduce if dp > 1 => {
                    // Within-stage ZeRO-3-style all-reduce. Pipeline
                    // programs never emit the alternative-schedule
                    // MicroBarrier: 1F1B's cross-stage edges already
                    // serialize the micro-steps a stage can overlap.
                    let id = self.ops.len();
                    self.ops.push(ScheduleOp {
                        micro: i,
                        kind: OpKind::AllReduceGrads {
                            bucket: bi,
                            source: GradSource::MicroGrad,
                            wire: grad_wire(
                                GroupRef::All { stage: s },
                                WireKind::AllReduce { stride: 1 },
                                dp,
                                *bucket_bytes,
                            ),
                        },
                        deps: vec![ready],
                    });
                    for &l in bucket_layers {
                        self.war[l] = vec![id];
                    }
                    self.last_reduce[s] = vec![id];
                    hop1_emitted = true;
                }
                MicroSync::LocalAccumulate if dp > 1 => {
                    let (kind, wk) = if inner.p_grads > 1 {
                        (SyncEmit::Rs, WireKind::ReduceScatter)
                    } else {
                        (SyncEmit::Ar, WireKind::AllReduce { stride: 1 })
                    };
                    let id = self.ops.len();
                    let wire = grad_wire(GroupRef::All { stage: s }, wk, dp, *bucket_bytes);
                    self.ops.push(ScheduleOp {
                        micro: i,
                        kind: match kind {
                            SyncEmit::Rs => OpKind::ReduceScatterGrads {
                                bucket: bi,
                                source: GradSource::Accum,
                                wire,
                            },
                            SyncEmit::Ar => OpKind::AllReduceGrads {
                                bucket: bi,
                                source: GradSource::Accum,
                                wire,
                            },
                        },
                        deps: vec![ready],
                    });
                    self.last_reduce[s] = vec![id];
                }
                MicroSync::LocalAccumulate => {}
                _ => {
                    // Trivial synchronization group: fold locally.
                    self.ops.push(ScheduleOp {
                        micro: i,
                        kind: OpKind::AccumGrads { bucket: bi },
                        deps: vec![ready],
                    });
                }
            }
            if boundary && inner.micro_sync == MicroSync::PartitionReduceScatter && dp > p {
                let shard_bytes = bucket_bytes / p as u64;
                if shard_bytes > 0 {
                    let mut ids = Vec::with_capacity(p);
                    for local in 0..p {
                        let deps = if hop1_emitted { Vec::new() } else { vec![ready] };
                        ids.push(self.ops.len());
                        self.ops.push(ScheduleOp {
                            micro: i,
                            kind: OpKind::CrossGroupAllReduce {
                                bucket: bi,
                                local,
                                wire: WireOp {
                                    group: GroupRef::Replication { stage: s, local },
                                    lane: Lane::Reduce,
                                    wire: WireCollective {
                                        kind: WireKind::AllReduce { stride: p },
                                        participants: dp / p,
                                        devices_per_node: geo.k,
                                        bytes: shard_bytes,
                                        codec: None,
                                    },
                                    scheme: None,
                                    overhead: false,
                                },
                            },
                            deps,
                        });
                    }
                    self.last_reduce[s] = ids;
                }
            }
        }
    }
}

/// Per-bucket sync flavor of the pipeline emitter's boundary path.
enum SyncEmit {
    Rs,
    Ar,
}

/// Lower one iteration of a `pp ≥ 2` [`PipelineSpec`] to a [`StepProgram`]
/// with the 1F1B interleave.
///
/// Per stage `s`, the action list is the classic warmup/steady/cooldown
/// split — `w = min(pp−1−s, m)` forwards, then `(m−w)` one-forward-one-
/// backward pairs, then `w` backwards — and emission round-robins over the
/// stages, emitting a stage's next action as soon as its cross-stage
/// dependency (the matching send) has been emitted. Dependencies therefore
/// always point backward, and both backends can execute the ops in listed
/// order.
///
/// # Panics
/// Panics if `pp < 2`, the stages do not evenly split the layers, or the
/// spec carries wire compression (not yet supported with pipelining).
pub fn emit_pipeline(spec: &PipelineSpec) -> StepProgram {
    let geo = spec.geometry();
    geo.validate();
    let inner = &spec.inner;
    let pp = spec.pp;
    assert!(pp >= 2, "emit_pipeline needs pp >= 2; pp = 1 is the flat emitter");
    assert!(inner.compression.is_none(), "wire compression is not supported in pipeline programs");
    let nl = inner.layers.len();
    assert!(nl.is_multiple_of(pp), "pp={pp} must evenly split {nl} layers");
    let per = nl / pp;
    let m = inner.accum_steps;

    #[derive(Clone, Copy)]
    enum Act {
        F(usize),
        B(usize),
    }
    let actions: Vec<Vec<Act>> = (0..pp)
        .map(|s| {
            let w = (pp - 1 - s).min(m);
            let mut v = Vec::with_capacity(2 * m);
            for j in 0..w {
                v.push(Act::F(j));
            }
            for i in 0..m - w {
                v.push(Act::F(w + i));
                v.push(Act::B(i));
            }
            for i in m - w..m {
                v.push(Act::B(i));
            }
            v
        })
        .collect();

    let buckets = (0..pp)
        .map(|s| {
            bucketize(&inner.layers[s * per..(s + 1) * per], inner.bucket_bytes)
                .into_iter()
                .map(|(ls, b)| (ls.into_iter().map(|l| l + s * per).collect::<Vec<_>>(), b))
                .collect()
        })
        .collect();
    let mut st = PipeEmit {
        spec,
        geo,
        ops: Vec::new(),
        sent_act: vec![vec![None; m]; pp],
        sent_grad: vec![vec![None; m]; pp],
        war: vec![Vec::new(); nl],
        last_reduce: vec![Vec::new(); pp],
        buckets,
    };

    let mut next = vec![0usize; pp];
    let total: usize = actions.iter().map(Vec::len).sum();
    let mut emitted = 0usize;
    while emitted < total {
        let mut progressed = false;
        for s in 0..pp {
            if next[s] >= actions[s].len() {
                continue;
            }
            let ready = match actions[s][next[s]] {
                Act::F(j) => s == 0 || st.sent_act[s - 1][j].is_some(),
                Act::B(i) => s == pp - 1 || st.sent_grad[s + 1][i].is_some(),
            };
            if !ready {
                continue;
            }
            match actions[s][next[s]] {
                Act::F(j) => st.forward(s, j),
                Act::B(i) => st.backward(s, i),
            }
            next[s] += 1;
            emitted += 1;
            progressed = true;
        }
        assert!(progressed, "1F1B emission wedged — unsatisfiable cross-stage dependency");
    }

    // ---- optimizer + per-stage ZeRO-1/2 refresh ----
    let record = inner.p_opt > 1 && inner.p_params == 1;
    let opt_deps: Vec<OpId> = st.last_reduce.iter().flatten().copied().collect();
    let opt_id = st.ops.len();
    st.ops.push(ScheduleOp {
        micro: m - 1,
        kind: OpKind::OptimizerUpdate { bytes: inner.optimizer_bytes / pp as u64, record },
        deps: opt_deps,
    });
    if record && geo.dp > 1 {
        for s in 0..pp {
            st.ops.push(ScheduleOp {
                micro: m - 1,
                kind: OpKind::ParamRefresh {
                    wire: WireOp {
                        group: GroupRef::All { stage: s },
                        lane: Lane::Gather,
                        wire: WireCollective {
                            kind: WireKind::AllGather { hierarchical: false, coalesced: false },
                            participants: geo.dp,
                            devices_per_node: geo.k,
                            bytes: inner.total_param_bytes / pp as u64,
                            codec: None,
                        },
                        scheme: None,
                        overhead: true,
                    },
                },
                deps: vec![opt_id],
            });
        }
    }

    StepProgram {
        geo,
        num_layers: nl,
        accum_steps: m,
        decision_overhead: inner.decision_overhead,
        ops: st.ops,
    }
}

/// Add prefetch-backpressure dependencies to every gather: the gather for
/// layer `l` may start once layer `l - depth - 1` (forward) or its mirror
/// (backward) has computed in the same micro-step. This is the §4 overlap
/// window as a schedule transform — call it once per program.
pub fn apply_prefetch(prog: &mut StepProgram, depth: usize) {
    let nl = prog.num_layers;
    // (micro, pass, layer) → compute op.
    let slot = |micro: usize, pass: Pass, layer: usize| {
        micro * 2 * nl + if pass == Pass::Forward { layer } else { nl + layer }
    };
    let mut computes: Vec<OpId> = vec![usize::MAX; prog.accum_steps * 2 * nl];
    for (i, op) in prog.ops.iter().enumerate() {
        if let OpKind::Compute { layer, pass, .. } = op.kind {
            computes[slot(op.micro, pass, layer)] = i;
        }
    }
    for i in 0..prog.ops.len() {
        let (micro, layer, pass) = match prog.ops[i].kind {
            OpKind::GatherShards { layer, pass, .. } => (prog.ops[i].micro, layer, pass),
            _ => continue,
        };
        let dep_layer = match pass {
            Pass::Forward => {
                if layer > depth {
                    layer - depth - 1
                } else {
                    continue;
                }
            }
            Pass::Backward => {
                let idx = nl - 1 - layer;
                if idx > depth {
                    nl - 1 - (idx - depth - 1)
                } else {
                    continue;
                }
            }
        };
        let dep = computes[slot(micro, pass, dep_layer)];
        debug_assert_ne!(dep, usize::MAX, "compute op missing for prefetch dep");
        prog.ops[i].deps.push(dep);
    }
}

impl StepProgram {
    /// The wire annotation of an op, if it is a communication op.
    pub fn wire_of(&self, id: OpId) -> Option<&WireOp> {
        match &self.ops[id].kind {
            OpKind::GatherShards { wire, .. }
            | OpKind::ReduceScatterGrads { wire, .. }
            | OpKind::AllReduceGrads { wire, .. }
            | OpKind::CrossGroupAllReduce { wire, .. }
            | OpKind::ParamRefresh { wire }
            | OpKind::StageSend { wire, .. }
            | OpKind::StageRecv { wire, .. } => Some(wire),
            _ => None,
        }
    }

    /// Whether `rank` executes wire op `id` on a real backend. A pair
    /// group *contains* both endpoints, but each side of the boundary
    /// executes only its half: the send runs on `from`, the recv on `to`.
    /// Every other wire op runs on each group member.
    pub fn executes_wire(&self, id: OpId, rank: Rank) -> bool {
        let Some(w) = self.wire_of(id) else { return false };
        match self.ops[id].kind {
            OpKind::StageSend { .. } => {
                matches!(w.group, GroupRef::Pair { from, .. } if from == rank)
            }
            OpKind::StageRecv { .. } => {
                matches!(w.group, GroupRef::Pair { to, .. } if to == rank)
            }
            _ => w.group.contains(rank, &self.geo),
        }
    }

    /// Op ids of every communication op, in program order.
    pub fn wire_ops(&self) -> Vec<OpId> {
        (0..self.ops.len()).filter(|&i| self.wire_of(i).is_some()).collect()
    }

    /// Cluster-wide NIC wire volume of one iteration derived from the IR:
    /// each op contributes its per-node NIC bytes × the nodes its group
    /// touches. This is what the report's `nic_bytes_per_node` divides.
    pub fn total_nic_bytes(&self, net: &NetParams) -> u64 {
        self.wire_ops()
            .iter()
            .map(|&i| {
                let w = self.wire_of(i).unwrap();
                w.wire.cost(net).nic_bytes() * nodes_spanned(&w.group.members(&self.geo), self.k())
            })
            .sum()
    }

    /// A stable, human-diffable rendering of the program, used by the
    /// golden-schedule snapshot tests to pin the emitters' output.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let flat = self.geo.pp == 1;
        if flat {
            // Legacy single-stage header: byte-identical to the pre-geometry
            // emitters so existing goldens stay pinned.
            let _ = writeln!(
                out,
                "schedule n={} k={} p={} layers={} accum={} overhead_us={}",
                self.n(),
                self.k(),
                self.p(),
                self.num_layers,
                self.accum_steps,
                self.decision_overhead.as_secs_f64() * 1e6,
            );
        } else {
            let _ = writeln!(
                out,
                "schedule dp={} pp={} k={} p={} layers={} accum={} overhead_us={}",
                self.geo.dp,
                self.geo.pp,
                self.k(),
                self.p(),
                self.num_layers,
                self.accum_steps,
                self.decision_overhead.as_secs_f64() * 1e6,
            );
        }
        let group = move |gr: &GroupRef| match *gr {
            GroupRef::Partition { g, .. } if flat => format!("part{g}"),
            GroupRef::All { .. } if flat => "all".into(),
            GroupRef::Replication { local, .. } if flat => format!("repl{local}"),
            GroupRef::Partition { stage, g } => format!("s{stage}:part{g}"),
            GroupRef::All { stage } => format!("s{stage}:all"),
            GroupRef::Replication { stage, local } => format!("s{stage}:repl{local}"),
            GroupRef::Pair { from, to } => format!("r{}->r{}", from.0, to.0),
        };
        let wire = |w: &WireOp| {
            let alg = match w.wire.kind {
                WireKind::AllGather { hierarchical: true, .. } => "ag-hier",
                WireKind::AllGather { hierarchical: false, .. } => "ag",
                WireKind::ReduceScatter => "rs",
                WireKind::AllReduce { .. } => "ar",
                WireKind::P2p { .. } => "p2p",
            };
            let codec = match w.scheme {
                Some(s) => format!("+{}", s.label()),
                None => String::new(),
            };
            format!("{} {} {}B{}", group(&w.group), alg, w.wire.bytes, codec)
        };
        for (i, op) in self.ops.iter().enumerate() {
            let body = match &op.kind {
                OpKind::MicroBarrier => "barrier".to_string(),
                OpKind::GatherShards { layer, pass, wire: w } => {
                    let p = if *pass == Pass::Forward { "fwd" } else { "bwd" };
                    format!("gather.{p} l{layer} {}", wire(w))
                }
                OpKind::Compute { layer, pass, flops } => {
                    let p = if *pass == Pass::Forward { "fwd" } else { "bwd" };
                    format!("compute.{p} l{layer} {flops:.3e}fl")
                }
                OpKind::AccumGrads { bucket } => format!("accum b{bucket}"),
                OpKind::ReduceScatterGrads { bucket, source, wire: w } => {
                    format!("reduce-scatter b{bucket} {source:?} {}", wire(w))
                }
                OpKind::AllReduceGrads { bucket, source, wire: w } => {
                    format!("all-reduce b{bucket} {source:?} {}", wire(w))
                }
                OpKind::CrossGroupAllReduce { bucket, local, wire: w } => {
                    format!("hop2 b{bucket} local{local} {}", wire(w))
                }
                OpKind::OptimizerUpdate { bytes, record } => {
                    format!("optimizer {bytes}B record={record}")
                }
                OpKind::ParamRefresh { wire: w } => format!("param-refresh {}", wire(w)),
                OpKind::StageSend { peer_stage, pass, wire: w } => {
                    let p = if *pass == Pass::Forward { "fwd" } else { "bwd" };
                    format!("send.{p} s{peer_stage} {}", wire(w))
                }
                OpKind::StageRecv { peer_stage, pass, wire: w } => {
                    let p = if *pass == Pass::Forward { "fwd" } else { "bwd" };
                    format!("recv.{p} s{peer_stage} {}", wire(w))
                }
            };
            let _ = writeln!(out, "[{i:03}] u{} {body} deps={:?}", op.micro, op.deps);
        }
        out
    }
}

/// What pushing a program onto the simulator produced.
#[derive(Debug, Clone)]
pub struct SimExecution {
    /// Cluster-wide NIC wire bytes accumulated over every emitted
    /// collective (per-node bytes × nodes spanned).
    pub nic_bytes_total: u64,
    /// Op ids of the wire collectives in the order they were costed.
    pub wire_ops: Vec<OpId>,
}

/// The simulator backend: replay `prog` push-for-push onto `sc`.
///
/// The replay reproduces the historical inline lowering exactly — same
/// per-stream op sequences, same event-allocation order — so a program
/// emitted from a strategy produces bit-identical simulation results to
/// the pre-IR code. Call [`SimCluster::run`]/[`SimCluster::run_traced`]
/// afterwards.
pub fn execute_on_sim(
    prog: &StepProgram,
    sc: &mut SimCluster,
    sustained_flops: f64,
) -> SimExecution {
    let geo = prog.geo;
    let (n, k) = (geo.world(), geo.k);
    let nl = prog.num_layers;
    let memcpy_bw = sc.spec.instance.memcpy_bw;
    // Per-op completion events, parallel to `prog.ops` (wire ops: one per
    // member; optimizer: one per rank when recorded).
    let mut op_events: Vec<Option<Vec<EventId>>> = vec![None; prog.ops.len()];
    // Compute-done event tables of the current (micro, pass) segment,
    // pre-allocated rank-major like the historical lowering so gathers can
    // reference compute events that have not been pushed yet.
    let mut fwd_tbl: Vec<Vec<EventId>> = Vec::new();
    let mut bwd_tbl: Vec<Vec<EventId>> = Vec::new();
    let mut segment: Option<(usize, Pass)> = None;
    let mut nic_total: u64 = 0;
    let mut wire_log: Vec<OpId> = Vec::new();

    // Resolve `dep` to the completion event `rank` must wait on, or `None`
    // when the rank does not participate in the dep op.
    let resolve = |ops: &[ScheduleOp],
                   op_events: &[Option<Vec<EventId>>],
                   fwd_tbl: &[Vec<EventId>],
                   bwd_tbl: &[Vec<EventId>],
                   dep: OpId,
                   rank: Rank|
     -> Option<EventId> {
        match &ops[dep].kind {
            OpKind::Compute { layer, pass, .. } => {
                // Only the stage owning the layer records the event; every
                // other rank (a pair peer, another stage) must not wait on
                // a never-recorded slot.
                if geo.stage_of(rank) != geo.stage_of_layer(*layer, nl) {
                    return None;
                }
                let tbl = if *pass == Pass::Forward { fwd_tbl } else { bwd_tbl };
                Some(tbl[rank.0][*layer])
            }
            OpKind::GatherShards { wire, .. }
            | OpKind::ReduceScatterGrads { wire, .. }
            | OpKind::AllReduceGrads { wire, .. }
            | OpKind::CrossGroupAllReduce { wire, .. }
            | OpKind::ParamRefresh { wire }
            | OpKind::StageSend { wire, .. } => wire
                .group
                .member_index(rank, &geo)
                .map(|ix| op_events[dep].as_ref().expect("dep op not yet executed")[ix]),
            // A recv holds no event of its own: a dep on it forwards to the
            // matching send's arrival event (the recv's only dep).
            OpKind::StageRecv { .. } => {
                let send = ops[dep].deps[0];
                match &ops[send].kind {
                    OpKind::StageSend { wire, .. } => wire
                        .group
                        .member_index(rank, &geo)
                        .map(|ix| op_events[send].as_ref().expect("send op not yet executed")[ix]),
                    _ => None,
                }
            }
            OpKind::OptimizerUpdate { .. } => op_events[dep].as_ref().map(|v| v[rank.0]),
            OpKind::MicroBarrier | OpKind::AccumGrads { .. } => None,
        }
    };

    for (i, op) in prog.ops.iter().enumerate() {
        // A new (micro, pass) segment pre-allocates its compute-done event
        // table before any of the segment's ops push work.
        if let OpKind::GatherShards { pass, .. } | OpKind::Compute { pass, .. } = op.kind {
            if segment != Some((op.micro, pass)) {
                let tbl = if pass == Pass::Forward { &mut fwd_tbl } else { &mut bwd_tbl };
                *tbl = (0..n).map(|_| (0..nl).map(|_| sc.new_event()).collect()).collect();
                segment = Some((op.micro, pass));
            }
        }
        match &op.kind {
            OpKind::MicroBarrier => {
                for r in 0..n {
                    for &d in &op.deps {
                        if let Some(e) =
                            resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, Rank(r))
                        {
                            sc.compute_wait(Rank(r), e);
                            sc.lane_wait(Lane::Gather, Rank(r), e);
                        }
                    }
                }
            }
            OpKind::Compute { layer, pass, flops } => {
                let owner = geo.stage_of_layer(*layer, nl);
                let tbl = if *pass == Pass::Forward { &fwd_tbl } else { &bwd_tbl };
                for (r, row) in tbl.iter().enumerate() {
                    if geo.stage_of(Rank(r)) != owner {
                        continue;
                    }
                    for &d in &op.deps {
                        if let Some(e) =
                            resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, Rank(r))
                        {
                            sc.compute_wait(Rank(r), e);
                        }
                    }
                    sc.compute_kernel(Rank(r), *flops, sustained_flops);
                    sc.compute_record_into(Rank(r), row[*layer]);
                }
            }
            OpKind::AccumGrads { .. } => {} // local fold: no simulated work
            OpKind::StageRecv { wire, .. } => {
                // Zero-byte landing point: the matching send already paid
                // the transfer, so the receiving endpoint only waits for
                // the arrival event on its lane.
                if let GroupRef::Pair { to, .. } = wire.group {
                    for &d in &op.deps {
                        if let Some(e) = resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, to) {
                            sc.lane_wait(wire.lane, to, e);
                        }
                    }
                }
                wire_log.push(i);
            }
            OpKind::GatherShards { wire, .. }
            | OpKind::ReduceScatterGrads { wire, .. }
            | OpKind::AllReduceGrads { wire, .. }
            | OpKind::CrossGroupAllReduce { wire, .. }
            | OpKind::ParamRefresh { wire }
            | OpKind::StageSend { wire, .. } => {
                let members = wire.group.members(&geo);
                for &d in &op.deps {
                    for &m in &members {
                        // A boundary send's deps live on the sender, but the
                        // sim pushes the transfer phases on the lowest-ranked
                        // member's stream — which is the *receiver* for a
                        // backward pair — so every endpoint gates on them.
                        let res_rank = match (&op.kind, wire.group) {
                            (OpKind::StageSend { .. }, GroupRef::Pair { from, .. }) => from,
                            _ => m,
                        };
                        if let Some(e) =
                            resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, res_rank)
                        {
                            sc.lane_wait(wire.lane, m, e);
                        }
                    }
                }
                let cost = wire.wire.cost(&sc.net);
                nic_total += cost.nic_bytes() * nodes_spanned(&members, k);
                let overhead = if wire.overhead { prog.decision_overhead } else { SimTime::ZERO };
                // The sim wants ascending ranks; a backward pair is
                // [from > to], so sort for the push and permute the events
                // back into the group's member order.
                let evs = if members.windows(2).all(|w| w[0] < w[1]) {
                    sc.collective(&members, wire.lane, &cost, overhead)
                } else {
                    let mut sorted = members.clone();
                    sorted.sort();
                    let by_sorted = sc.collective(&sorted, wire.lane, &cost, overhead);
                    members
                        .iter()
                        .map(|m| by_sorted[sorted.iter().position(|x| x == m).unwrap()])
                        .collect()
                };
                op_events[i] = Some(evs);
                wire_log.push(i);
            }
            OpKind::OptimizerUpdate { bytes, record } => {
                let opt_time = SimTime::from_secs_f64(*bytes as f64 / memcpy_bw);
                let mut evs = Vec::with_capacity(if *record { n } else { 0 });
                for r in 0..n {
                    for &d in &op.deps {
                        if let Some(e) =
                            resolve(&prog.ops, &op_events, &fwd_tbl, &bwd_tbl, d, Rank(r))
                        {
                            sc.compute_wait(Rank(r), e);
                        }
                    }
                    sc.compute_for(Rank(r), opt_time);
                    if *record {
                        evs.push(sc.compute_record(Rank(r)));
                    }
                }
                if *record {
                    op_events[i] = Some(evs);
                }
            }
        }
    }
    SimExecution { nic_bytes_total: nic_total, wire_ops: wire_log }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize, p: usize, micro_sync: MicroSync, s: usize) -> ScheduleSpec {
        let layers = vec![
            LayerSchedule { param_bytes: 4096, fwd_flops: 1e9, bwd_flops: 2e9 },
            LayerSchedule { param_bytes: 0, fwd_flops: 5e8, bwd_flops: 1e9 },
            LayerSchedule { param_bytes: 8192, fwd_flops: 1e9, bwd_flops: 2e9 },
        ];
        ScheduleSpec {
            n,
            k: 2,
            p_params: p,
            p_grads: p,
            p_opt: p,
            micro_sync,
            accum_steps: s,
            hierarchical: false,
            coalesced: false,
            prefetch_depth: 1,
            decision_overhead: SimTime::from_micros(15),
            layers,
            bucket_bytes: 1 << 30,
            total_param_bytes: 4096 + 8192,
            optimizer_bytes: (4096 + 8192) * 6 / p as u64,
            compression: None,
            elem_bytes: 4,
        }
    }

    #[test]
    fn group_membership_math() {
        let geo = Geometry::flat(8, 8, 2);
        let part = GroupRef::Partition { stage: 0, g: 1 };
        assert_eq!(part.members(&geo), vec![Rank(2), Rank(3)]);
        assert_eq!(part.member_index(Rank(3), &geo), Some(1));
        assert_eq!(part.member_index(Rank(4), &geo), None);
        let repl = GroupRef::Replication { stage: 0, local: 1 };
        assert_eq!(repl.members(&geo), vec![Rank(1), Rank(3), Rank(5), Rank(7)]);
        assert_eq!(repl.member_index(Rank(5), &geo), Some(2));
        assert_eq!(GroupRef::Replication { stage: 0, local: 0 }.member_index(Rank(5), &geo), None);
        assert_eq!(GroupRef::All { stage: 0 }.members(&geo).len(), 8);
        assert_eq!(GroupRef::All { stage: 0 }.member_index(Rank(6), &geo), Some(6));
    }

    #[test]
    fn staged_group_membership_math() {
        // dp=4, pp=2, p=2: ranks 0..4 are stage 0, 4..8 stage 1
        // (stage-major), and every group is scoped to its stage.
        let geo = Geometry { dp: 4, pp: 2, p: 2, k: 4 };
        assert_eq!(geo.world(), 8);
        assert_eq!(geo.stage_of(Rank(5)), 1);
        assert_eq!(geo.dp_index(Rank(5)), 1);
        assert_eq!(geo.rank(1, 1), Rank(5));
        let part = GroupRef::Partition { stage: 1, g: 1 };
        assert_eq!(part.members(&geo), vec![Rank(6), Rank(7)]);
        assert_eq!(part.member_index(Rank(7), &geo), Some(1));
        assert_eq!(part.member_index(Rank(3), &geo), None, "wrong stage");
        assert_eq!(
            GroupRef::All { stage: 1 }.members(&geo),
            vec![Rank(4), Rank(5), Rank(6), Rank(7)]
        );
        assert_eq!(
            GroupRef::Replication { stage: 1, local: 0 }.members(&geo),
            vec![Rank(4), Rank(6)]
        );
        let pair = GroupRef::Pair { from: Rank(6), to: Rank(2) };
        assert_eq!(pair.members(&geo), vec![Rank(6), Rank(2)], "pairs keep direction order");
        assert_eq!(pair.member_index(Rank(6), &geo), Some(0));
        assert_eq!(pair.member_index(Rank(2), &geo), Some(1));
        // Layer ownership: 6 layers over 2 stages.
        assert_eq!(geo.stage_of_layer(2, 6), 0);
        assert_eq!(geo.stage_of_layer(3, 6), 1);
    }

    #[test]
    fn two_hop_program_shape() {
        // 2 micro-steps, n=4, p=2: hop 1 every micro, hop 2 at the boundary.
        let prog = spec(4, 2, MicroSync::PartitionReduceScatter, 2).program();
        let hop1 =
            prog.ops.iter().filter(|o| matches!(o.kind, OpKind::ReduceScatterGrads { .. })).count();
        let hop2 = prog
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::CrossGroupAllReduce { .. }))
            .count();
        // 1 bucket × 2 partition groups × 2 micros; hop 2: 1 bucket × p=2.
        assert_eq!(hop1, 4);
        assert_eq!(hop2, 2);
        // Hop 2 pays no decision overhead; hop 1 does.
        for op in &prog.ops {
            if let OpKind::CrossGroupAllReduce { wire, .. } = &op.kind {
                assert!(!wire.overhead);
            }
            if let OpKind::ReduceScatterGrads { wire, .. } = &op.kind {
                assert!(wire.overhead);
            }
        }
    }

    #[test]
    fn zero3_program_has_barriers_between_micros() {
        let prog = spec(4, 4, MicroSync::GlobalAllReduce, 3).program();
        let barriers = prog.ops.iter().filter(|o| matches!(o.kind, OpKind::MicroBarrier)).count();
        // No barrier before the first micro-step.
        assert_eq!(barriers, 2);
        // Every barrier waits on the previous micro's last all-reduce.
        for (i, op) in prog.ops.iter().enumerate() {
            if matches!(op.kind, OpKind::MicroBarrier) {
                assert_eq!(op.deps.len(), 1);
                let d = op.deps[0];
                assert!(d < i);
                assert!(matches!(prog.ops[d].kind, OpKind::AllReduceGrads { .. }));
                assert_eq!(prog.ops[d].micro + 1, op.micro);
            }
        }
    }

    #[test]
    fn ddp_program_accumulates_then_reduces_once() {
        let prog = spec(4, 1, MicroSync::LocalAccumulate, 3).program();
        let accums =
            prog.ops.iter().filter(|o| matches!(o.kind, OpKind::AccumGrads { .. })).count();
        let ars = prog
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::AllReduceGrads { source: GradSource::Accum, .. }))
            .count();
        assert_eq!(accums, 3); // one per micro-step (single bucket)
        assert_eq!(ars, 1); // boundary only
        assert!(prog.ops.iter().all(|o| !matches!(o.kind, OpKind::GatherShards { .. })));
    }

    #[test]
    fn prefetch_is_a_transform() {
        let mut bare = emit_step(&spec(4, 2, MicroSync::PartitionReduceScatter, 1));
        for op in &bare.ops {
            if matches!(op.kind, OpKind::GatherShards { .. }) {
                assert!(op.deps.is_empty());
            }
        }
        apply_prefetch(&mut bare, 0);
        // depth 0: the gather for layer 2 (fwd) waits on layer 1's compute;
        // layer 0's gather (first with params) stays unconstrained.
        for (i, op) in bare.ops.iter().enumerate() {
            if let OpKind::GatherShards { layer, pass: Pass::Forward, .. } = op.kind {
                if layer == 0 {
                    assert!(op.deps.is_empty(), "op {i}");
                } else {
                    assert_eq!(op.deps.len(), 1, "op {i}");
                    assert!(matches!(
                        bare.ops[op.deps[0]].kind,
                        OpKind::Compute { layer: dl, pass: Pass::Forward, .. } if dl == layer - 1
                    ));
                }
            }
        }
    }

    #[test]
    fn optimizer_waits_on_final_reduction() {
        let prog = spec(4, 2, MicroSync::PartitionReduceScatter, 2).program();
        let opt = prog
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::OptimizerUpdate { .. }))
            .expect("program must end with the optimizer");
        // n > p: the final reducers are the p hop-2 ops.
        assert_eq!(opt.deps.len(), 2);
        for &d in &opt.deps {
            assert!(matches!(prog.ops[d].kind, OpKind::CrossGroupAllReduce { .. }));
        }
    }

    #[test]
    fn zero1_emits_param_refresh_after_optimizer() {
        let mut sp = spec(4, 1, MicroSync::LocalAccumulate, 2);
        sp.p_opt = 4; // ZeRO-1: optimizer sharded, params replicated
        let prog = sp.program();
        let last = prog.ops.last().unwrap();
        let OpKind::ParamRefresh { wire } = &last.kind else {
            panic!("ZeRO-1 must end with a parameter refresh");
        };
        assert_eq!(wire.group, GroupRef::All { stage: 0 });
        assert_eq!(last.deps.len(), 1);
        assert!(matches!(
            prog.ops[last.deps[0]].kind,
            OpKind::OptimizerUpdate { record: true, .. }
        ));
    }

    #[test]
    fn dump_is_stable_and_complete() {
        let prog = spec(4, 2, MicroSync::PartitionReduceScatter, 1).program();
        let d = prog.dump();
        assert!(d.starts_with("schedule n=4 k=2 p=2 layers=3 accum=1"));
        assert_eq!(d.lines().count(), 1 + prog.ops.len());
        assert_eq!(d, prog.dump(), "dump must be deterministic");
        assert!(d.contains("hop2"));
        assert!(d.contains("reduce-scatter"));
    }

    /// A 4-layer spec (pp-divisible) for the pipeline tests.
    fn spec4(n: usize, p: usize, micro_sync: MicroSync, s: usize) -> ScheduleSpec {
        let mut sp = spec(n, p, micro_sync, s);
        sp.layers.push(LayerSchedule { param_bytes: 4096, fwd_flops: 1e9, bwd_flops: 2e9 });
        sp.total_param_bytes += 4096;
        sp
    }

    #[test]
    fn pipeline_delegates_to_flat_emitter_at_pp1() {
        let inner = spec4(4, 2, MicroSync::PartitionReduceScatter, 2);
        let pipe = PipelineSpec { inner: inner.clone(), pp: 1, act_bytes: 1 << 16 };
        assert_eq!(pipe.program().dump(), inner.program().dump());
    }

    #[test]
    fn pipeline_1f1b_shape_and_edges() {
        // dp=2, pp=2, p=2 within each stage, 3 micro-steps.
        let inner = spec4(2, 2, MicroSync::PartitionReduceScatter, 3);
        let pipe = PipelineSpec { inner, pp: 2, act_bytes: 1 << 16 };
        let prog = pipe.program();
        prog.geo.validate();
        assert_eq!(prog.geo, Geometry { dp: 2, pp: 2, p: 2, k: 2 });
        assert_eq!(prog.n(), 4);
        let sends: Vec<usize> = (0..prog.ops.len())
            .filter(|&i| matches!(prog.ops[i].kind, OpKind::StageSend { .. }))
            .collect();
        let recvs: Vec<usize> = (0..prog.ops.len())
            .filter(|&i| matches!(prog.ops[i].kind, OpKind::StageRecv { .. }))
            .collect();
        // One boundary, 3 micros, 2 dp pairs, both directions.
        assert_eq!(sends.len(), 2 * 3 * 2);
        assert_eq!(recvs.len(), 2 * 3 * 2);
        for &r in &recvs {
            // Every recv waits on exactly its matching send, already emitted.
            assert_eq!(prog.ops[r].deps.len(), 1);
            let s = prog.ops[r].deps[0];
            assert!(s < r);
            let (
                OpKind::StageSend { pass: sp, wire: sw, .. },
                OpKind::StageRecv { pass: rp, wire: rw, .. },
            ) = (&prog.ops[s].kind, &prog.ops[r].kind)
            else {
                panic!("recv dep must be a send");
            };
            assert_eq!(sp, rp);
            assert_eq!(sw.group, rw.group, "both ends name the same pair");
            assert_eq!(rw.wire.bytes, 0, "the send pays the transfer");
            let GroupRef::Pair { from, to } = sw.group else { panic!() };
            assert_ne!(prog.geo.stage_of(from), prog.geo.stage_of(to));
            // Each side executes only its half of the pair.
            assert!(prog.executes_wire(s, from) && !prog.executes_wire(s, to));
            assert!(prog.executes_wire(r, to) && !prog.executes_wire(r, from));
        }
        // All deps point backward: both backends can walk in listed order.
        for (i, op) in prog.ops.iter().enumerate() {
            for &d in &op.deps {
                assert!(d < i, "op {i} depends forward on {d}");
            }
        }
        // Gradient sync is stage-scoped: every reduce names a staged group.
        for op in &prog.ops {
            if let OpKind::ReduceScatterGrads { wire, .. } = &op.kind {
                assert!(matches!(wire.group, GroupRef::Partition { .. }));
            }
        }
        // The optimizer gates on every stage's final reducers.
        let opt = prog
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::OptimizerUpdate { .. }))
            .expect("pipeline program ends with the optimizer");
        let stages: std::collections::BTreeSet<usize> = opt
            .deps
            .iter()
            .map(|&d| match prog.wire_of(d).unwrap().group {
                GroupRef::Partition { stage, .. }
                | GroupRef::All { stage }
                | GroupRef::Replication { stage, .. } => stage,
                GroupRef::Pair { .. } => panic!("optimizer cannot gate on a boundary hop"),
            })
            .collect();
        assert_eq!(stages, [0, 1].into());
    }

    #[test]
    fn pipeline_program_costs_on_the_sim() {
        use mics_cluster::{ClusterSpec, InstanceType};
        for sync in [
            MicroSync::PartitionReduceScatter,
            MicroSync::GlobalAllReduce,
            MicroSync::LocalAccumulate,
        ] {
            let inner = spec4(4, if sync == MicroSync::LocalAccumulate { 1 } else { 2 }, sync, 3);
            let pipe = PipelineSpec { inner, pp: 2, act_bytes: 1 << 16 };
            let prog = pipe.program();
            let mut inst = InstanceType::p3dn_24xlarge();
            inst.gpus_per_node = 4;
            let mut sc = SimCluster::new(ClusterSpec::new(inst, 2));
            let exec = execute_on_sim(&prog, &mut sc, 1e12);
            assert_eq!(exec.wire_ops, prog.wire_ops(), "{sync:?}");
            assert_eq!(exec.nic_bytes_total, prog.total_nic_bytes(&sc.net), "{sync:?}");
            let (makespan, _, _) = sc.run();
            assert!(makespan > SimTime::ZERO, "{sync:?}: sim must converge (no deadlock)");
        }
    }

    #[test]
    fn pipeline_beats_more_micros_less_bubble() {
        // The 1F1B bubble fraction shrinks with more micro-steps: per-step
        // time at m=8 must be well under per-step time at m=1 (relative to
        // the per-micro work), the classic (pp-1)/m scaling.
        use mics_cluster::{ClusterSpec, InstanceType};
        let mut inst = InstanceType::p3dn_24xlarge();
        inst.gpus_per_node = 4;
        let time_per_micro = |m: usize| {
            let inner = spec4(2, 1, MicroSync::LocalAccumulate, m);
            let pipe = PipelineSpec { inner, pp: 2, act_bytes: 1 << 10 };
            let mut sc = SimCluster::new(ClusterSpec::new(inst.clone(), 1));
            execute_on_sim(&pipe.program(), &mut sc, 1e12);
            let (makespan, _, _) = sc.run();
            makespan.as_secs_f64() / m as f64
        };
        let (t1, t8) = (time_per_micro(1), time_per_micro(8));
        assert!(
            t8 < 0.75 * t1,
            "1F1B bubble must amortize: per-micro {t8:.6}s at m=8 vs {t1:.6}s at m=1"
        );
    }

    #[test]
    fn reshape_retargets_the_same_strategy() {
        let sp = spec(8, 4, MicroSync::PartitionReduceScatter, 2);
        let old = Geometry::flat(8, 2, 4);
        let new = Geometry::flat(4, 2, 2);
        let prog = reshape(&sp, &old, &new);
        assert_eq!(prog.geo, new);
        // Same op-kind sequence as emitting directly at the new world.
        let direct = sp.retarget(4, 2, 2).program();
        assert_eq!(prog.dump(), direct.dump());
        // Optimizer traffic rescales with the shard count (p_opt 4 → 2).
        let opt_bytes = |p: &StepProgram| {
            p.ops
                .iter()
                .find_map(|o| match o.kind {
                    OpKind::OptimizerUpdate { bytes, .. } => Some(bytes),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(opt_bytes(&prog), opt_bytes(&sp.program()) * 2);
    }

    #[test]
    #[should_panic(expected = "old geometry")]
    fn reshape_rejects_a_mismatched_spec() {
        let sp = spec(8, 4, MicroSync::PartitionReduceScatter, 2);
        reshape(&sp, &Geometry::flat(16, 2, 4), &Geometry::flat(4, 2, 2));
    }

    #[test]
    fn executor_nic_accounting_matches_program_derivation() {
        use mics_cluster::{ClusterSpec, InstanceType};
        let sp = ScheduleSpec { k: 8, ..spec(16, 8, MicroSync::PartitionReduceScatter, 2) };
        let prog = sp.program();
        let mut sc = SimCluster::new(ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2));
        let exec = execute_on_sim(&prog, &mut sc, 1e12);
        assert_eq!(exec.nic_bytes_total, prog.total_nic_bytes(&sc.net));
        assert_eq!(exec.wire_ops, prog.wire_ops());
        let (makespan, _, _) = sc.run();
        assert!(makespan > SimTime::ZERO);
    }
}
