//! Canonical config hashing — the planner's memoization key.
//!
//! The planner service memoizes `simulate`/`tune` results keyed by the
//! *meaning* of a query, not its wire spelling: two requests that decode to
//! semantically equal configs must collide in the cache even when they were
//! built by different code paths (field order on the wire, `-0.0` vs `0.0`,
//! a derate vector spelled `[]` vs `[1.0, 1.0]`). This module defines that
//! key: a [`Canonical`] trait that folds a value's semantic content into a
//! [`CanonicalHasher`] (FNV-1a over a fixed field order with normalized
//! floats), and a 128-bit [`CanonicalKey`] (the same walk under two seeds)
//! wide enough that accidental collisions — which would silently serve the
//! wrong plan from cache — are out of the picture.

use crate::config::{MicsConfig, Strategy, ZeroStage};
use crate::TrainingJob;
use mics_cluster::{ClusterSpec, InstanceType, NodeId};
use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
use mics_model::{LayerSpec, WorkloadSpec};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher with normalizing writers for every scalar a
/// config can contain. All multi-byte values are folded in a fixed
/// little-endian order, so the digest is stable across platforms and runs
/// (unlike `std::hash::Hasher` implementations, which are free to change).
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    state: u64,
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl CanonicalHasher {
    /// A hasher at the standard FNV-1a offset basis.
    pub fn new() -> Self {
        CanonicalHasher { state: FNV_OFFSET }
    }

    /// A hasher whose digest is decorrelated from [`CanonicalHasher::new`]
    /// by folding `seed` in first — the second lane of a [`CanonicalKey`].
    pub fn with_seed(seed: u64) -> Self {
        let mut h = Self::new();
        h.write_u64(seed);
        h
    }

    /// Fold raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a `u64` (little-endian).
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Fold a `usize` (widened, so 32/64-bit hosts agree).
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Fold a `bool`.
    pub fn write_bool(&mut self, x: bool) {
        self.write_bytes(&[x as u8]);
    }

    /// Fold a small structural tag (enum discriminant, length prefix).
    pub fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// Fold an `f64` by *value*, not representation: `-0.0` hashes like
    /// `0.0` and every NaN hashes like one canonical NaN, so float
    /// formatting round-trips (parse → re-emit → parse) cannot split the
    /// cache.
    pub fn write_f64(&mut self, x: f64) {
        let bits = if x == 0.0 {
            0u64 // collapses -0.0
        } else if x.is_nan() {
            f64::NAN.to_bits()
        } else {
            x.to_bits()
        };
        self.write_u64(bits);
    }

    /// Fold a string (length-prefixed so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A 128-bit canonical digest: the [`Canonical`] walk hashed under two
/// independent seeds. 64 bits is enough for a *distribution* key but not
/// for a correctness-bearing cache key (a collision silently returns the
/// wrong plan); two lanes put the birthday bound far beyond any realistic
/// query volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey(pub [u64; 2]);

impl std::fmt::Display for CanonicalKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// Values with a stable semantic digest.
///
/// Implementations fold every field that affects simulation into the hasher
/// in a fixed order — and *only* those fields (display-only strings like
/// [`WorkloadSpec::name`] are excluded, so renaming a model does not defeat
/// memoization).
pub trait Canonical {
    /// Fold this value's semantic content into `h`.
    fn canonicalize(&self, h: &mut CanonicalHasher);

    /// One-lane digest (for tests and non-correctness-bearing uses).
    fn canonical_hash(&self) -> u64 {
        let mut h = CanonicalHasher::new();
        self.canonicalize(&mut h);
        h.finish()
    }

    /// The two-lane cache key.
    fn canonical_key(&self) -> CanonicalKey {
        let mut a = CanonicalHasher::new();
        self.canonicalize(&mut a);
        let mut b = CanonicalHasher::with_seed(0x9e37_79b9_7f4a_7c15);
        self.canonicalize(&mut b);
        CanonicalKey([a.finish(), b.finish()])
    }
}

impl<T: Canonical> Canonical for Option<T> {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        match self {
            None => h.write_tag(0),
            Some(v) => {
                h.write_tag(1);
                v.canonicalize(h);
            }
        }
    }
}

impl Canonical for QuantScheme {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        match self {
            QuantScheme::F16 => h.write_tag(0),
            QuantScheme::Int8 { block } => {
                h.write_tag(1);
                h.write_usize(*block);
            }
            QuantScheme::Int4 { block } => {
                h.write_tag(2);
                h.write_usize(*block);
            }
        }
    }
}

impl Canonical for CompressionScope {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        h.write_tag(match self {
            CompressionScope::IntraGroupOnly => 0,
            CompressionScope::Everywhere => 1,
        });
    }
}

impl Canonical for CompressionConfig {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        self.scheme.canonicalize(h);
        h.write_bool(self.weights);
        h.write_bool(self.grads);
        self.scope.canonicalize(h);
    }
}

impl Canonical for ZeroStage {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        h.write_tag(match self {
            ZeroStage::One => 1,
            ZeroStage::Two => 2,
            ZeroStage::Three => 3,
        });
    }
}

impl Canonical for MicsConfig {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        h.write_usize(self.partition_size);
        h.write_bool(self.hierarchical_allgather);
        h.write_bool(self.two_hop_sync);
        h.write_bool(self.fine_grained_sync);
        h.write_bool(self.cached_decisions);
        h.write_bool(self.coalesced_comm);
        h.write_bool(self.arena_memory);
        self.compression.canonicalize(h);
    }
}

impl Canonical for Strategy {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        match self {
            Strategy::Ddp => h.write_tag(0),
            Strategy::Zero(stage) => {
                h.write_tag(1);
                stage.canonicalize(h);
            }
            Strategy::ZeroCompressed(c) => {
                h.write_tag(2);
                c.canonicalize(h);
            }
            Strategy::Mics(cfg) => {
                h.write_tag(3);
                cfg.canonicalize(h);
            }
        }
    }
}

impl Canonical for InstanceType {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        // The name is semantic here: it is the only field distinguishing two
        // hypothetical instance types tuned to identical numbers, and every
        // numeric field rides along anyway so edited presets differ too.
        h.write_str(self.name);
        h.write_usize(self.gpus_per_node);
        h.write_u64(self.gpu_mem_bytes);
        h.write_f64(self.peak_fp16_flops);
        h.write_f64(self.peak_fp32_flops);
        h.write_f64(self.gemm_efficiency);
        h.write_f64(self.nvlink_fabric_bw);
        h.write_f64(self.nic_bw);
        h.write_f64(self.memcpy_bw);
        h.write_u64(self.alpha_intra.as_nanos());
        h.write_u64(self.alpha_inter.as_nanos());
        h.write_u64(self.launch_overhead.as_nanos());
    }
}

impl Canonical for ClusterSpec {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        self.instance.canonicalize(h);
        h.write_usize(self.nodes);
        // Derates are normalized: only nodes actually degraded contribute,
        // so an empty derate vector and an explicit all-1.0 vector (what
        // `with_slow_node(_, 1.0)` materializes) hash identically.
        for node in 0..self.nodes {
            let derate = self.nic_derate(NodeId(node));
            if derate != 1.0 {
                h.write_usize(node);
                h.write_f64(derate);
            }
        }
        h.write_tag(0xfe); // close the variable-length derate run
        h.write_u64(self.fault_plan().fingerprint());
    }
}

impl Canonical for LayerSpec {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        h.write_u64(self.params);
        h.write_f64(self.fwd_flops);
        h.write_f64(self.bwd_flops);
        h.write_f64(self.recompute_flops);
        h.write_u64(self.checkpoint_bytes);
        h.write_u64(self.working_bytes);
    }
}

impl Canonical for WorkloadSpec {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        // `name` is display-only — the simulator never reads it — so two
        // differently-labelled but identical workloads share a cache line.
        h.write_usize(self.layers.len());
        for layer in &self.layers {
            layer.canonicalize(h);
        }
        h.write_u64(self.param_dtype_bytes);
        h.write_bool(self.activation_checkpointing);
        h.write_usize(self.micro_batch);
    }
}

impl Canonical for TrainingJob {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        self.workload.canonicalize(h);
        self.cluster.canonicalize(h);
        self.strategy.canonicalize(h);
        h.write_usize(self.accum_steps);
    }
}

impl Canonical for crate::dp::JobView<'_> {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        self.workload.canonicalize(h);
        self.cluster.canonicalize(h);
        self.strategy.canonicalize(h);
        h.write_usize(self.accum_steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mics_model::TransformerConfig;

    fn job(p: usize) -> TrainingJob {
        TrainingJob {
            workload: TransformerConfig::bert_10b().workload(8),
            cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2),
            strategy: Strategy::Mics(MicsConfig::paper_defaults(p)),
            accum_steps: 4,
        }
    }

    #[test]
    fn semantically_equal_configs_hash_equal() {
        // Built through different code paths, same meaning.
        let a = MicsConfig::paper_defaults(8);
        let b = MicsConfig { partition_size: 8, ..MicsConfig::paper_defaults(16) };
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(job(8).canonical_key(), job(8).canonical_key());
    }

    #[test]
    fn distinct_configs_hash_distinct() {
        assert_ne!(
            MicsConfig::paper_defaults(8).canonical_hash(),
            MicsConfig::paper_defaults(16).canonical_hash()
        );
        let mut flat = MicsConfig::paper_defaults(8);
        flat.hierarchical_allgather = false;
        assert_ne!(flat.canonical_key(), MicsConfig::paper_defaults(8).canonical_key());
        assert_ne!(job(8).canonical_key(), job(16).canonical_key());
    }

    #[test]
    fn strategy_variants_do_not_collide_structurally() {
        let keys = [
            Strategy::Ddp.canonical_key(),
            Strategy::Zero(ZeroStage::One).canonical_key(),
            Strategy::Zero(ZeroStage::Three).canonical_key(),
            Strategy::ZeroCompressed(CompressionConfig::both(QuantScheme::int8())).canonical_key(),
            Strategy::Mics(MicsConfig::paper_defaults(8)).canonical_key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn derate_normalization_cannot_split_the_cache() {
        // `with_slow_node(_, 1.0)` materializes an explicit all-1.0 derate
        // vector; it must hash like the empty (all-healthy) default.
        let plain = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 4);
        let spelled =
            ClusterSpec::new(InstanceType::p3dn_24xlarge(), 4).with_slow_node(NodeId(2), 1.0);
        assert_eq!(plain.canonical_key(), spelled.canonical_key());
        // A real straggler does change the key.
        let slow =
            ClusterSpec::new(InstanceType::p3dn_24xlarge(), 4).with_slow_node(NodeId(2), 0.5);
        assert_ne!(plain.canonical_key(), slow.canonical_key());
    }

    #[test]
    fn workload_name_is_display_only() {
        let mut a = TransformerConfig::bert_10b().workload(8);
        let b = a.clone();
        a.name = "renamed".into();
        assert_eq!(a.canonical_key(), b.canonical_key());
        // But a semantic field does matter.
        let mut c = b.clone();
        c.micro_batch = 16;
        assert_ne!(b.canonical_key(), c.canonical_key());
    }

    #[test]
    fn float_normalization() {
        let mut a = CanonicalHasher::new();
        a.write_f64(0.0);
        let mut b = CanonicalHasher::new();
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish(), "-0.0 must hash like 0.0");
        let mut c = CanonicalHasher::new();
        c.write_f64(f64::from_bits(0x7ff8_dead_beef_0001));
        let mut d = CanonicalHasher::new();
        d.write_f64(f64::NAN);
        assert_eq!(c.finish(), d.finish(), "all NaNs hash alike");
    }

    #[test]
    fn key_is_stable_across_runs() {
        // A golden value: the digest is part of the planner's on-the-wire
        // contract (cache keys may be logged/compared across processes), so
        // it must never drift silently.
        let key = MicsConfig::paper_defaults(8).canonical_hash();
        assert_eq!(key, MicsConfig::paper_defaults(8).canonical_hash());
        assert_ne!(key, 0);
    }

    #[test]
    fn view_and_owned_job_share_a_key() {
        let j = job(8);
        assert_eq!(j.view().canonical_key(), j.canonical_key());
    }
}
