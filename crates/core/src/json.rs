//! A tiny JSON document model with pretty and compact serializers.
//!
//! The bench harness used to derive `serde::Serialize` for its result
//! tables; the offline build environment can't fetch serde, and the needs
//! here are small (string/number/array/object), so this hand-rolled
//! writer replaces it. See `vendor/README.md`. It lives in `mics-core`
//! (rather than the bench harness that originally grew it) because it is
//! now the single encoder shared by the `results/*.json` writers *and* the
//! planner service's wire protocol: [`Json::pretty`] for artifacts on
//! disk, [`Json::emit`] for length-prefixed frames on a socket. One
//! encoder means a response served from the planner's memo cache is
//! byte-identical to one computed fresh.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON null (also what non-finite numbers serialize to).
    Null,
    /// JSON string.
    Str(String),
    /// JSON number (non-finite values serialize as `null`).
    Num(f64),
    /// JSON boolean.
    Bool(bool),
    /// JSON array.
    Arr(Vec<Json>),
    /// JSON object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from anything convertible to values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Pretty-print with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out
    }

    /// Compact single-line serialization (no whitespace) — the wire form of
    /// the planner protocol. Deterministic: equal documents always emit the
    /// same bytes, which is what makes cached planner responses
    /// byte-identical to fresh ones.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None);
        out
    }

    /// `indent` is `Some(depth)` for pretty output, `None` for compact.
    fn render(&self, out: &mut String, indent: Option<usize>) {
        let newline = |out: &mut String, depth: usize| {
            if indent.is_some() {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Str(s) => render_string(out, s),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0", matching
                    // the serde_json output the results files used to have.
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.unwrap_or(0) + 1);
                    v.render(out, indent.map(|d| d + 1));
                }
                newline(out, indent.unwrap_or(0));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.unwrap_or(0) + 1);
                    render_string(out, k);
                    out.push_str(if indent.is_some() { ": " } else { ":" });
                    v.render(out, indent.map(|d| d + 1));
                }
                newline(out, indent.unwrap_or(0));
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// `to_string()` is the compact wire encoding ([`Json::emit`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.emit())
    }
}

impl Json {
    /// Parse a JSON document (the inverse of [`Json::pretty`], accepting
    /// any whitespace). Errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own output;
                            // reject rather than mis-decode them.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("unescaped control character")),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multibyte scalar: decode just its (≤ 4 byte) span.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err(self.err("bad utf-8")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let x: f64 = text
            .parse()
            .map_err(|_| ParseError { message: format!("bad number '{text}'"), offset: start })?;
        Ok(Json::Num(x))
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<f32> for Json {
    fn from(x: f32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl<V: Into<Json> + Clone> From<&[V]> for Json {
    fn from(xs: &[V]) -> Json {
        Json::arr(xs.iter().cloned())
    }
}
impl<V: Into<Json>> From<Vec<V>> for Json {
    fn from(xs: Vec<V>) -> Json {
        Json::arr(xs)
    }
}

/// Types that can report themselves as a [`Json`] document.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_shape() {
        let doc = Json::obj([
            ("title", Json::from("t")),
            ("rows", Json::arr([1.0f64, 2.5])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.pretty();
        assert!(s.starts_with("{\n  \"title\": \"t\""), "{s}");
        assert!(s.contains("\"rows\": [\n    1,\n    2.5\n  ]"), "{s}");
        assert!(s.contains("\"empty\": []"), "{s}");
        assert!(s.ends_with('}'), "{s}");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd".into()).pretty();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn emit_is_compact_and_parses_back() {
        let doc = Json::obj([
            ("title", Json::from("t")),
            ("rows", Json::arr([1.0f64, 2.5])),
            ("empty", Json::Arr(vec![])),
            ("flag", Json::from(true)),
        ]);
        let s = doc.emit();
        assert_eq!(s, r#"{"title":"t","rows":[1,2.5],"empty":[],"flag":true}"#);
        assert_eq!(Json::parse(&s).unwrap(), doc);
        // Display is the wire encoding.
        assert_eq!(doc.to_string(), s);
    }

    #[test]
    fn emit_and_pretty_agree_on_values() {
        // Same serializer core: parsing either form yields the same document.
        let doc = Json::obj([
            ("nested", Json::obj([("a", Json::from(-2.5)), ("b", Json::Null)])),
            ("arr", Json::arr(["x", "y"])),
        ]);
        assert_eq!(Json::parse(&doc.emit()).unwrap(), Json::parse(&doc.pretty()).unwrap());
    }

    #[test]
    fn emit_is_deterministic() {
        // Byte-identical output for equal documents — the property the
        // planner's cached responses rely on.
        let build =
            || Json::obj([("k", Json::arr([1.0f64, 2.0, 3.0])), ("s", Json::from("v"))]).emit();
        assert_eq!(build(), build());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let doc = Json::obj([
            ("title", Json::from("a \"quoted\"\nname")),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("rows", Json::arr([1.0f64, -2.5, 3e8])),
            (
                "nested",
                Json::obj([("empty_arr", Json::Arr(vec![])), ("empty_obj", Json::Obj(vec![]))]),
            ),
        ]);
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_accepts_arbitrary_whitespace_and_escapes() {
        let v = Json::parse("  { \"a\\u0041\" : [ 1 ,\t2e2 , null ] }\n").unwrap();
        assert_eq!(
            v,
            Json::obj([("aA", Json::arr([Json::Num(1.0), Json::Num(200.0), Json::Null]))])
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert_eq!(Json::parse("1 2").unwrap_err().offset, 2);
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse("{\"x\": {\"y\": [\"z\", 4]}}").unwrap();
        let arr = doc.get("x").and_then(|x| x.get("y")).and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_str(), Some("z"));
        assert_eq!(arr[1].as_num(), Some(4.0));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(arr[0].get("x"), None);
    }
}
