//! Quickstart: compare MiCS with DeepSpeed ZeRO-3 on a small cloud cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mics::cluster::{ClusterSpec, InstanceType};
use mics::core::{simulate, MicsConfig, Strategy, TrainingJob, ZeroStage};
use mics::model::TransformerConfig;

fn main() {
    // Four p3dn.24xlarge instances: 32 × V100 (32 GB), 100 Gbps EFA.
    let cluster = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 4);
    let model = TransformerConfig::bert_10b();
    println!(
        "model: {} ({:.2}B parameters), cluster: {} × {} ({} GPUs)",
        model.name,
        model.total_params() as f64 / 1e9,
        cluster.nodes,
        cluster.instance.name,
        cluster.total_devices(),
    );

    for strategy in [
        Strategy::Zero(ZeroStage::Three),
        // Partition group of 8 = one node: parameter gathering stays on NVLink.
        Strategy::Mics(MicsConfig::paper_defaults(8)),
    ] {
        let job = TrainingJob {
            workload: model.workload(8),
            cluster: cluster.clone(),
            strategy,
            accum_steps: 4,
        };
        match simulate(&job) {
            Ok(r) => println!(
                "{:>12}: {:>7.1} samples/sec | iteration {} | {:.0}% compute-busy \
                 | {:.1} GiB/device",
                r.label,
                r.samples_per_sec,
                r.iter_time,
                r.compute_fraction * 100.0,
                r.memory.total() as f64 / (1u64 << 30) as f64,
            ),
            Err(e) => println!("{e}"),
        }
    }
    println!("\nMiCS minimizes the communication scale: most parameter gathers run");
    println!("inside one node over NVLink instead of across the whole cluster.");
}
