//! Sweep the partition group size — the knob §3.2 introduces and §5.2.1
//! ablates — and find the best configuration for a model/cluster pair.
//!
//! The paper's heuristic is "smallest group that fits" (§5.1.1); §7 leaves
//! automatic configuration search as future work. This example does both:
//! it reports the memory-feasibility frontier and the simulated-throughput
//! optimum.
//!
//! ```text
//! cargo run --release --example partition_sweep
//! ```

use mics::cluster::{ClusterSpec, InstanceType};
use mics::core::{simulate, MicsConfig, Strategy, TrainingJob};
use mics::model::TransformerConfig;

fn main() {
    let cluster = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 8); // 64 GPUs
    let model = TransformerConfig::bert_15b();
    let n = cluster.total_devices();
    println!("sweeping partition group sizes for {} on {} GPUs\n", model.name, n);
    println!("{:>6}  {:>12}  {:>12}  {:>10}", "p", "samples/sec", "GiB/device", "verdict");

    let mut best: Option<(usize, f64)> = None;
    let mut p = cluster.devices_per_node();
    while p <= n {
        let job = TrainingJob {
            workload: model.workload(8),
            cluster: cluster.clone(),
            strategy: Strategy::Mics(MicsConfig::paper_defaults(p)),
            accum_steps: 4,
        };
        match simulate(&job) {
            Ok(r) => {
                let gib = r.memory.total() as f64 / (1u64 << 30) as f64;
                let better = best.is_none_or(|(_, t)| r.samples_per_sec > t);
                if better {
                    best = Some((p, r.samples_per_sec));
                }
                println!(
                    "{:>6}  {:>12.1}  {:>12.1}  {:>10}",
                    p,
                    r.samples_per_sec,
                    gib,
                    if better { "new best" } else { "" }
                );
            }
            Err(_) => println!("{:>6}  {:>12}  {:>12}  {:>10}", p, "×", "OOM", ""),
        }
        p *= 2;
    }
    let (bp, bt) = best.expect("some group size must fit");
    println!(
        "\nbest partition group: {bp} GPUs at {bt:.1} samples/sec — matching the paper's \
         \"smallest possible group\" heuristic"
    );
}
