//! Export a chrome-trace timeline of one simulated MiCS iteration.
//!
//! Writes `results/mics_timeline.json` (and a ZeRO-3 counterpart); open
//! them in `chrome://tracing` or https://ui.perfetto.dev to *see* how MiCS
//! overlaps parameter gathers with compute while the baseline serializes.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use mics::cluster::{ClusterSpec, InstanceType};
use mics::core::{simulate_dp_traced, MicsConfig, Strategy, TrainingJob, ZeroStage};
use mics::model::TransformerConfig;

fn main() {
    std::fs::create_dir_all("results").expect("create results dir");
    let cluster = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2);
    for (name, strategy) in [
        ("mics_timeline", Strategy::Mics(MicsConfig::paper_defaults(8))),
        ("zero3_timeline", Strategy::Zero(ZeroStage::Three)),
    ] {
        let job = TrainingJob {
            workload: TransformerConfig::bert_10b().workload(8),
            cluster: cluster.clone(),
            strategy,
            accum_steps: 2,
        };
        let (report, trace) = simulate_dp_traced(&job).expect("fits");
        let path = format!("results/{name}.json");
        std::fs::write(&path, &trace).expect("write trace");
        println!(
            "{}: iteration {} ({:.1} samples/sec) → {} ({} bytes of trace)",
            report.label,
            report.iter_time,
            report.samples_per_sec,
            path,
            trace.len()
        );
    }
    println!("\nopen the JSON files in chrome://tracing or ui.perfetto.dev");
}
