//! Real sharded training over the shared-memory data plane (the §5.4
//! fidelity experiment, scaled down): eight thread-rank workers train the
//! same model under MiCS's 2-hop schedule and classic DDP; the loss curves
//! must coincide.
//!
//! ```text
//! cargo run --release --example fidelity_training
//! ```

use mics::minidl::{train, Mlp, SyncSchedule, TrainSetup};

fn main() {
    let setup = TrainSetup {
        model: Mlp::new(&[12, 24, 24, 3]),
        world: 8,
        partition_size: 2, // four partition groups of two ranks (Figure 2)
        micro_batch: 8,
        accum_steps: 4,
        iterations: 25,
        lr: 0.01,
        seed: 7,
        quantize: true, // fp16 forward copies, fp32 master weights
        loss_scale: mics::minidl::LossScale::Dynamic { init: 65536.0, growth_interval: 100 },
        clip_grad_norm: Some(1.0),
        comm_quant: None,
        prefetch_depth: 0,
    };
    println!(
        "training a {}-parameter model on {} thread-ranks, partition groups of {}\n",
        setup.model.num_params(),
        setup.world,
        setup.partition_size
    );

    let mics = train(&setup, SyncSchedule::TwoHop);
    let ddp = train(&setup, SyncSchedule::Ddp);

    println!("{:>5}  {:>12}  {:>12}  {:>10}", "iter", "MiCS 2-hop", "DDP", "|Δ|");
    for i in 0..mics.losses.len() {
        println!(
            "{:>5}  {:>12.6}  {:>12.6}  {:>10.2e}",
            i,
            mics.losses[i],
            ddp.losses[i],
            (mics.losses[i] - ddp.losses[i]).abs()
        );
    }
    let improvement = mics.losses[0] / mics.losses.last().unwrap();
    println!("\nloss improved {improvement:.1}× — and the two schedules' curves coincide,");
    println!("validating that 2-hop synchronization accumulates the same gradient sums.");
}
