//! The 3-stage hierarchical all-gather of §3.3 / Figure 4, on real buffers —
//! including the memory-discontiguity bug the re-arrangement stage fixes.
//!
//! ```text
//! cargo run --release --example hierarchical_allgather
//! ```

use mics::collectives::HierarchicalLayout;
use mics::dataplane::hierarchical::split_hierarchical;
use mics::dataplane::{hierarchical_all_gather, naive_two_stage_all_gather, run_ranks};

fn main() {
    // The paper's running example: p = 4 devices on 2 nodes (k = 2).
    let layout = HierarchicalLayout::new(4, 2).unwrap();
    println!(
        "geometry: p = {} participants, k = {} per node, {} node(s)\n",
        layout.participants(),
        layout.per_node(),
        layout.nodes()
    );

    // Each rank contributes chunk C<rank> (one value here, for readability).
    let correct = run_ranks(4, |mut comm| {
        let rank = comm.rank();
        let (channel, node) = split_hierarchical(&mut comm, &layout);
        hierarchical_all_gather(&channel, &node, &layout, &[rank as f32])
    });
    let naive = run_ranks(4, |mut comm| {
        let rank = comm.rank();
        let (channel, node) = split_hierarchical(&mut comm, &layout);
        naive_two_stage_all_gather(&channel, &node, &layout, &[rank as f32])
    });

    let fmt =
        |v: &[f32]| v.iter().map(|x| format!("C{}", *x as usize)).collect::<Vec<_>>().join(", ");
    println!("stage-1 holdings of rank 0 (node 0, local 0): {:?}", layout.stage1_holdings(0));
    println!("naive two-stage result (no re-arrangement):  [{}]  ← WRONG", fmt(&naive[0]));
    println!("3-stage hierarchical result:                 [{}]  ← correct", fmt(&correct[0]));
    assert_eq!(correct[0], vec![0.0, 1.0, 2.0, 3.0]);
    assert_eq!(naive[0], vec![0.0, 2.0, 1.0, 3.0]);
    println!("\nThe inter-node all-gather interleaves chunks by channel; stage 2 moves");
    println!("each chunk to its flat position before the batched intra-node gathers.");

    // And at a realistic geometry: 4 nodes × 8 GPUs.
    let layout = HierarchicalLayout::new(32, 8).unwrap();
    let out = run_ranks(32, |mut comm| {
        let rank = comm.rank();
        let (channel, node) = split_hierarchical(&mut comm, &layout);
        hierarchical_all_gather(&channel, &node, &layout, &[rank as f32 * 10.0])
    });
    assert!(out.iter().all(|o| o == &out[0]));
    assert!(out[0].windows(2).all(|w| w[0] < w[1]));
    println!("\n32-rank (4 nodes × 8 GPUs) hierarchical all-gather verified on real data ✓");
}
