//! Cross-backend overlap contract: the async executor's *measured*
//! concurrency must match the concurrency `execute_on_sim` *charges* for the
//! same [`StepProgram`].
//!
//! Two independent derivations are compared, op id for op id:
//!
//! * **Static** — [`overlappable_wire_ops`] analyses the program's
//!   dependency edges (plus the implicit gradient-accumulation hazard) and
//!   returns the wire ops that admit compute between issue and first
//!   blocker. This is exactly the structure the simulator backend exploits:
//!   its lane streams only wait where edges (or the reduce-lane serialization
//!   of the accumulated gradient) force them to.
//! * **Runtime** — the executor under `prefetch_depth ≥ 1` records
//!   `deferred_wire_ops`: the collectives it actually retired after at least
//!   one intervening compute op ran on the real backend.
//!
//! If the executor deferred an op the analysis says is blocked, it broke a
//! dependency; if it failed to defer an op the analysis says is free, the
//! "overlap" the sim charges is fictional on the real backend. Equality is
//! the contract.

use mics::cluster::{ClusterSpec, InstanceType, Rank};
use mics::core::ops::SimCluster;
use mics::core::schedule::execute_on_sim;
use mics::minidl::scaler::LossScale;
use mics::minidl::train::{
    step_program, step_program_with_flops, train, ScheduleHyper, SyncSchedule, TrainSetup,
};
use mics::minidl::{overlappable_wire_ops, Mlp};
use std::collections::BTreeSet;

fn hyper(world: usize, p: usize, depth: usize) -> ScheduleHyper {
    ScheduleHyper {
        world,
        partition_size: p,
        accum_steps: 3,
        iterations: 2,
        lr: 0.02,
        quantize: false,
        loss_scale: LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: depth,
    }
}

fn setup(world: usize, p: usize, depth: usize) -> TrainSetup {
    TrainSetup {
        model: Mlp::new(&[6, 12, 2]),
        world,
        partition_size: p,
        micro_batch: 4,
        accum_steps: 3,
        iterations: 2,
        lr: 0.02,
        seed: 7,
        quantize: false,
        loss_scale: LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: depth,
    }
}

/// Runtime deferred set == static overlappable set, restricted to the wire
/// ops whose group contains the reporting rank (rank 0).
#[test]
fn executor_defers_exactly_the_statically_overlappable_ops() {
    for (schedule, world, p) in [
        (SyncSchedule::TwoHop, 8, 4),
        (SyncSchedule::TwoHop, 4, 2),
        (SyncSchedule::PerMicroStepAllReduce, 4, 4),
        (SyncSchedule::Ddp, 4, 1),
    ] {
        let model = Mlp::new(&[6, 12, 2]);
        let prog = step_program(&hyper(world, p, 2), schedule, model.num_params());
        let structural: BTreeSet<usize> = overlappable_wire_ops(&prog)
            .into_iter()
            .filter(|&id| prog.executes_wire(id, Rank(0)))
            .collect();
        let out = train(&setup(world, p, 2), schedule);
        let runtime: BTreeSet<usize> = out.lane_stats.deferred_wire_ops.iter().copied().collect();
        assert_eq!(
            runtime, structural,
            "{schedule:?} world={world} p={p}: executor deferrals disagree with the IR analysis"
        );
        // MiCS is the schedule with overlap to find; the contract must not
        // be vacuously satisfied there.
        if matches!(schedule, SyncSchedule::TwoHop) {
            assert!(!structural.is_empty(), "TwoHop must admit overlap");
        }
    }
}

/// The simulator charges the same concurrency structure the executor
/// realizes: with one partition group leading on rank 0, every collective
/// phase occupies rank 0's comm streams and each rank's compute is
/// `compute_busy / world`, so `1 - makespan / (compute/world + comm)` is the
/// fraction of time the sim hid communication under other work.
///
/// All sharded schedules get a small gain from gather-lane look-ahead (bwd
/// gathers have no dependency on fwd compute). On top of that, only the
/// schedule whose reduce ops [`overlappable_wire_ops`] marks free — MiCS
/// 2-hop — may beat ZeRO-3's gain; ZeRO-3's barriers fence its reduce lane,
/// and DDP (one boundary all-reduce feeding the optimizer) must charge no
/// overlap at all.
#[test]
fn sim_charges_the_concurrency_the_executor_realizes() {
    let world = 4;
    let gain = |schedule: SyncSchedule, p: usize| {
        let prog = step_program_with_flops(&hyper(world, p, 1), schedule, 2_000_000, 4e9, 8e9);
        let mut inst = InstanceType::p3dn_24xlarge();
        inst.gpus_per_node = world;
        let mut sc = SimCluster::new(ClusterSpec::new(inst, 1));
        execute_on_sim(&prog, &mut sc, 1e12);
        let (makespan, compute_busy, comm_busy) = sc.run();
        let serial = compute_busy.as_secs_f64() / world as f64 + comm_busy.as_secs_f64();
        (1.0 - makespan.as_secs_f64() / serial, overlappable_wire_ops(&prog).len())
    };

    let (mics_gain, mics_overlappable) = gain(SyncSchedule::TwoHop, world);
    let (zero3_gain, zero3_overlappable) = gain(SyncSchedule::PerMicroStepAllReduce, world);
    let (ddp_gain, ddp_overlappable) = gain(SyncSchedule::Ddp, 1);

    // The analysis marks MiCS reduce-scatters of micro-steps 0..s-2 free
    // (they retire at the next micro-step's backward), and nothing else.
    assert!(mics_overlappable > 0);
    assert_eq!(zero3_overlappable, 0);
    assert_eq!(ddp_overlappable, 0);

    // The sim's charged gains line up with that structure.
    assert!(
        mics_gain > zero3_gain + 1e-3,
        "sim charged MiCS ({mics_gain:.4}) no reduce-lane gain over ZeRO-3 ({zero3_gain:.4})"
    );
    assert!(
        ddp_gain.abs() < 1e-9,
        "DDP has no sharded gathers and a post-compute all-reduce; charged gain {ddp_gain:.4}"
    );
}
