//! Trace Event Format invariants over every trace the system produces.
//!
//! All trace JSON now flows through one writer (`mics_trace::Trace::to_json`),
//! so one schema checker can gate every producer: the simulator's charged
//! timeline, the fidelity run's merged sim + measured + dataplane document,
//! and a raw socket-collective capture from the global recorder. The checks
//! are the ones Perfetto actually relies on:
//!
//! * every `ph:"X"` complete event carries numeric `ts` and `dur`;
//! * every `pid` used by an event is named by `process_name` metadata, and
//!   every `(pid, tid)` by `thread_name` metadata;
//! * counter series whose name marks them cumulative (`bytes`, `(cum)`)
//!   are monotone non-decreasing.
//!
//! A golden snapshot additionally pins the simulator trace byte-for-byte —
//! the writer's pid/tid allocation, number formatting and escaping are part
//! of the output contract. Regenerate intentionally with
//! `MICS_UPDATE_GOLDENS=1 cargo test --test trace_schema`.

use mics::cluster::{ClusterSpec, InstanceType};
use mics::core::{simulate_dp_traced, Json, Strategy, TrainingJob};
use mics::dataplane::TransportKind;
use mics::model::{LayerSpec, WorkloadSpec};
use std::collections::HashSet;
use std::path::PathBuf;

// ---- the schema checker -----------------------------------------------------

fn events(doc: &Json) -> &[Json] {
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .expect("trace document must be {\"traceEvents\": [...]}")
}

fn num(e: &Json, key: &str) -> Option<f64> {
    e.get(key).and_then(Json::as_num)
}

fn text<'a>(e: &'a Json, key: &str) -> Option<&'a str> {
    e.get(key).and_then(Json::as_str)
}

/// Assert every TEF invariant on a parsed trace document. Returns the
/// counter samples as `((pid, tid, name), ts, value)` in file order so
/// callers can run additional series-level checks.
#[allow(clippy::type_complexity)]
fn check_tef(doc: &Json, label: &str) -> Vec<((u64, u64, String), f64, f64)> {
    let mut named_pids: HashSet<u64> = HashSet::new();
    let mut named_tids: HashSet<(u64, u64)> = HashSet::new();
    let mut used: Vec<(u64, u64, String)> = Vec::new();
    let mut counters = Vec::new();
    for e in events(doc) {
        let ph = text(e, "ph").unwrap_or_else(|| panic!("{label}: event without ph: {e:?}"));
        let pid = num(e, "pid").unwrap_or_else(|| panic!("{label}: event without pid: {e:?}"));
        let tid = num(e, "tid").unwrap_or_else(|| panic!("{label}: event without tid: {e:?}"));
        assert!(pid >= 0.0 && pid.fract() == 0.0, "{label}: pid must be a whole number: {e:?}");
        assert!(tid >= 0.0 && tid.fract() == 0.0, "{label}: tid must be a whole number: {e:?}");
        let (pid, tid) = (pid as u64, tid as u64);
        let name = text(e, "name").unwrap_or_else(|| panic!("{label}: event without name: {e:?}"));
        match ph {
            "M" => {
                let arg = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("{label}: metadata without args.name: {e:?}"));
                assert!(!arg.is_empty(), "{label}: empty metadata name");
                match name {
                    "process_name" => {
                        named_pids.insert(pid);
                    }
                    "thread_name" => {
                        named_tids.insert((pid, tid));
                    }
                    other => panic!("{label}: unknown metadata record '{other}'"),
                }
            }
            "X" => {
                let ts = num(e, "ts")
                    .unwrap_or_else(|| panic!("{label}: complete event without ts: {e:?}"));
                let dur = num(e, "dur")
                    .unwrap_or_else(|| panic!("{label}: complete event without dur: {e:?}"));
                assert!(ts >= 0.0 && dur >= 0.0, "{label}: negative ts/dur: {e:?}");
                used.push((pid, tid, name.to_string()));
            }
            "C" => {
                let ts =
                    num(e, "ts").unwrap_or_else(|| panic!("{label}: counter without ts: {e:?}"));
                let value = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_num)
                    .unwrap_or_else(|| panic!("{label}: counter without args.value: {e:?}"));
                used.push((pid, tid, name.to_string()));
                counters.push(((pid, tid, name.to_string()), ts, value));
            }
            "i" => {
                assert!(num(e, "ts").is_some(), "{label}: instant without ts: {e:?}");
                assert_eq!(text(e, "s"), Some("t"), "{label}: instant without scope: {e:?}");
                used.push((pid, tid, name.to_string()));
            }
            other => panic!("{label}: unexpected phase '{other}': {e:?}"),
        }
    }
    assert!(!used.is_empty(), "{label}: trace has no events");
    for (pid, tid, name) in &used {
        assert!(named_pids.contains(pid), "{label}: pid {pid} of '{name}' has no process_name");
        assert!(
            named_tids.contains(&(*pid, *tid)),
            "{label}: (pid {pid}, tid {tid}) of '{name}' has no thread_name"
        );
    }
    // Cumulative series must never step backwards.
    let mut last: std::collections::HashMap<&(u64, u64, String), (f64, f64)> =
        std::collections::HashMap::new();
    for (series, ts, value) in &counters {
        if !(series.2.contains("bytes") || series.2.contains("(cum)")) {
            continue;
        }
        if let Some((prev_ts, prev_value)) = last.get(series) {
            assert!(
                ts >= prev_ts && value >= prev_value,
                "{label}: cumulative counter '{}' went backwards ({prev_value}@{prev_ts} -> \
                 {value}@{ts})",
                series.2
            );
        }
        last.insert(series, (*ts, *value));
    }
    counters
}

fn parse(json: &str, label: &str) -> Json {
    Json::parse(json).unwrap_or_else(|e| panic!("{label}: invalid JSON: {e:?}"))
}

fn process_names(doc: &Json) -> Vec<String> {
    events(doc)
        .iter()
        .filter(|e| text(e, "ph") == Some("M") && text(e, "name") == Some("process_name"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
        .map(str::to_string)
        .collect()
}

// ---- producers --------------------------------------------------------------

/// The schedule-goldens tiny workload: 4 layers of 1M params, small enough
/// that the traced simulation stays a few hundred events.
fn tiny_job() -> TrainingJob {
    let layer = LayerSpec {
        params: 1_000_000,
        fwd_flops: 1e9,
        bwd_flops: 2e9,
        recompute_flops: 1e9,
        checkpoint_bytes: 1 << 20,
        working_bytes: 1 << 20,
    };
    TrainingJob {
        workload: WorkloadSpec {
            name: "tiny-4l".into(),
            layers: vec![layer; 4],
            param_dtype_bytes: 2,
            activation_checkpointing: true,
            micro_batch: 4,
        },
        cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), 1),
        strategy: Strategy::parse("mics:8").unwrap(),
        accum_steps: 2,
    }
}

#[test]
fn simulator_trace_satisfies_tef_invariants() {
    let (_, json) = simulate_dp_traced(&tiny_job()).expect("tiny job must fit");
    let doc = parse(&json, "sim");
    check_tef(&doc, "sim");
    let names = process_names(&doc);
    assert_eq!(names, ["simulator (charged)"], "one charged process: {names:?}");
}

#[test]
fn simulator_trace_is_byte_stable() {
    let (_, json) = simulate_dp_traced(&tiny_job()).expect("tiny job must fit");
    let (_, again) = simulate_dp_traced(&tiny_job()).expect("tiny job must fit");
    assert_eq!(json, again, "the traced simulation must be deterministic");
    check_golden("trace_sim_tiny", &json);
}

/// Fidelity over the socket transport produces the fully merged document —
/// simulator (charged), minidl lanes (measured), dataplane wire counters —
/// and a raw recorder capture of a bare socket collective must stand on its
/// own. One test, because both halves share the process-global recorder.
#[test]
fn merged_fidelity_and_raw_socket_traces_satisfy_tef_invariants() {
    let path = std::env::temp_dir().join(format!("mics_trace_schema_{}.json", std::process::id()));
    let path_s = path.to_str().unwrap().to_string();
    let argv: Vec<String> = format!("fidelity --iterations 2 --transport socket --trace {path_s}")
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let out = mics_cli::execute(&mics_cli::parse_args(&argv).unwrap()).unwrap();
    assert!(out.contains("trace written to"), "{out}");
    let doc = parse(&std::fs::read_to_string(&path).unwrap(), "fidelity");
    std::fs::remove_file(&path).ok();
    let counters = check_tef(&doc, "fidelity");
    let names = process_names(&doc);
    assert!(
        names.contains(&"simulator (charged)".to_string())
            && names.contains(&"real backend (measured)".to_string())
            && names.contains(&"dataplane".to_string()),
        "merged trace must hold all three layers: {names:?}"
    );
    let series: HashSet<&str> = counters.iter().map(|(s, _, _)| s.2.as_str()).collect();
    assert!(
        series.iter().any(|s| s.contains("tx bytes")),
        "dataplane byte counters missing: {series:?}"
    );
    assert!(
        series.iter().any(|s| s.contains("lane occupancy")),
        "minidl occupancy counters missing: {series:?}"
    );

    // Second half: a bare socket collective captured by the recorder alone.
    let rec = mics::trace::global();
    let _ = rec.drain();
    rec.enable();
    let sums = mics::dataplane::run_ranks_on(TransportKind::Socket, 2, |c| {
        c.all_reduce(&[c.rank() as f32 + 1.0])
    });
    rec.disable();
    assert!(sums.iter().all(|s| s == &[3.0]));
    let doc = parse(&rec.drain().to_json(), "socket");
    let counters = check_tef(&doc, "socket");
    assert_eq!(process_names(&doc), ["dataplane"]);
    assert!(
        counters.iter().any(|(s, _, _)| s.2.contains("rx bytes")),
        "wire rx counters must be captured"
    );
    assert!(
        counters.iter().any(|(s, _, _)| s.2.contains("in-flight exchanges")),
        "pending-depth gauge must be captured"
    );
}

#[test]
fn shipped_timeline_snapshots_satisfy_tef_invariants() {
    for name in ["mics_timeline", "zero3_timeline"] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("results/{name}.json"));
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let doc = parse(&json, name);
        check_tef(&doc, name);
    }
}

// Same idiom as tests/schedule_goldens.rs: goldens live under
// tests/goldens/, refreshed via MICS_UPDATE_GOLDENS=1.
fn check_golden(name: &str, actual: &str) {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.txt"));
    if std::env::var_os("MICS_UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden '{}' ({e}); run MICS_UPDATE_GOLDENS=1 cargo test --test trace_schema",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden '{name}' drifted; regenerate intentionally with MICS_UPDATE_GOLDENS=1"
    );
}
