//! Every artifact under `results/` must parse as JSON through the bench
//! harness's own document model ([`mics_bench::Json`]) and obey the schema
//! its producer promises — tables keep rows as wide as their headers, and
//! the extension benches' headline numbers stay inside their claimed
//! envelopes. This is the read-side counterpart of `write_json`: the
//! serializer and parser must agree on every file the repo ships.

use mics_bench::Json;
use std::path::{Path, PathBuf};

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results")
}

fn parse(path: &Path) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()))
}

fn result_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(results_dir())
        .expect("results/ must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(files.len() >= 20, "expected the full result set, found {}", files.len());
    files
}

/// Every results file parses, and parsing is a fixpoint: re-serializing the
/// parsed document and parsing again yields the same value.
#[test]
fn every_results_file_parses_and_round_trips() {
    for path in result_files() {
        let doc = parse(&path);
        let again = Json::parse(&doc.pretty())
            .unwrap_or_else(|e| panic!("{} does not round-trip: {e}", path.display()));
        assert_eq!(again, doc, "{} round-trip changed the document", path.display());
    }
}

/// Table-shaped documents (title/headers/rows) keep every row exactly as
/// wide as the header, with string cells — what `Table::to_json` writes.
#[test]
fn table_documents_obey_the_table_schema() {
    let mut tables = 0;
    for path in result_files() {
        let doc = parse(&path);
        for table in table_views(&doc) {
            let headers = table.get("headers").and_then(Json::as_arr).unwrap();
            let rows = table.get("rows").and_then(Json::as_arr).unwrap();
            assert!(table.get("title").and_then(Json::as_str).is_some());
            assert!(!headers.is_empty() && !rows.is_empty(), "{}", path.display());
            for row in rows {
                let cells = row.as_arr().unwrap_or_else(|| panic!("{}", path.display()));
                assert_eq!(cells.len(), headers.len(), "{}: ragged row", path.display());
                assert!(cells.iter().all(|c| c.as_str().is_some()));
            }
            tables += 1;
        }
    }
    assert!(tables >= 20, "expected many table documents, found {tables}");
}

/// A document is a table view if it carries the title/headers/rows triple;
/// composite documents (like ext_compress.json) nest them one level down.
fn table_views(doc: &Json) -> Vec<&Json> {
    let is_table = |d: &Json| {
        d.get("title").is_some() && d.get("headers").is_some() && d.get("rows").is_some()
    };
    if is_table(doc) {
        return vec![doc];
    }
    match doc {
        Json::Obj(pairs) => pairs.iter().map(|(_, v)| v).filter(|v| is_table(v)).collect(),
        _ => Vec::new(),
    }
}

/// The quantized-collective extension's artifact carries both sweeps and a
/// fidelity record whose loss deviation stays inside the claimed bound.
#[test]
fn ext_compress_artifact_matches_its_claims() {
    let doc = parse(&results_dir().join("ext_compress.json"));
    let sweep = doc.get("bit_width_sweep").expect("bit-width sweep present");
    let headers = sweep.get("headers").and_then(Json::as_arr).unwrap();
    assert!(headers.iter().any(|h| h.as_str() == Some("vs fp32")));
    // The int8 row's fp32 wire ratio is the ~4× headline claim.
    let rows = sweep.get("rows").and_then(Json::as_arr).unwrap();
    let int8 = rows
        .iter()
        .filter_map(Json::as_arr)
        .find(|r| r[0].as_str() == Some("int8/128, both"))
        .expect("int8 row present");
    let vs_fp32: f64 =
        int8.last().unwrap().as_str().unwrap().trim_end_matches('×').parse().unwrap();
    assert!((3.2..4.2).contains(&vs_fp32), "claimed ~4×, artifact says {vs_fp32}×");

    assert!(doc.get("cluster_sweep").is_some());
    let fidelity = doc.get("fidelity").expect("fidelity record present");
    let dev = fidelity.get("max_relative_loss_deviation").and_then(Json::as_num).unwrap();
    assert!(dev < 0.05, "int8 training strayed {dev} from the exact run");
    let exact = fidelity.get("exact_losses").and_then(Json::as_arr).unwrap();
    let int8 = fidelity.get("int8_losses").and_then(Json::as_arr).unwrap();
    assert_eq!(exact.len(), int8.len());
    assert_eq!(exact.len() as f64, fidelity.get("iterations").and_then(Json::as_num).unwrap());
}

/// The multi-process extension's artifact backs its claims: every survivor
/// of the SIGKILL observed the death within the detection deadline, blamed
/// the right rank, and rebuilt a world that still gathers in order.
#[test]
fn ext_multiproc_artifact_matches_its_claims() {
    let doc = parse(&results_dir().join("ext_multiproc.json"));
    assert_eq!(doc.get("transport").and_then(Json::as_str), Some("socket"));

    let world = doc.get("world").and_then(Json::as_num).unwrap();
    let victim = doc.get("victim").and_then(Json::as_num).unwrap();
    assert!(victim < world);

    // Bounded-time failure detection, with real headroom under the deadline.
    let detect = doc.get("max_detect_ms").and_then(Json::as_num).unwrap();
    let deadline = doc.get("detect_deadline_ms").and_then(Json::as_num).unwrap();
    assert!(detect < deadline, "detection {detect} ms missed the {deadline} ms deadline");

    // The shrunk group kept every survivor, in world order, and gathered.
    assert_eq!(doc.get("shrunk_world").and_then(Json::as_num), Some(world - 1.0));
    assert_eq!(doc.get("all_survivors_recovered"), Some(&Json::Bool(true)));
    let post: Vec<f64> = doc
        .get("post_gather")
        .and_then(Json::as_arr)
        .expect("post_gather present")
        .iter()
        .map(|v| v.as_num().unwrap())
        .collect();
    let expected: Vec<f64> =
        (0..world as usize).map(|r| r as f64).filter(|r| *r != victim).collect();
    assert_eq!(post, expected, "rebuilt world must preserve survivor order");

    // One report per survivor, each having gathered before the kill.
    let survivors = doc.get("survivors").expect("survivor table present");
    let rows = survivors.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), world as usize - 1);
    for row in rows.iter().filter_map(Json::as_arr) {
        let iters: f64 = row[1].as_str().unwrap().parse().unwrap();
        assert!(iters >= 1.0, "a survivor never collectivized before the kill");
        assert!(row[3].as_str().unwrap().contains(&format!("rank {victim}")), "wrong blame");
    }

    // And the elastic loop closed: a replacement process was admitted back
    // into the victim's slot and the world grew to its original size.
    assert_eq!(doc.get("grow"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("grown_world").and_then(Json::as_num), Some(world));
    assert_eq!(doc.get("replacement_admitted"), Some(&Json::Bool(true)));
}

/// The elastic extension's artifact backs its claims: elastic never trails
/// static on the same seeded capacity trace and strictly beats it under
/// churn, capacity returns are exercised (grows), and the real-backend
/// continuity checks — shrink/grow bounce and mid-run grow — were exact.
#[test]
fn ext_elastic_artifact_matches_its_claims() {
    let doc = parse(&results_dir().join("ext_elastic.json"));

    let sweep = doc.get("sweep").expect("sim sweep present");
    let headers = sweep.get("headers").and_then(Json::as_arr).unwrap();
    let col = |name: &str| {
        headers
            .iter()
            .position(|h| h.as_str() == Some(name))
            .unwrap_or_else(|| panic!("column '{name}' present"))
    };
    let (c_pre, c_grow) = (col("preemptions"), col("grows"));
    let (c_el, c_st) = (col("elastic goodput"), col("static goodput"));
    let pct =
        |cell: &Json| -> f64 { cell.as_str().unwrap().trim_end_matches('%').parse().unwrap() };
    let rows = sweep.get("rows").and_then(Json::as_arr).unwrap();
    assert!(rows.len() >= 3, "sweep must cover several preemption rates");
    let mut preempted = 0.0;
    let mut strictly_better = 0;
    for row in rows.iter().filter_map(Json::as_arr) {
        let el = pct(&row[c_el]);
        let st = pct(&row[c_st]);
        assert!(el >= st, "elastic {el}% trails static {st}%");
        if el > st {
            strictly_better += 1;
        }
        let pre: f64 = row[c_pre].as_str().unwrap().parse().unwrap();
        let grows: f64 = row[c_grow].as_str().unwrap().parse().unwrap();
        assert!(grows <= pre, "cannot grow more often than capacity left");
        preempted += pre;
        if pre > 0.0 {
            assert!(grows > 0.0, "capacity-return traces must exercise grows");
        }
    }
    assert!(preempted > 0.0, "the sweep never exercised a preemption");
    assert!(strictly_better > 0, "elastic must strictly beat static somewhere");

    // Real-backend continuity: bounce round-trip and mid-run grow, exact.
    let real = doc.get("real_backend").expect("real-backend record present");
    assert_eq!(real.get("bounce_bit_exact"), Some(&Json::Bool(true)));
    assert_eq!(real.get("grow_prefix_bit_exact"), Some(&Json::Bool(true)));
    let checks = real.get("bounce_checks").and_then(Json::as_num).unwrap();
    assert!(checks >= 4.0, "both bounce geometries on both transports");
    let first = real.get("first_loss").and_then(Json::as_num).unwrap();
    let last = real.get("final_loss").and_then(Json::as_num).unwrap();
    assert!(last < first, "the grown world must have kept training");
}

/// The planner-service extension's artifact backs its claims: a four-digit
/// query count served over sockets, a warm phase that is pure cache hits,
/// a duplicate burst collapsed by the single-flight cache, and responses
/// byte-identical to in-process simulator calls.
#[test]
fn ext_serve_artifact_matches_its_claims() {
    let doc = parse(&results_dir().join("ext_serve.json"));

    let queries = doc.get("queries").and_then(Json::as_num).unwrap();
    assert!(queries >= 1000.0, "claimed ≥ 1000 served queries, artifact says {queries}");
    assert!(doc.get("queries_per_sec").and_then(Json::as_num).unwrap() > 0.0);

    // The cache earned its keep: hits happened, the warm phase re-ran
    // nothing, and the barrier-synced burst collapsed many-to-one.
    let hit_rate = doc.get("cache_hit_rate").and_then(Json::as_num).unwrap();
    assert!(hit_rate > 0.0 && hit_rate < 1.0, "hit rate out of range: {hit_rate}");
    assert_eq!(doc.get("warm_sim_runs").and_then(Json::as_num), Some(0.0));
    let collapse = doc.get("burst_collapse_factor").and_then(Json::as_num).unwrap();
    assert!(collapse > 1.0, "burst collapse factor must exceed 1, got {collapse}");
    assert!(doc.get("dedup_collapsed").and_then(Json::as_num).unwrap() >= 1.0);

    // Cached or fresh, every byte matches the in-process answer.
    assert_eq!(doc.get("byte_identical"), Some(&Json::Bool(true)));

    // Latency percentiles are sane and the table covers all three phases.
    let p50 = doc.get("p50_us").and_then(Json::as_num).unwrap();
    let p99 = doc.get("p99_us").and_then(Json::as_num).unwrap();
    assert!(p50 > 0.0 && p99 >= p50, "p50 {p50} µs, p99 {p99} µs");
    let phases = doc.get("phases").expect("phase table present");
    let rows = phases.get("rows").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> =
        rows.iter().filter_map(Json::as_arr).map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(names, ["cold", "warm", "burst"]);
}

/// The overlap extension's artifact backs its claims: communication measured
/// in flight under compute, bit-identical losses, the structural deferral
/// counts, and wall-clock no worse than the single-core scheduler tax the
/// bench itself enforces (a strict win on multi-core hosts).
#[test]
fn ext_overlap_artifact_matches_its_claims() {
    let doc = parse(&results_dir().join("ext_overlap.json"));

    let frac = doc.get("overlap_fraction").and_then(Json::as_num).unwrap();
    assert!(frac > 0.0, "claimed overlap, artifact measured {frac}");
    assert_eq!(doc.get("losses_bit_identical"), Some(&Json::Bool(true)));

    // Deferred reduces shrink collective blocking time on any host.
    let blocked = doc.get("comm_blocked_speedup").and_then(Json::as_num).unwrap();
    assert!(blocked > 1.0, "wire blocking did not shrink: {blocked}×");

    // Wall-clock: strict win where there are cores to overlap on, bounded
    // scheduler tax where there are not (mirrors the bench's own gate).
    let speedup = doc.get("speedup").and_then(Json::as_num).unwrap();
    let cores = doc.get("cores").and_then(Json::as_num).unwrap();
    if cores > 1.0 {
        assert!(speedup >= 1.0, "multi-core artifact must show a wall-clock win: {speedup}×");
    } else {
        assert!(speedup >= 1.0 / 1.10, "single-core wall-clock regressed beyond tax: {speedup}×");
    }

    // One deferred reduce-scatter per non-final micro-step (fig15: accum 4).
    let deferred = doc.get("deferred_wire_ops").and_then(Json::as_arr).unwrap();
    assert_eq!(deferred.len(), 3, "deferral count must match the schedule structure");

    let lanes = doc.get("lanes").expect("lane table present");
    let headers = lanes.get("headers").and_then(Json::as_arr).unwrap();
    assert!(headers.iter().any(|h| h.as_str() == Some("overlap frac")));
    assert_eq!(lanes.get("rows").and_then(Json::as_arr).unwrap().len(), 2, "inline + async rows");

    // The simulator charges overlap for the same program.
    let sim = doc.get("sim").expect("sim cross-reference present");
    assert!(sim.get("overlappable_wire_ops").and_then(Json::as_num).unwrap() > 0.0);
    assert!(sim.get("charged_makespan_gain").and_then(Json::as_num).unwrap() > 0.0);
}

/// The Kernels-v2 microbenchmark artifact backs the acceptance claim the
/// bench itself asserts at generation time: on the SIMD host that produced
/// it, the v2 dispatch beats the v1 blocked kernels ≥ 2× on both GEMM
/// shapes of `matmul` and `matmul_bt`, and every variant column carries a
/// positive best-of-N timing for all six kernels.
#[test]
fn bench_kernels_artifact_matches_its_claims() {
    let doc = parse(&results_dir().join("BENCH_kernels.json"));
    let headers = doc.get("headers").and_then(Json::as_arr).unwrap();
    let col = |name: &str| {
        headers
            .iter()
            .position(|h| h.as_str() == Some(name))
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let (k_col, blocked_col) = (col("kernel"), col("speedup_simd_vs_blocked"));
    let timing_cols = [col("reference_ns"), col("blocked_ns"), col("simd_ns"), col("simd_mt_ns")];

    let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
    let mut kernels_seen = std::collections::BTreeSet::new();
    let mut gated_rows = 0;
    for row in rows.iter().filter_map(Json::as_arr) {
        let kernel = row[k_col].as_str().unwrap();
        kernels_seen.insert(kernel.to_string());
        for &c in &timing_cols {
            let ns: u64 = row[c].as_str().unwrap().parse().unwrap();
            assert!(ns > 0, "{kernel}: zero timing in column {c}");
        }
        if kernel == "matmul" || kernel == "matmul_bt" {
            let speedup: f64 = row[blocked_col].as_str().unwrap().parse().unwrap();
            assert!(speedup >= 2.0, "{kernel}: SIMD vs blocked {speedup}× < 2× in the artifact");
            gated_rows += 1;
        }
    }
    assert_eq!(gated_rows, 4, "two shapes each of matmul and matmul_bt must be gated");
    for want in ["matmul", "matmul_bt", "acc_matmul_at", "matvec_bias", "matvec_t", "acc_outer"] {
        assert!(kernels_seen.contains(want), "kernel {want} missing from the bench table");
    }
}

/// The isoFLOP-sweep artifact backs its claims: ≥ 3 budgets, each with a
/// U-shaped eval-loss curve (interior argmin in the rows *and* an interior
/// convex parabola minimum in the fit), budget-optimal size and tokens
/// growing as power laws with exponents in (0, 1) that sum to ≈ 1, schedule
/// agreement within tolerance, and positive measured kernel throughput.
#[test]
fn ext_sweep_artifact_matches_its_claims() {
    let doc = parse(&results_dir().join("ext_sweep.json"));

    let budgets = doc.get("budgets").and_then(Json::as_arr).unwrap();
    assert!(budgets.len() >= 3, "claimed ≥ 3 budgets, artifact has {}", budgets.len());

    // Re-derive the per-budget U-shape directly from the table rows: group
    // by the budget column, argmin of the MiCS eval loss strictly interior.
    let sweep = doc.get("sweep").expect("sweep table present");
    let headers = sweep.get("headers").and_then(Json::as_arr).unwrap();
    let col = |name: &str| headers.iter().position(|h| h.as_str() == Some(name)).unwrap();
    let (b_col, loss_col) = (col("budget_flops"), col("eval_loss_mics"));
    let rows = sweep.get("rows").and_then(Json::as_arr).unwrap();
    let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
    for row in rows.iter().filter_map(Json::as_arr) {
        let budget = row[b_col].as_str().unwrap().to_string();
        let loss: f64 = row[loss_col].as_str().unwrap().parse().unwrap();
        match curves.last_mut() {
            Some((b, losses)) if *b == budget => losses.push(loss),
            _ => curves.push((budget, vec![loss])),
        }
    }
    assert_eq!(curves.len(), budgets.len(), "rows must cover every budget contiguously");
    for (budget, losses) in &curves {
        assert!(losses.len() >= 4, "budget {budget}: needs a real size grid");
        let argmin = (0..losses.len()).min_by(|&i, &j| losses[i].total_cmp(&losses[j])).unwrap();
        assert!(
            argmin > 0 && argmin + 1 < losses.len(),
            "budget {budget}: eval-loss curve not U-shaped (argmin {argmin} of {losses:?})"
        );
    }

    // The fitted minima: interior, convex, and monotone in the budget.
    let fits = doc.get("fits").and_then(Json::as_arr).unwrap();
    assert_eq!(fits.len(), budgets.len());
    let mut last_n_opt = 0.0;
    for fit in fits {
        assert_eq!(fit.get("interior"), Some(&Json::Bool(true)));
        assert!(fit.get("curvature").and_then(Json::as_num).unwrap() > 0.0);
        let n_opt = fit.get("n_opt").and_then(Json::as_num).unwrap();
        assert!(n_opt > last_n_opt, "N_opt must grow with the budget");
        last_n_opt = n_opt;
        assert!(fit.get("d_opt").and_then(Json::as_num).unwrap() > 0.0);
    }

    let exp = doc.get("exponents").expect("exponents present");
    let alpha = exp.get("alpha").and_then(Json::as_num).unwrap();
    let beta = exp.get("beta").and_then(Json::as_num).unwrap();
    assert!(alpha > 0.0 && alpha < 1.0, "α = {alpha} outside (0, 1)");
    assert!(beta > 0.0 && beta < 1.0, "β = {beta} outside (0, 1)");
    assert!((alpha + beta - 1.0).abs() < 0.25, "α + β = {} far from 1", alpha + beta);

    let agreement = doc.get("schedule_agreement_max_rel").and_then(Json::as_num).unwrap();
    assert!(agreement < 5e-2, "schedule disagreement {agreement} over tolerance");
    assert!(doc.get("measured_gflops").and_then(Json::as_num).unwrap() > 0.0);
}
