//! Golden snapshots of the schedule IR, plus the cross-backend contract.
//!
//! The IR is the single lowering of the training step: strategies emit it,
//! and both backends consume it. Two properties pin that down here:
//!
//! 1. **Golden dumps** — [`StepProgram::dump`] is a stable text format; the
//!    MiCS / ZeRO-3 / DDP programs on small geometries are snapshotted under
//!    `tests/goldens/`. A drift in emission order, dependency edges, wire
//!    annotations or byte counts fails the diff. Regenerate intentionally
//!    with `MICS_UPDATE_GOLDENS=1 cargo test --test schedule_goldens`.
//! 2. **Cross-backend agreement** — for the minidl-shaped programs, the
//!    thread-rank interpreter must execute exactly the communication op
//!    sequence the simulator backend costs (compared per rank, in order).

use mics::cluster::{ClusterSpec, InstanceType, Rank};
use mics::core::ops::SimCluster;
use mics::core::schedule::{execute_on_sim, reshape, Geometry};
use mics::core::{dp_pipeline_program, dp_program};
use mics::core::{MicsConfig, Strategy, TrainingJob, ZeroStage};
use mics::minidl::scaler::LossScale;
use mics::minidl::train::{
    pipeline_step_program, step_program, step_spec_with_flops, train, train_pipeline,
    ScheduleHyper, SyncSchedule, TrainSetup,
};
use mics::minidl::Mlp;
use mics::model::{LayerSpec, WorkloadSpec};
use std::path::PathBuf;

/// A 4-layer toy transformer-shaped workload, small enough that every
/// strategy fits everywhere and the dumps stay readable.
fn tiny_workload() -> WorkloadSpec {
    let layer = LayerSpec {
        params: 1_000_000,
        fwd_flops: 1e9,
        bwd_flops: 2e9,
        recompute_flops: 1e9,
        checkpoint_bytes: 1 << 20,
        working_bytes: 1 << 20,
    };
    WorkloadSpec {
        name: "tiny-4l".into(),
        layers: vec![layer; 4],
        param_dtype_bytes: 2,
        activation_checkpointing: true,
        micro_batch: 4,
    }
}

fn job(nodes: usize, strategy: Strategy) -> TrainingJob {
    TrainingJob {
        workload: tiny_workload(),
        cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes),
        strategy,
        accum_steps: 2,
    }
}

fn check_golden(name: &str, actual: &str) {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.txt"));
    if std::env::var_os("MICS_UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {}: {e}; create it with MICS_UPDATE_GOLDENS=1", path.display())
    });
    assert_eq!(
        expected, actual,
        "schedule dump '{name}' drifted; if intended, regenerate with MICS_UPDATE_GOLDENS=1"
    );
}

#[test]
fn golden_mics_p8_two_nodes() {
    // 16 GPUs, partition groups of 8 → two-hop sync with replication
    // groups of 2 spanning the node boundary.
    let prog = dp_program(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
    check_golden("mics_p8_2x8", &prog.dump());
}

#[test]
fn golden_zero3_one_node() {
    let prog = dp_program(&job(1, Strategy::Zero(ZeroStage::Three))).unwrap();
    check_golden("zero3_1x8", &prog.dump());
}

#[test]
fn golden_ddp_one_node() {
    let prog = dp_program(&job(1, Strategy::Ddp)).unwrap();
    check_golden("ddp_1x8", &prog.dump());
}

#[test]
fn golden_mics_p8_pp2() {
    // The same two-node MiCS job as `golden_mics_p8_2x8`, but as one stage
    // of a 2-stage 1F1B pipeline: geometry dp=16 × pp=2, with explicit
    // StageSend/StageRecv boundary hops between the stage replicas.
    let prog =
        dp_pipeline_program(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8))), 2, 1 << 20)
            .unwrap();
    check_golden("mics_p8_pp2_2x16", &prog.dump());
}

#[test]
fn golden_reshape_twohop_shrink() {
    // Elastic shrink at the IR level: the MiCS two-hop minidl program
    // emitted at world=8 p=4, re-emitted by `reshape` for world=4 p=2.
    // The dump must equal a fresh emission at the destination geometry —
    // the schedule is a function of the geometry, nothing is baked in.
    let hp = ScheduleHyper {
        world: 8,
        partition_size: 4,
        accum_steps: 3,
        iterations: 2,
        lr: 0.02,
        quantize: false,
        loss_scale: LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 0,
    };
    let spec = step_spec_with_flops(&hp, SyncSchedule::TwoHop, 2_000, 0.0, 0.0);
    let old = Geometry::flat(8, 8, 4);
    let new = Geometry::flat(4, 4, 2);
    let prog = reshape(&spec, &old, &new);
    check_golden("reshape_twohop_8p4_to_4p2", &prog.dump());

    let mut fresh_hp = hp;
    fresh_hp.world = 4;
    fresh_hp.partition_size = 2;
    let fresh = step_program(&fresh_hp, SyncSchedule::TwoHop, 2_000);
    assert_eq!(prog.dump(), fresh.dump(), "reshape must equal a fresh emission");
}

/// The minidl interpreter and the simulator backend walk the same program;
/// per rank, the interpreter's executed wire ops must be exactly the
/// sim-costed wire ops whose group contains that rank, in program order.
#[test]
fn minidl_executes_the_op_sequence_the_sim_costs() {
    for (schedule, world, p) in [
        (SyncSchedule::Ddp, 4, 1),
        (SyncSchedule::PerMicroStepAllReduce, 4, 4),
        (SyncSchedule::TwoHop, 8, 4),
    ] {
        let model = Mlp::new(&[6, 12, 2]);
        let hp = ScheduleHyper {
            world,
            partition_size: p,
            accum_steps: 3,
            iterations: 2,
            lr: 0.02,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        };
        let prog = step_program(&hp, schedule, model.num_params());

        // Sim backend: all thread-ranks sit on one shared-memory "node".
        let mut inst = InstanceType::p3dn_24xlarge();
        inst.gpus_per_node = world;
        let mut sc = SimCluster::new(ClusterSpec::new(inst, 1));
        let exec = execute_on_sim(&prog, &mut sc, 1e12);

        // Real backend: thread-ranks over the actual dataplane.
        let setup = TrainSetup {
            model,
            world,
            partition_size: p,
            micro_batch: 4,
            accum_steps: 3,
            iterations: 2,
            lr: 0.02,
            seed: 7,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        };
        let out = train(&setup, schedule);

        let sim_rank0: Vec<usize> =
            exec.wire_ops.iter().copied().filter(|&id| prog.executes_wire(id, Rank(0))).collect();
        assert!(!sim_rank0.is_empty(), "{schedule:?}: no wire ops costed");
        assert_eq!(
            sim_rank0, out.wire_ops,
            "{schedule:?}: interpreter executed a different op sequence than the sim costed"
        );
    }
}

/// The same contract for the DP×PP 1F1B program: the simulator costs the
/// pipeline's StageSend/StageRecv hops and dp collectives through the same
/// `WireCollective` dispatch, and the pipeline engine must execute exactly
/// the rank-0 slice of that sequence.
#[test]
fn pipeline_minidl_executes_the_op_sequence_the_sim_costs() {
    let (dp, pp, accum) = (2, 2, 3);
    let model = Mlp::new(&[6, 10, 8, 7, 2]);
    let hp = ScheduleHyper {
        world: dp,
        partition_size: 1,
        accum_steps: accum,
        iterations: 2,
        lr: 0.02,
        quantize: false,
        loss_scale: LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 0,
    };
    let per = model.num_layers() / pp;
    let stage_numels: Vec<usize> =
        (0..pp).map(|s| model.stage_num_params(s * per, (s + 1) * per)).collect();
    let act_bytes = (1..pp).map(|s| model.boundary_dim(s * per)).max().unwrap() as u64 * 4 * 4;
    let prog = pipeline_step_program(&hp, SyncSchedule::Ddp, pp, &stage_numels, act_bytes);

    let mut inst = InstanceType::p3dn_24xlarge();
    inst.gpus_per_node = dp * pp;
    let mut sc = SimCluster::new(ClusterSpec::new(inst, 1));
    let exec = execute_on_sim(&prog, &mut sc, 1e12);

    let setup = TrainSetup {
        model,
        world: dp,
        partition_size: 1,
        micro_batch: 4,
        accum_steps: accum,
        iterations: 2,
        lr: 0.02,
        seed: 7,
        quantize: false,
        loss_scale: LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 0,
    };
    let out = train_pipeline(&setup, pp, SyncSchedule::Ddp);

    let sim_rank0: Vec<usize> =
        exec.wire_ops.iter().copied().filter(|&id| prog.executes_wire(id, Rank(0))).collect();
    assert!(!sim_rank0.is_empty(), "no pipeline wire ops costed");
    assert_eq!(
        sim_rank0, out.wire_ops,
        "pipeline interpreter executed a different op sequence than the sim costed"
    );
}
