//! Golden snapshots of the schedule IR, plus the cross-backend contract.
//!
//! The IR is the single lowering of the training step: strategies emit it,
//! and both backends consume it. Two properties pin that down here:
//!
//! 1. **Golden dumps** — [`StepProgram::dump`] is a stable text format; the
//!    MiCS / ZeRO-3 / DDP programs on small geometries are snapshotted under
//!    `tests/goldens/`. A drift in emission order, dependency edges, wire
//!    annotations or byte counts fails the diff. Regenerate intentionally
//!    with `MICS_UPDATE_GOLDENS=1 cargo test --test schedule_goldens`.
//! 2. **Cross-backend agreement** — for the minidl-shaped programs, the
//!    thread-rank interpreter must execute exactly the communication op
//!    sequence the simulator backend costs (compared per rank, in order).

use mics::cluster::{ClusterSpec, InstanceType, Rank};
use mics::core::dp_program;
use mics::core::ops::SimCluster;
use mics::core::schedule::execute_on_sim;
use mics::core::{MicsConfig, Strategy, TrainingJob, ZeroStage};
use mics::minidl::scaler::LossScale;
use mics::minidl::train::{step_program, train, ScheduleHyper, SyncSchedule, TrainSetup};
use mics::minidl::Mlp;
use mics::model::{LayerSpec, WorkloadSpec};
use std::path::PathBuf;

/// A 4-layer toy transformer-shaped workload, small enough that every
/// strategy fits everywhere and the dumps stay readable.
fn tiny_workload() -> WorkloadSpec {
    let layer = LayerSpec {
        params: 1_000_000,
        fwd_flops: 1e9,
        bwd_flops: 2e9,
        recompute_flops: 1e9,
        checkpoint_bytes: 1 << 20,
        working_bytes: 1 << 20,
    };
    WorkloadSpec {
        name: "tiny-4l".into(),
        layers: vec![layer; 4],
        param_dtype_bytes: 2,
        activation_checkpointing: true,
        micro_batch: 4,
    }
}

fn job(nodes: usize, strategy: Strategy) -> TrainingJob {
    TrainingJob {
        workload: tiny_workload(),
        cluster: ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes),
        strategy,
        accum_steps: 2,
    }
}

fn check_golden(name: &str, actual: &str) {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.txt"));
    if std::env::var_os("MICS_UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {}: {e}; create it with MICS_UPDATE_GOLDENS=1", path.display())
    });
    assert_eq!(
        expected, actual,
        "schedule dump '{name}' drifted; if intended, regenerate with MICS_UPDATE_GOLDENS=1"
    );
}

#[test]
fn golden_mics_p8_two_nodes() {
    // 16 GPUs, partition groups of 8 → two-hop sync with replication
    // groups of 2 spanning the node boundary.
    let prog = dp_program(&job(2, Strategy::Mics(MicsConfig::paper_defaults(8)))).unwrap();
    check_golden("mics_p8_2x8", &prog.dump());
}

#[test]
fn golden_zero3_one_node() {
    let prog = dp_program(&job(1, Strategy::Zero(ZeroStage::Three))).unwrap();
    check_golden("zero3_1x8", &prog.dump());
}

#[test]
fn golden_ddp_one_node() {
    let prog = dp_program(&job(1, Strategy::Ddp)).unwrap();
    check_golden("ddp_1x8", &prog.dump());
}

/// The minidl interpreter and the simulator backend walk the same program;
/// per rank, the interpreter's executed wire ops must be exactly the
/// sim-costed wire ops whose group contains that rank, in program order.
#[test]
fn minidl_executes_the_op_sequence_the_sim_costs() {
    for (schedule, world, p) in [
        (SyncSchedule::Ddp, 4, 1),
        (SyncSchedule::PerMicroStepAllReduce, 4, 4),
        (SyncSchedule::TwoHop, 8, 4),
    ] {
        let model = Mlp::new(&[6, 12, 2]);
        let hp = ScheduleHyper {
            world,
            partition_size: p,
            accum_steps: 3,
            iterations: 2,
            lr: 0.02,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        };
        let prog = step_program(&hp, schedule, model.num_params());

        // Sim backend: all thread-ranks sit on one shared-memory "node".
        let mut inst = InstanceType::p3dn_24xlarge();
        inst.gpus_per_node = world;
        let mut sc = SimCluster::new(ClusterSpec::new(inst, 1));
        let exec = execute_on_sim(&prog, &mut sc, 1e12);

        // Real backend: thread-ranks over the actual dataplane.
        let setup = TrainSetup {
            model,
            world,
            partition_size: p,
            micro_batch: 4,
            accum_steps: 3,
            iterations: 2,
            lr: 0.02,
            seed: 7,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        };
        let out = train(&setup, schedule);

        let sim_rank0: Vec<usize> = exec
            .wire_ops
            .iter()
            .copied()
            .filter(|&id| prog.wire_of(id).unwrap().group.contains(Rank(0), world, prog.p))
            .collect();
        assert!(!sim_rank0.is_empty(), "{schedule:?}: no wire ops costed");
        assert_eq!(
            sim_rank0, out.wire_ops,
            "{schedule:?}: interpreter executed a different op sequence than the sim costed"
        );
    }
}
