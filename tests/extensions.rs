//! Integration tests for features beyond the paper's evaluation: the
//! configuration auto-tuner (§7 future work), straggler isolation, traced
//! simulation, and the transformer-LM fidelity path.

use mics::cluster::{ClusterSpec, InstanceType, NodeId};
use mics::core::{
    simulate, simulate_dp_traced, tune, MicsConfig, Strategy, TrainingJob, ZeroStage,
};
use mics::minidl::{train_lm, LmSetup, LossScale, SyncSchedule, TinyTransformer};
use mics::model::TransformerConfig;

fn v100(nodes: usize) -> ClusterSpec {
    ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes)
}

fn throughput(cluster: &ClusterSpec, strategy: Strategy, s: usize) -> f64 {
    let job = TrainingJob {
        workload: TransformerConfig::bert_10b().workload(8),
        cluster: cluster.clone(),
        strategy,
        accum_steps: s,
    };
    simulate(&job).expect("fits").samples_per_sec
}

/// A degraded node hurts MiCS far less than ZeRO-3: small partition groups
/// keep most traffic off the slow NIC; cluster-wide collectives cannot.
#[test]
fn straggler_isolation() {
    let clean = v100(4);
    let slow = v100(4).with_slow_node(NodeId(3), 0.25);
    let mics = |c: &ClusterSpec| throughput(c, Strategy::Mics(MicsConfig::paper_defaults(8)), 8);
    let z3 = |c: &ClusterSpec| throughput(c, Strategy::Zero(ZeroStage::Three), 8);
    let mics_kept = mics(&slow) / mics(&clean);
    let z3_kept = z3(&slow) / z3(&clean);
    assert!(mics_kept > 0.75, "MiCS kept only {mics_kept:.2}");
    assert!(z3_kept < 0.60, "ZeRO-3 kept {z3_kept:.2} — should be dragged down");
    assert!(mics_kept > z3_kept + 0.2);
}

/// A straggler inside a partition group *does* hurt that group's gathers —
/// the isolation comes from the geometry, not magic.
#[test]
fn straggler_inside_the_partition_group_hurts() {
    let clean = v100(4);
    let slow = v100(4).with_slow_node(NodeId(0), 0.25);
    // p = 16: groups span 2 nodes; node 0's slowness taxes group 0's
    // gathers and everyone else through the barrier-free but shared
    // boundary synchronization.
    let t = |c: &ClusterSpec| throughput(c, Strategy::Mics(MicsConfig::paper_defaults(16)), 8);
    let kept = t(&slow) / t(&clean);
    assert!(kept < 0.85, "multi-node groups must feel an in-group straggler: {kept:.2}");
}

/// The tuner beats (or matches) every hand-picked configuration it
/// explored, by construction — and the report agrees with re-simulation.
#[test]
fn tuner_is_consistent_with_direct_simulation() {
    let cluster = v100(4);
    let w = TransformerConfig::bert_10b().workload(8);
    let result = tune(&w, &cluster, 4).unwrap();
    for c in &result.explored {
        if let Ok(r) = &c.outcome {
            assert!(result.report.samples_per_sec >= r.samples_per_sec - 1e-9);
        }
    }
    let direct = simulate(&TrainingJob {
        workload: w,
        cluster,
        strategy: Strategy::Mics(result.best.clone()),
        accum_steps: 4,
    })
    .unwrap();
    assert_eq!(direct.iter_time, result.report.iter_time, "deterministic replay");
}

/// Traced simulation returns a loadable-looking chrome trace with spans on
/// compute and communication streams, and identical timing to the untraced
/// run.
#[test]
fn traced_simulation_matches_untraced() {
    let job = TrainingJob {
        workload: TransformerConfig::bert_10b().workload(8),
        cluster: v100(2),
        strategy: Strategy::Mics(MicsConfig::paper_defaults(8)),
        accum_steps: 2,
    };
    let plain = simulate(&job).unwrap();
    let (traced, json) = simulate_dp_traced(&job).unwrap();
    assert_eq!(plain.iter_time, traced.iter_time);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"compute\""));
    assert!(json.contains("\"name\":\"transfer\""));
    assert!(json.contains("gather[0]"));
}

/// The transformer-LM fidelity path end-to-end: 8 thread-ranks, mixed
/// precision with dynamic loss scaling, clipping, MiCS vs DDP.
#[test]
fn transformer_lm_fidelity_end_to_end() {
    let cfg = LmSetup {
        model: TinyTransformer::new(7, 5, 8, 2, 12, 1),
        world: 8,
        partition_size: 2,
        micro_batch: 4,
        accum_steps: 2,
        iterations: 20,
        lr: 0.02,
        seed: 7,
        quantize: true,
        loss_scale: LossScale::Dynamic { init: 1024.0, growth_interval: 6 },
        clip_grad_norm: Some(5.0),
        comm_quant: None,
        prefetch_depth: 0,
    };
    let mics = train_lm(&cfg, SyncSchedule::TwoHop);
    let ddp = train_lm(&cfg, SyncSchedule::Ddp);
    assert_eq!(mics.skipped_steps, 0);
    for (i, (a, b)) in mics.losses.iter().zip(ddp.losses.iter()).enumerate() {
        assert!((a - b).abs() / a.abs().max(1e-9) < 5e-3, "iter {i}: {a} vs {b}");
    }
    assert!(*mics.losses.last().unwrap() < mics.losses[0] * 0.7);
}
