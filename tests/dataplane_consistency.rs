//! Cross-crate consistency: the chunk-layout math (`mics-collectives`), the
//! real data plane (`mics-dataplane`), and the sharding arithmetic
//! (`mics-tensor`) must agree with each other.

use mics::collectives::layout::flat_order;
use mics::collectives::HierarchicalLayout;
use mics::dataplane::hierarchical::split_hierarchical;
use mics::dataplane::{hierarchical_all_gather, naive_two_stage_all_gather, run_ranks};
use mics::tensor::ShardSpec;
use proptest::prelude::*;

/// The symbolic layout simulation and the real data plane must produce the
/// same chunk order for every geometry.
#[test]
fn symbolic_simulation_matches_real_dataplane() {
    for (nodes, k) in [(2usize, 2usize), (2, 4), (3, 2), (4, 4), (2, 8)] {
        let p = nodes * k;
        let layout = HierarchicalLayout::new(p, k).unwrap();
        // Symbolic.
        for rank in 0..p {
            assert_eq!(layout.simulate(rank), flat_order(p), "symbolic p={p} k={k}");
        }
        // Real buffers: rank r contributes chunk [r*2, r*2+1].
        let out = run_ranks(p, |mut comm| {
            let rank = comm.rank();
            let (channel, node) = split_hierarchical(&mut comm, &layout);
            hierarchical_all_gather(&channel, &node, &layout, &[rank as f32 * 2.0, rank as f32 * 2.0 + 1.0])
        });
        let expect: Vec<f32> = (0..2 * p).map(|x| x as f32).collect();
        for (r, o) in out.iter().enumerate() {
            assert_eq!(o, &expect, "dataplane p={p} k={k} rank={r}");
        }
    }
}

/// The naive (no re-arrangement) variant reproduces exactly the wrong order
/// the symbolic layout predicts — a bug and its model agreeing.
#[test]
fn naive_bug_matches_symbolic_prediction() {
    for (nodes, k) in [(2usize, 2usize), (2, 4), (4, 2)] {
        let p = nodes * k;
        let layout = HierarchicalLayout::new(p, k).unwrap();
        let out = run_ranks(p, |mut comm| {
            let rank = comm.rank();
            let (channel, node) = split_hierarchical(&mut comm, &layout);
            naive_two_stage_all_gather(&channel, &node, &layout, &[rank as f32])
        });
        for (rank, got) in out.iter().enumerate() {
            let predicted: Vec<f32> =
                layout.naive_concat_order(rank).iter().map(|&c| c as f32).collect();
            assert_eq!(got, &predicted, "p={p} k={k} rank={rank}");
        }
    }
}

/// ShardSpec's extract/assemble agrees with what a real all-gather of
/// per-rank shards produces.
#[test]
fn shard_spec_matches_all_gather_layout() {
    let numel = 37;
    let world = 5;
    let spec = ShardSpec::new(numel, world);
    let data: Vec<f32> = (0..numel).map(|i| (i as f32).cos()).collect();
    let data_ref = data.clone();
    let gathered = run_ranks(world, move |comm| {
        let shard = spec.extract_padded(&data_ref, comm.rank());
        comm.all_gather(&shard)
    });
    for g in gathered {
        assert_eq!(&g[..numel], &data[..], "padded all-gather must reassemble the buffer");
        assert!(g[numel..].iter().all(|&x| x == 0.0), "tail must be padding");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// reduce_scatter ∘ all_gather == all_reduce on real data, any world.
    #[test]
    fn reduce_scatter_all_gather_equals_all_reduce(world in 2usize..9, len in 1usize..6) {
        let n = world * len; // per-rank contribution divisible by world
        let via_pair = run_ranks(world, move |comm| {
            let v: Vec<f32> = (0..n).map(|i| ((comm.rank() * 83 + i) as f32).sin()).collect();
            let mine = comm.reduce_scatter(&v);
            comm.all_gather(&mine)
        });
        let via_ar = run_ranks(world, move |comm| {
            let v: Vec<f32> = (0..n).map(|i| ((comm.rank() * 83 + i) as f32).sin()).collect();
            comm.all_reduce(&v)
        });
        prop_assert_eq!(via_pair, via_ar);
    }

    /// Coalesced APIs are observationally equivalent to per-buffer calls for
    /// arbitrary batch shapes.
    #[test]
    fn coalesced_equivalence(world in 2usize..7, parts in 1usize..5, len in 1usize..5) {
        let coalesced = run_ranks(world, move |comm| {
            let bufs: Vec<Vec<f32>> = (0..parts)
                .map(|p| (0..len * world).map(|i| ((comm.rank() + p * 31 + i) as f32).cos()).collect())
                .collect();
            let refs: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();
            comm.reduce_scatter_coalesced(&refs)
        });
        let sequential = run_ranks(world, move |comm| {
            let bufs: Vec<Vec<f32>> = (0..parts)
                .map(|p| (0..len * world).map(|i| ((comm.rank() + p * 31 + i) as f32).cos()).collect())
                .collect();
            bufs.iter().map(|b| comm.reduce_scatter(b)).collect::<Vec<_>>()
        });
        prop_assert_eq!(coalesced, sequential);
    }
}
