//! Cross-crate consistency: the chunk-layout math (`mics-collectives`), the
//! real data plane (`mics-dataplane`), and the sharding arithmetic
//! (`mics-tensor`) must agree with each other — on **every transport**.
//!
//! Each scenario runs on both the shared-memory (thread) transport and the
//! socket transport (one framed hub connection per rank). The collectives'
//! folds are rank-side and the wire preserves `f32` bit patterns, so the two
//! transports must be observationally identical; these tests are the
//! enforcement of that claim.

use mics::collectives::layout::flat_order;
use mics::collectives::HierarchicalLayout;
use mics::dataplane::hierarchical::split_hierarchical;
use mics::dataplane::{
    hierarchical_all_gather, naive_two_stage_all_gather, run_ranks_on, try_run_ranks_on,
    with_deadline, CommError, TransportKind,
};
use mics::tensor::ShardSpec;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const BOTH: [TransportKind; 2] = [TransportKind::Local, TransportKind::Socket];

/// The symbolic layout simulation and the real data plane must produce the
/// same chunk order for every geometry, on either transport.
#[test]
fn symbolic_simulation_matches_real_dataplane() {
    for (nodes, k) in [(2usize, 2usize), (2, 4), (3, 2), (4, 4), (2, 8)] {
        let p = nodes * k;
        let layout = HierarchicalLayout::new(p, k).unwrap();
        // Symbolic.
        for rank in 0..p {
            assert_eq!(layout.simulate(rank), flat_order(p), "symbolic p={p} k={k}");
        }
        // Real buffers: rank r contributes chunk [r*2, r*2+1].
        for kind in BOTH {
            let out = run_ranks_on(kind, p, |mut comm| {
                let rank = comm.rank();
                let (channel, node) = split_hierarchical(&mut comm, &layout);
                hierarchical_all_gather(
                    &channel,
                    &node,
                    &layout,
                    &[rank as f32 * 2.0, rank as f32 * 2.0 + 1.0],
                )
            });
            let expect: Vec<f32> = (0..2 * p).map(|x| x as f32).collect();
            for (r, o) in out.iter().enumerate() {
                assert_eq!(o, &expect, "dataplane p={p} k={k} rank={r} transport={kind}");
            }
        }
    }
}

/// The naive (no re-arrangement) variant reproduces exactly the wrong order
/// the symbolic layout predicts — a bug and its model agreeing.
#[test]
fn naive_bug_matches_symbolic_prediction() {
    for (nodes, k) in [(2usize, 2usize), (2, 4), (4, 2)] {
        let p = nodes * k;
        let layout = HierarchicalLayout::new(p, k).unwrap();
        for kind in BOTH {
            let out = run_ranks_on(kind, p, |mut comm| {
                let rank = comm.rank();
                let (channel, node) = split_hierarchical(&mut comm, &layout);
                naive_two_stage_all_gather(&channel, &node, &layout, &[rank as f32])
            });
            for (rank, got) in out.iter().enumerate() {
                let predicted: Vec<f32> =
                    layout.naive_concat_order(rank).iter().map(|&c| c as f32).collect();
                assert_eq!(got, &predicted, "p={p} k={k} rank={rank} transport={kind}");
            }
        }
    }
}

/// ShardSpec's extract/assemble agrees with what a real all-gather of
/// per-rank shards produces.
#[test]
fn shard_spec_matches_all_gather_layout() {
    let numel = 37;
    let world = 5;
    let spec = ShardSpec::new(numel, world);
    let data: Vec<f32> = (0..numel).map(|i| (i as f32).cos()).collect();
    for kind in BOTH {
        let data_ref = data.clone();
        let gathered = run_ranks_on(kind, world, move |comm| {
            let shard = spec.extract_padded(&data_ref, comm.rank());
            comm.all_gather(&shard)
        });
        for g in gathered {
            assert_eq!(&g[..numel], &data[..], "padded all-gather must reassemble ({kind})");
            assert!(g[numel..].iter().all(|&x| x == 0.0), "tail must be padding ({kind})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// reduce_scatter ∘ all_gather == all_reduce on real data, any world,
    /// either transport.
    #[test]
    fn reduce_scatter_all_gather_equals_all_reduce(
        world in 2usize..9,
        len in 1usize..6,
        kind_idx in 0usize..2,
    ) {
        let kind = BOTH[kind_idx];
        let n = world * len; // per-rank contribution divisible by world
        let via_pair = run_ranks_on(kind, world, move |comm| {
            let v: Vec<f32> = (0..n).map(|i| ((comm.rank() * 83 + i) as f32).sin()).collect();
            let mine = comm.reduce_scatter(&v);
            comm.all_gather(&mine)
        });
        let via_ar = run_ranks_on(kind, world, move |comm| {
            let v: Vec<f32> = (0..n).map(|i| ((comm.rank() * 83 + i) as f32).sin()).collect();
            comm.all_reduce(&v)
        });
        prop_assert_eq!(via_pair, via_ar);
    }

    /// `split` under adversarial shapes: arbitrary color assignments
    /// (all-same, all-distinct, or anything between), worlds down to 1, and
    /// a second split nested inside the first. Membership and rank order
    /// must match the host-side computation every time, on both transports.
    #[test]
    fn repeated_splits_agree_with_host_side_membership(
        world in 1usize..8,
        colors in prop::collection::vec(0u8..4, 8usize),
        colors2 in prop::collection::vec(0u8..3, 8usize),
        kind_idx in 0usize..2,
    ) {
        let kind = BOTH[kind_idx];
        let c1 = colors[..world].to_vec();
        let c2 = colors2[..world].to_vec();
        let (k1, k2) = (c1.clone(), c2.clone());
        let out = run_ranks_on(kind, world, move |mut comm| {
            let rank = comm.rank();
            let mut g1 = comm.split(k1[rank] as i64, rank as i64);
            let first = g1.all_gather(&[rank as f32]);
            let g2 = g1.split(k2[rank] as i64, g1.rank() as i64);
            let second = g2.all_gather(&[rank as f32]);
            (first, second)
        });
        for rank in 0..world {
            let g1: Vec<usize> = (0..world).filter(|&r| c1[r] == c1[rank]).collect();
            let g2: Vec<usize> = g1.iter().copied().filter(|&r| c2[r] == c2[rank]).collect();
            let (first, second) = &out[rank];
            let want = |g: &[usize]| g.iter().map(|&r| r as f32).collect::<Vec<f32>>();
            prop_assert_eq!(first, &want(&g1), "first split, rank {}", rank);
            prop_assert_eq!(second, &want(&g2), "second split, rank {}", rank);
        }
    }

    /// Coalesced all-gather under adversarial batch shapes — empty batches,
    /// zero-length parts, uneven part sizes, world = 1 — always equals the
    /// per-buffer calls.
    #[test]
    fn coalesced_all_gather_adversarial_shapes(
        world in 1usize..7,
        lens in prop::collection::vec(0usize..5, 0usize..5),
        kind_idx in 0usize..2,
    ) {
        let kind = BOTH[kind_idx];
        let fill = |rank: usize, p: usize, len: usize| -> Vec<f32> {
            (0..len).map(|i| (rank * 101 + p * 13 + i) as f32).collect()
        };
        let l1 = lens.clone();
        let coalesced = run_ranks_on(kind, world, move |comm| {
            let bufs: Vec<Vec<f32>> =
                l1.iter().enumerate().map(|(p, &len)| fill(comm.rank(), p, len)).collect();
            let refs: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();
            comm.all_gather_coalesced(&refs)
        });
        let l2 = lens.clone();
        let sequential = run_ranks_on(kind, world, move |comm| {
            l2.iter()
                .enumerate()
                .map(|(p, &len)| comm.all_gather(&fill(comm.rank(), p, len)))
                .collect::<Vec<_>>()
        });
        prop_assert_eq!(coalesced, sequential);
    }

    /// Coalesced reduce-scatter with empty and uneven parts (lengths are
    /// arbitrary multiples of the world size, including zero), at any world
    /// size including 1.
    #[test]
    fn coalesced_reduce_scatter_adversarial_shapes(
        world in 1usize..7,
        ks in prop::collection::vec(0usize..4, 0usize..5),
        kind_idx in 0usize..2,
    ) {
        let kind = BOTH[kind_idx];
        let fill = |rank: usize, p: usize, len: usize| -> Vec<f32> {
            (0..len).map(|i| ((rank * 97 + p * 7 + i) as f32).sin()).collect()
        };
        let k1 = ks.clone();
        let coalesced = run_ranks_on(kind, world, move |comm| {
            let bufs: Vec<Vec<f32>> =
                k1.iter().enumerate().map(|(p, &k)| fill(comm.rank(), p, k * world)).collect();
            let refs: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();
            comm.reduce_scatter_coalesced(&refs)
        });
        let k2 = ks.clone();
        let sequential = run_ranks_on(kind, world, move |comm| {
            k2.iter()
                .enumerate()
                .map(|(p, &k)| comm.reduce_scatter(&fill(comm.rank(), p, k * world)))
                .collect::<Vec<_>>()
        });
        prop_assert_eq!(coalesced, sequential);
    }

    /// Coalesced APIs are observationally equivalent to per-buffer calls for
    /// arbitrary batch shapes.
    #[test]
    fn coalesced_equivalence(
        world in 2usize..7,
        parts in 1usize..5,
        len in 1usize..5,
        kind_idx in 0usize..2,
    ) {
        let kind = BOTH[kind_idx];
        let coalesced = run_ranks_on(kind, world, move |comm| {
            let bufs: Vec<Vec<f32>> = (0..parts)
                .map(|p| (0..len * world).map(|i| ((comm.rank() + p * 31 + i) as f32).cos()).collect())
                .collect();
            let refs: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();
            comm.reduce_scatter_coalesced(&refs)
        });
        let sequential = run_ranks_on(kind, world, move |comm| {
            let bufs: Vec<Vec<f32>> = (0..parts)
                .map(|p| (0..len * world).map(|i| ((comm.rank() + p * 31 + i) as f32).cos()).collect())
                .collect();
            bufs.iter().map(|b| comm.reduce_scatter(b)).collect::<Vec<_>>()
        });
        prop_assert_eq!(coalesced, sequential);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Abort path, both transports: an arbitrary rank dying mid-collective
    /// turns every survivor's collective into an error — never a hang, never
    /// a wrong result.
    #[test]
    fn prop_killed_rank_aborts_survivors(
        world in 2usize..6,
        killer_seed in 0usize..97,
        kind_idx in 0usize..2,
    ) {
        let kind = BOTH[kind_idx];
        let killer = killer_seed % world;
        with_deadline(Duration::from_secs(30), move || {
            let results = try_run_ranks_on(kind, world, move |c| {
                c.set_timeout(Duration::from_secs(5));
                if c.rank() == killer {
                    panic!("injected fault");
                }
                c.try_all_reduce(&[c.rank() as f32; 4])
            });
            for (rank, r) in results.iter().enumerate() {
                if rank == killer {
                    assert!(r.is_err(), "killer must be reported as panicked");
                    continue;
                }
                match r.as_ref().expect("survivors must not panic") {
                    Err(CommError::RankFailed { .. }) | Err(CommError::PeerDisconnected { .. }) => {}
                    other => panic!(
                        "survivor {rank} must observe the fault on {kind}, got {other:?}"
                    ),
                }
            }
        });
    }

    /// Deadline path, both transports: a rank that silently never joins is
    /// detected by the rendezvous timeout within a bounded wall-clock time,
    /// on the world group and on a split sub-group alike.
    #[test]
    fn prop_absent_rank_is_detected_within_deadline(
        world in 2usize..6,
        absent_seed in 0usize..97,
        split_seed in 0usize..2,
        kind_idx in 0usize..2,
    ) {
        let kind = BOTH[kind_idx];
        let split_first = split_seed == 1;
        let absent = absent_seed % world;
        with_deadline(Duration::from_secs(30), move || {
            let started = Instant::now();
            let results = try_run_ranks_on(kind, world, move |mut c| {
                c.set_timeout(Duration::from_millis(250));
                // The split is itself collective, so the absentee takes part
                // in it — the same-color sub-group still contains the rank
                // that is about to walk away, and its gather must time out.
                let group = split_first.then(|| c.split(0, c.rank() as i64));
                if c.rank() == absent {
                    return None; // walks away without panicking
                }
                Some(match &group {
                    Some(g) => g.try_all_gather(&[1.0]),
                    None => c.try_all_gather(&[1.0]),
                })
            });
            for (rank, r) in results.into_iter().enumerate() {
                let r = r.expect("no panics in this scenario");
                if rank == absent {
                    assert!(r.is_none());
                    continue;
                }
                match r.expect("present ranks return Some") {
                    Err(CommError::Timeout { .. }) => {}
                    other => panic!("rank {rank} must time out on {kind}, got {other:?}"),
                }
            }
            let elapsed = started.elapsed();
            assert!(
                elapsed < Duration::from_secs(20),
                "detection must be bounded, took {elapsed:?}"
            );
        });
    }
}
