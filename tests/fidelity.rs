//! End-to-end fidelity (paper §5.4): real sharded training under every
//! synchronization schedule converges identically — the integration-level
//! version of Figure 15 — and kill-and-resume through the resharding
//! checkpoint is bit-exact, the training-loop half of the recovery story
//! (`mics-core::recovery` costs it; this proves it loses nothing).

use mics::minidl::checkpoint::{load, save, TrainState};
use mics::minidl::data::TeacherDataset;
use mics::minidl::train::ScheduleHyper;
use mics::minidl::{
    resume_from, train, train_resumable, CheckpointSink, LossScale, Mlp, SyncSchedule,
    TrainCheckpoint, TrainSetup,
};

fn setup(world: usize, p: usize, s: usize, iters: usize) -> TrainSetup {
    TrainSetup {
        model: Mlp::new(&[10, 20, 20, 4]),
        world,
        partition_size: p,
        micro_batch: 6,
        accum_steps: s,
        iterations: iters,
        lr: 0.015,
        seed: 99,
        quantize: false,
        loss_scale: mics::minidl::LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 0,
    }
}

/// All three schedules track each other within floating-point reordering
/// noise across a long run, and all converge.
#[test]
fn long_run_loss_curves_coincide() {
    let cfg = setup(8, 4, 3, 30);
    let ddp = train(&cfg, SyncSchedule::Ddp);
    let zero3 = train(&cfg, SyncSchedule::PerMicroStepAllReduce);
    let mics = train(&cfg, SyncSchedule::TwoHop);
    for i in 0..cfg.iterations {
        let a = ddp.losses[i];
        for (name, b) in [("zero3", zero3.losses[i]), ("mics", mics.losses[i])] {
            assert!(
                (a - b).abs() / a.abs().max(1e-9) < 5e-3,
                "iteration {i}: ddp {a} vs {name} {b}"
            );
        }
    }
    assert!(*mics.losses.last().unwrap() < mics.losses[0] * 0.5, "must converge");
}

/// Changing the partition group size must not change what MiCS computes —
/// only how it communicates. (Partitioning is numerically transparent.)
#[test]
fn partition_size_is_numerically_transparent() {
    let base = train(&setup(8, 1, 2, 12), SyncSchedule::TwoHop);
    for p in [2usize, 4, 8] {
        let other = train(&setup(8, p, 2, 12), SyncSchedule::TwoHop);
        for (i, (a, b)) in base.losses.iter().zip(other.losses.iter()).enumerate() {
            assert!((a - b).abs() / a.abs().max(1e-9) < 5e-3, "p={p} iteration {i}: {a} vs {b}");
        }
    }
}

/// The world size changes the global batch (more ranks = more data per
/// step), so different world sizes legitimately give different curves —
/// but every world size must converge under 2-hop.
#[test]
fn two_hop_converges_at_every_world_size() {
    for world in [1usize, 2, 4, 8] {
        let p = world.min(2);
        let out = train(&setup(world, p, 2, 15), SyncSchedule::TwoHop);
        assert!(*out.losses.last().unwrap() < out.losses[0], "world={world} did not improve");
    }
}

/// Gradient-accumulation depth interacts correctly with both hops: deeper
/// accumulation (same data per step via fewer iterations) still converges
/// and the boundary all-reduce fires once per optimizer step.
#[test]
fn accumulation_depths_all_converge() {
    for s in [1usize, 2, 4, 8] {
        let out = train(&setup(4, 2, s, 12), SyncSchedule::TwoHop);
        assert!(
            *out.losses.last().unwrap() < out.losses[0] * 0.9,
            "s={s}: {:?}",
            (out.losses[0], out.losses.last())
        );
    }
}

/// Scaffolding for the kill-and-resume tests: a model + dataset grad_fn
/// equivalent to what [`train`] builds internally, but visible to the test
/// so a fault can be injected into it.
struct Rig {
    hp: ScheduleHyper,
    init: Vec<f32>,
    model: Mlp,
    dataset: TeacherDataset,
    micro_batch: usize,
}

fn rig(world: usize, p: usize, iters: usize) -> Rig {
    let model = Mlp::new(&[10, 20, 4]);
    let seed = 4242u64;
    Rig {
        hp: ScheduleHyper {
            world,
            partition_size: p,
            accum_steps: 2,
            iterations: iters,
            lr: 0.015,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        },
        init: model.init_params(seed),
        dataset: TeacherDataset::new(&[10, 8, 4], seed ^ 0x51ab_0c1d_22ee_9f73),
        model,
        micro_batch: 6,
    }
}

impl Rig {
    fn grad(&self) -> impl Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync + '_ {
        move |params, iter, micro, rank| {
            let (xs, ys) = self.dataset.micro_batch(iter, micro, rank, self.micro_batch);
            self.model.loss_and_grad(params, &xs, &ys)
        }
    }
}

/// Round-trip a checkpoint through the sharded binary format: serialize as
/// `p` per-rank shard blobs, decode, reassemble — what a real job writes at
/// one cluster shape and reads back at another.
fn through_shard_blobs(ckpt: &TrainCheckpoint, p: usize) -> TrainCheckpoint {
    let numel = ckpt.state.params.len();
    let blobs: Vec<Vec<u8>> = ckpt.state.shard(p).iter().map(save).collect();
    let decoded: Vec<TrainState> =
        blobs.iter().map(|b| load(b).expect("blob must decode")).collect();
    TrainCheckpoint {
        state: TrainState::unshard(&decoded, numel),
        iterations_done: ckpt.iterations_done,
        scaler: ckpt.scaler,
    }
}

/// The tentpole robustness claim, training-loop half: kill a rank mid-run
/// (after a checkpoint was taken), resume from the checkpoint, and the
/// resumed losses and final parameters are **bit-exact** equal to an
/// uninterrupted run. The checkpoint travels through the sharded binary
/// format on the way back in.
#[test]
fn killed_run_resumes_bit_exact_from_checkpoint() {
    let r = rig(4, 2, 12);
    let uninterrupted =
        mics::minidl::train::train_generic(&r.hp, SyncSchedule::TwoHop, r.init.clone(), r.grad());

    // Same run, but rank 1 dies at iteration 8 — after the iteration-5
    // snapshot, losing the work since. The surviving ranks abort their
    // collectives instead of hanging (dataplane failure detection), so the
    // whole run fails fast.
    let sink = CheckpointSink::new();
    let grad = r.grad();
    let killer = |params: &[f32], iter: usize, micro: usize, rank: usize| {
        assert!(iter < 8 || rank != 1, "rank 1 must be dead by iteration 8");
        if iter == 8 && rank == 1 {
            panic!("injected node loss at iteration {iter}");
        }
        grad(params, iter, micro, rank)
    };
    let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        train_resumable(&r.hp, SyncSchedule::TwoHop, r.init.clone(), killer, 5, &sink)
    }));
    assert!(died.is_err(), "the killed run must not complete");

    // The snapshot survived the crash; resume and compare the tail.
    let ckpt = sink.take().expect("checkpoint must survive the kill");
    assert_eq!(ckpt.iterations_done, 5);
    let ckpt = through_shard_blobs(&ckpt, 2);
    let resumed = resume_from(&r.hp, SyncSchedule::TwoHop, &ckpt, r.grad());
    assert_eq!(resumed.losses, uninterrupted.losses[5..], "loss tail must be bit-exact");
    assert_eq!(resumed.final_params, uninterrupted.final_params, "params must be bit-exact");
}

/// MiCS moving between cluster shapes: a checkpoint taken at partition size
/// 4 resumes at partition size 2 through [`TrainState::reshard`]. Under the
/// per-micro-step all-reduce schedule the partition size only changes how
/// state is laid out — never what is computed — so the resumed run is
/// bit-exact against the uninterrupted p=4 run.
#[test]
fn resharded_resume_is_bit_exact() {
    let r4 = rig(4, 4, 10);
    let uninterrupted = mics::minidl::train::train_generic(
        &r4.hp,
        SyncSchedule::PerMicroStepAllReduce,
        r4.init.clone(),
        r4.grad(),
    );

    let sink = CheckpointSink::new();
    let full = train_resumable(
        &r4.hp,
        SyncSchedule::PerMicroStepAllReduce,
        r4.init.clone(),
        r4.grad(),
        4,
        &sink,
    );
    assert_eq!(full, uninterrupted, "taking a snapshot must not perturb training");

    // 4-way shard blobs from the old shape, resharded to the new one.
    let ckpt = sink.take().unwrap();
    let numel = ckpt.state.params.len();
    let old_blobs: Vec<Vec<u8>> = ckpt.state.shard(4).iter().map(save).collect();
    let old_shards: Vec<TrainState> = old_blobs.iter().map(|b| load(b).unwrap()).collect();
    let new_shards = TrainState::reshard(&old_shards, numel, 2);
    let ckpt2 = TrainCheckpoint {
        state: TrainState::unshard(&new_shards, numel),
        iterations_done: ckpt.iterations_done,
        scaler: ckpt.scaler,
    };

    let mut r2 = rig(4, 2, 10);
    r2.hp.partition_size = 2;
    let resumed = resume_from(&r2.hp, SyncSchedule::PerMicroStepAllReduce, &ckpt2, r2.grad());
    assert_eq!(resumed.losses, uninterrupted.losses[4..]);
    assert_eq!(resumed.final_params, uninterrupted.final_params);
}

/// Quantized communication (PR 2 tentpole, §5.4 analogue): int8 block
/// quantization on both the weight gathers and the 2-hop gradient sync
/// perturbs each iteration's loss only within a small relative tolerance of
/// the exact-wire baseline — and the run still converges.
#[test]
fn int8_quantized_two_hop_tracks_exact_baseline() {
    use mics::minidl::{CompressionConfig, QuantScheme};
    let cfg = setup(4, 2, 2, 15);
    let exact = train(&cfg, SyncSchedule::TwoHop);
    let mut q = setup(4, 2, 2, 15);
    q.comm_quant = Some(CompressionConfig::both(QuantScheme::int8()));
    let quantized = train(&q, SyncSchedule::TwoHop);
    for (i, (a, b)) in exact.losses.iter().zip(quantized.losses.iter()).enumerate() {
        assert!((a - b).abs() / a.abs().max(1e-9) < 0.05, "iteration {i}: exact {a} vs int8 {b}");
    }
    assert!(
        *quantized.losses.last().unwrap() < quantized.losses[0] * 0.8,
        "int8 comm must still converge: {:?}",
        (quantized.losses[0], quantized.losses.last())
    );
}

/// The f16 passthrough scheme is bit-exact on wires that already carry f16
/// casts: with mixed precision on, compressing the weight gathers to f16
/// changes nothing at all.
#[test]
fn f16_passthrough_weight_gather_is_bit_exact() {
    use mics::minidl::{CompressionConfig, QuantScheme};
    let mut cfg = setup(4, 2, 2, 10);
    cfg.quantize = true;
    let exact = train(&cfg, SyncSchedule::TwoHop);
    let mut f16 = cfg.clone();
    f16.comm_quant = Some(CompressionConfig::weights_only(QuantScheme::F16));
    let compressed = train(&f16, SyncSchedule::TwoHop);
    assert_eq!(compressed.losses, exact.losses, "f16 wire must be lossless here");
    assert_eq!(compressed.final_params, exact.final_params);
}

/// Mixed precision (f16 parameter casts) degrades losses only slightly and
/// identically across schedules — quantization must commute with sharding.
#[test]
fn quantization_commutes_with_sharding() {
    let mut cfg = setup(4, 2, 2, 15);
    cfg.quantize = true;
    let mics = train(&cfg, SyncSchedule::TwoHop);
    let zero3 = train(&cfg, SyncSchedule::PerMicroStepAllReduce);
    for (i, (a, b)) in mics.losses.iter().zip(zero3.losses.iter()).enumerate() {
        assert!((a - b).abs() / a.abs().max(1e-9) < 5e-3, "iteration {i}: {a} vs {b}");
    }
    assert!(*mics.losses.last().unwrap() < mics.losses[0] * 0.7);
}
