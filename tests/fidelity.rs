//! End-to-end fidelity (paper §5.4): real sharded training under every
//! synchronization schedule converges identically — the integration-level
//! version of Figure 15.

use mics::minidl::{train, Mlp, SyncSchedule, TrainSetup};

fn setup(world: usize, p: usize, s: usize, iters: usize) -> TrainSetup {
    TrainSetup {
        model: Mlp::new(&[10, 20, 20, 4]),
        world,
        partition_size: p,
        micro_batch: 6,
        accum_steps: s,
        iterations: iters,
        lr: 0.015,
        seed: 99,
        quantize: false,
        loss_scale: mics::minidl::LossScale::None,
        clip_grad_norm: None,
    }
}

/// All three schedules track each other within floating-point reordering
/// noise across a long run, and all converge.
#[test]
fn long_run_loss_curves_coincide() {
    let cfg = setup(8, 4, 3, 30);
    let ddp = train(&cfg, SyncSchedule::Ddp);
    let zero3 = train(&cfg, SyncSchedule::PerMicroStepAllReduce);
    let mics = train(&cfg, SyncSchedule::TwoHop);
    for i in 0..cfg.iterations {
        let a = ddp.losses[i];
        for (name, b) in [("zero3", zero3.losses[i]), ("mics", mics.losses[i])] {
            assert!(
                (a - b).abs() / a.abs().max(1e-9) < 5e-3,
                "iteration {i}: ddp {a} vs {name} {b}"
            );
        }
    }
    assert!(*mics.losses.last().unwrap() < mics.losses[0] * 0.5, "must converge");
}

/// Changing the partition group size must not change what MiCS computes —
/// only how it communicates. (Partitioning is numerically transparent.)
#[test]
fn partition_size_is_numerically_transparent() {
    let base = train(&setup(8, 1, 2, 12), SyncSchedule::TwoHop);
    for p in [2usize, 4, 8] {
        let other = train(&setup(8, p, 2, 12), SyncSchedule::TwoHop);
        for (i, (a, b)) in base.losses.iter().zip(other.losses.iter()).enumerate() {
            assert!(
                (a - b).abs() / a.abs().max(1e-9) < 5e-3,
                "p={p} iteration {i}: {a} vs {b}"
            );
        }
    }
}

/// The world size changes the global batch (more ranks = more data per
/// step), so different world sizes legitimately give different curves —
/// but every world size must converge under 2-hop.
#[test]
fn two_hop_converges_at_every_world_size() {
    for world in [1usize, 2, 4, 8] {
        let p = world.min(2);
        let out = train(&setup(world, p, 2, 15), SyncSchedule::TwoHop);
        assert!(
            *out.losses.last().unwrap() < out.losses[0],
            "world={world} did not improve"
        );
    }
}

/// Gradient-accumulation depth interacts correctly with both hops: deeper
/// accumulation (same data per step via fewer iterations) still converges
/// and the boundary all-reduce fires once per optimizer step.
#[test]
fn accumulation_depths_all_converge() {
    for s in [1usize, 2, 4, 8] {
        let out = train(&setup(4, 2, s, 12), SyncSchedule::TwoHop);
        assert!(
            *out.losses.last().unwrap() < out.losses[0] * 0.9,
            "s={s}: {:?}",
            (out.losses[0], out.losses.last())
        );
    }
}

/// Mixed precision (f16 parameter casts) degrades losses only slightly and
/// identically across schedules — quantization must commute with sharding.
#[test]
fn quantization_commutes_with_sharding() {
    let mut cfg = setup(4, 2, 2, 15);
    cfg.quantize = true;
    let mics = train(&cfg, SyncSchedule::TwoHop);
    let zero3 = train(&cfg, SyncSchedule::PerMicroStepAllReduce);
    for (i, (a, b)) in mics.losses.iter().zip(zero3.losses.iter()).enumerate() {
        assert!((a - b).abs() / a.abs().max(1e-9) < 5e-3, "iteration {i}: {a} vs {b}");
    }
    assert!(*mics.losses.last().unwrap() < mics.losses[0] * 0.7);
}
