//! Integration tests pinning the paper's quantitative claims, section by
//! section, against the full simulation stack.

use mics::cluster::{ClusterSpec, InstanceType};
use mics::collectives::bandwidth::{effective_all_gather_bw, NetParams};
use mics::collectives::cost::{all_gather_flat, all_gather_hierarchical};
use mics::core::{simulate, MicsConfig, Strategy, TrainingJob, ZeroStage};
use mics::model::TransformerConfig;

fn v100(nodes: usize) -> ClusterSpec {
    ClusterSpec::new(InstanceType::p3dn_24xlarge(), nodes)
}

fn job(model: &TransformerConfig, nodes: usize, strategy: Strategy, s: usize) -> TrainingJob {
    TrainingJob { workload: model.workload(8), cluster: v100(nodes), strategy, accum_steps: s }
}

fn throughput(model: &TransformerConfig, nodes: usize, strategy: Strategy, s: usize) -> f64 {
    simulate(&job(model, nodes, strategy, s)).expect("must fit").samples_per_sec
}

/// §1 / §5.1.1: on 100 Gbps V100 clusters the system throughput of MiCS is
/// a large multiple of DeepSpeed ZeRO-3's (paper: up to 2.82×).
#[test]
fn headline_mics_vs_zero3_speedup() {
    let model = TransformerConfig::bert_10b();
    let mics = throughput(&model, 16, Strategy::Mics(MicsConfig::paper_defaults(8)), 8);
    let zero3 = throughput(&model, 16, Strategy::Zero(ZeroStage::Three), 8);
    let ratio = mics / zero3;
    assert!((1.7..3.5).contains(&ratio), "MiCS/ZeRO-3 = {ratio:.2}, paper ≈ 2.2–2.9");
}

/// §5.1.1: MiCS achieves near-linear strong scaling — efficiency vs the
/// smallest runnable cluster stays above 90% out to 128 GPUs.
#[test]
fn near_linear_strong_scaling() {
    let model = TransformerConfig::bert_10b();
    let strategy = || Strategy::Mics(MicsConfig::paper_defaults(8));
    let t16 = throughput(&model, 2, strategy(), 64);
    let t128 = throughput(&model, 16, strategy(), 8);
    let eff = (t128 / 8.0) / t16;
    assert!(eff > 0.90, "scaling efficiency 16→128 GPUs = {eff:.3}");
}

/// §2.3 / Figure 1: for a fixed 128 MB message, effective bandwidth decays
/// monotonically with node count; large messages approach line rate.
#[test]
fn figure1_effective_bandwidth_shape() {
    let net = NetParams::from_instance(&InstanceType::p3dn_24xlarge());
    let mut prev = f64::INFINITY;
    for nodes in [2usize, 4, 8, 16, 32] {
        let bw = effective_all_gather_bw(nodes * 8, 8, 128 << 20, &net);
        assert!(bw < prev, "{nodes} nodes: {bw:.2e}");
        prev = bw;
    }
    let big = effective_all_gather_bw(16, 8, 4096 << 20, &net);
    assert!(big > 0.95 * net.nic_bw, "4 GiB messages should saturate: {big:.2e}");
}

/// §3.2: B_part/B_all cost-ratio bound — gathering within one node can be
/// an order of magnitude cheaper than across 8 nodes (paper: up to 11.6×).
#[test]
fn partition_cost_ratio_bound() {
    let net = NetParams::from_instance(&InstanceType::p3dn_24xlarge());
    let b_part = effective_all_gather_bw(8, 8, 512 << 20, &net);
    let b_all = effective_all_gather_bw(64, 8, 512 << 20, &net);
    let ratio = b_part / b_all;
    assert!((8.0..16.0).contains(&ratio), "B_part/B_all = {ratio:.1}");
}

/// §3.3: hierarchical communication reduces inter-node volume by
/// (p−1)/(p−k); for k = 8 and 8 ≤ p ≤ 64 that's an 11.1%–46.6% reduction.
#[test]
fn hierarchical_volume_reduction_range() {
    let net = NetParams::from_instance(&InstanceType::p3dn_24xlarge());
    let m = 256u64 << 20;
    let reduction = |p: usize| {
        let flat = all_gather_flat(p, 8, m, &net).nic_bytes() as f64;
        let hier = all_gather_hierarchical(p, 8, m, &net, true).unwrap().nic_bytes() as f64;
        1.0 - hier / flat
    };
    assert!((reduction(16) - 0.466).abs() < 0.01);
    assert!((reduction(64) - 0.111).abs() < 0.01);
}

/// §5.1.1: ZeRO-2's replicated parameters make it OOM where MiCS runs.
#[test]
fn zero2_oom_where_mics_fits() {
    let model = TransformerConfig::bert_15b();
    let j = TrainingJob {
        workload: model.workload(4),
        cluster: v100(4),
        strategy: Strategy::Zero(ZeroStage::Two),
        accum_steps: 4,
    };
    assert!(simulate(&j).is_err(), "ZeRO-2 must OOM for 15B");
    let t = throughput(&model, 4, Strategy::Mics(MicsConfig::paper_defaults(16)), 4);
    assert!(t > 0.0);
}

/// §5.1.1: BERT 20B on a 16-GPU partition group must automatically disable
/// the hierarchical all-gather's staging buffers (memory constraint) and
/// still run — this is the paper's super-linear-scaling anecdote.
#[test]
fn bert20b_hierarchical_fallback() {
    let model = TransformerConfig::bert_20b();
    let j = job(&model, 2, Strategy::Mics(MicsConfig::paper_defaults(16)), 4);
    let r = simulate(&j).unwrap();
    assert!(!r.hierarchical_used, "staging buffers must not fit at 16 GPUs");
    // On 4+ nodes the same configuration re-enables it (same memory — the
    // buffers are cluster-size independent — but the paper's point is that
    // the *group* memory margin governs, which our model reproduces at the
    // group level, so it stays disabled for p=16 everywhere on V100).
    let model15 = TransformerConfig::bert_15b();
    let r15 =
        simulate(&job(&model15, 2, Strategy::Mics(MicsConfig::paper_defaults(16)), 4)).unwrap();
    assert!(r15.hierarchical_used, "15B keeps hierarchical staging");
}

/// §5.2.1 / Figure 11: throughput trends down as the partition group grows.
#[test]
fn partition_group_size_trend() {
    let model = TransformerConfig::bert_10b();
    let thr: Vec<f64> = [8usize, 16, 32, 64]
        .iter()
        .map(|&p| throughput(&model, 8, Strategy::Mics(MicsConfig::paper_defaults(p)), 16))
        .collect();
    // Non-increasing within 1% slack, with a real drop from first to last.
    for w in thr.windows(2) {
        assert!(w[1] <= w[0] * 1.01, "trend violated: {thr:?}");
    }
    assert!(thr[0] / thr[3] > 1.15, "p=8 vs p=64 ratio {:.2}", thr[0] / thr[3]);
}

/// §5.2.3 / Figure 13: the 2-hop gain grows with cluster size (paper: 11%
/// at 16 GPUs → 24.9% at 128 GPUs).
#[test]
fn two_hop_gain_grows_with_scale() {
    let model = TransformerConfig::bert_10b();
    let gain = |nodes: usize, s: usize| {
        let on = throughput(&model, nodes, Strategy::Mics(MicsConfig::paper_defaults(8)), s);
        let mut cfg = MicsConfig::paper_defaults(8);
        cfg.two_hop_sync = false;
        let off = throughput(&model, nodes, Strategy::Mics(cfg), s);
        on / off - 1.0
    };
    let g16 = gain(2, 64);
    let g128 = gain(16, 8);
    assert!(g16 > 0.05, "gain at 16 GPUs = {g16:.3}");
    assert!(g128 > g16, "gain must grow with scale: {g128:.3} vs {g16:.3}");
    assert!((0.08..0.45).contains(&g128), "gain at 128 GPUs = {g128:.3}, paper 24.9%");
}

/// §5.3 / Figure 14: implementation optimizations alone (MiCS(ZeRO-3)) beat
/// DeepSpeed ZeRO-3 by roughly the paper's 54% at 128 GPUs, and full MiCS
/// adds a further communication-scale gain on top.
#[test]
fn figure14_ordering() {
    let model = TransformerConfig::bert_10b();
    let ds = throughput(&model, 16, Strategy::Zero(ZeroStage::Three), 8);
    let z3opt = throughput(&model, 16, Strategy::Mics(MicsConfig::zero3_with_impl_opts(128)), 8);
    let full = throughput(&model, 16, Strategy::Mics(MicsConfig::paper_defaults(8)), 8);
    let impl_gain = z3opt / ds - 1.0;
    assert!((0.15..0.95).contains(&impl_gain), "impl gain {impl_gain:.2}, paper 0.54");
    assert!(full > z3opt * 1.15, "scale reduction must add further gain");
}

/// §5.1.2 / Figure 9: on 400 Gbps A100 clusters MiCS still wins but by less
/// than on 100 Gbps (faster networks mitigate communication overheads).
#[test]
fn faster_network_shrinks_the_gap() {
    let model = TransformerConfig::bert_15b();
    let a100 = ClusterSpec::new(InstanceType::p4d_24xlarge(), 4);
    // Paper defaults: global batch 8192 → s = 32 at 32 GPUs.
    let gap_a100 = {
        let mk = |s: Strategy| TrainingJob {
            workload: model.workload(8),
            cluster: a100.clone(),
            strategy: s,
            accum_steps: 32,
        };
        // Same partition group size as the V100 run below, isolating the
        // network-speed effect (on A100 the model would also fit p = 8,
        // which is a *memory* advantage, not a network one).
        simulate(&mk(Strategy::Mics(MicsConfig::paper_defaults(16)))).unwrap().samples_per_sec
            / simulate(&mk(Strategy::Zero(ZeroStage::Three))).unwrap().samples_per_sec
    };
    let gap_v100 = {
        let mics = throughput(&model, 4, Strategy::Mics(MicsConfig::paper_defaults(16)), 32);
        let z3 = throughput(&model, 4, Strategy::Zero(ZeroStage::Three), 32);
        mics / z3
    };
    assert!(gap_a100 > 1.35, "A100 gap {gap_a100:.2}, paper up to 2.21×");
    assert!(gap_v100 > gap_a100, "100 Gbps gap {gap_v100:.2} must exceed {gap_a100:.2}");
}
