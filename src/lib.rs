//! # MiCS — Minimizing Communication Scale, reproduced in Rust
//!
//! A full-system reproduction of *"MiCS: Near-linear Scaling for Training
//! Gigantic Model on Public Cloud"* (VLDB 2022). MiCS trains
//! multi-billion-parameter models with pure data parallelism by sharding
//! model states inside small **partition groups** instead of across the
//! whole cluster, gathering parameters **hierarchically** across the
//! cloud's heterogeneous network, and synchronizing gradients with a
//! **2-hop** schedule that amortizes global synchronization over the
//! gradient-accumulation window.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`trace`] | typed trace/metrics layer: spans, counters, instants, Trace Event Format writer |
//! | [`simnet`] | deterministic discrete-event simulator (streams, events, fluid-shared links) |
//! | [`cluster`] | cloud instance types, node/device topology, partition & replication groups |
//! | [`collectives`] | chunk-layout math, α–β cost models, effective-bandwidth estimation |
//! | [`compress`] | block-wise quantization kernels for compressed (ZeRO++-style) collectives |
//! | [`tensor`] | dtypes, sharding arithmetic, fragmenting vs arena allocators |
//! | [`dataplane`] | real shared-memory collectives incl. the 3-stage hierarchical all-gather |
//! | [`minidl`] | deterministic DL stack for the fidelity experiment (real training) |
//! | [`model`] | the paper's workloads: BERT/RoBERTa/GPT-2 variants, WideResNet |
//! | [`core`] | the MiCS executor + DDP/ZeRO-1/2/3/Megatron-LM-3D baselines |
//!
//! ## Quickstart
//!
//! ```
//! use mics::core::{simulate, MicsConfig, Strategy, TrainingJob};
//! use mics::cluster::{ClusterSpec, InstanceType};
//! use mics::model::TransformerConfig;
//!
//! // Two p3dn.24xlarge nodes (16 × V100, 100 Gbps EFA).
//! let cluster = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2);
//! // BERT 10B fits in a single-node partition group.
//! let job = TrainingJob {
//!     workload: TransformerConfig::bert_10b().workload(8),
//!     cluster,
//!     strategy: Strategy::Mics(MicsConfig::paper_defaults(8)),
//!     accum_steps: 4,
//! };
//! let report = simulate(&job).unwrap();
//! println!("{}: {:.1} samples/sec", report.label, report.samples_per_sec);
//! ```

#![warn(missing_docs)]

pub use mics_cluster as cluster;
pub use mics_collectives as collectives;
pub use mics_compress as compress;
pub use mics_core as core;
pub use mics_dataplane as dataplane;
pub use mics_minidl as minidl;
pub use mics_model as model;
pub use mics_simnet as simnet;
pub use mics_tensor as tensor;
pub use mics_trace as trace;
